//! Offline stand-in for `rand_chacha` (0.3 API subset): a genuine ChaCha
//! stream cipher core driving the `rand` trait surface.
//!
//! The workspace only needs [`ChaCha8Rng`] — a deterministic, seedable,
//! statistically strong generator. The keystream is real ChaCha with 8
//! double-rounds; it is *not* guaranteed to be bit-identical to upstream
//! `rand_chacha` (the workspace never relies on that, only on seed →
//! stream determinism within itself).

use rand::{RngCore, SeedableRng};

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha generator with a configurable double-round count.
#[derive(Clone, Debug)]
pub struct ChaChaCore<const DOUBLE_ROUNDS: usize> {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buffer: [u32; 16],
    index: usize,
}

impl<const DOUBLE_ROUNDS: usize> ChaChaCore<DOUBLE_ROUNDS> {
    fn from_seed_bytes(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaChaCore {
            key,
            counter: 0,
            stream: 0,
            buffer: [0; 16],
            index: 16,
        }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let input = state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input) {
            *out = out.wrapping_add(inp);
        }
        self.buffer = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    /// Select an independent keystream (matches `rand_chacha`'s API shape).
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.index = 16;
    }
}

impl<const DOUBLE_ROUNDS: usize> RngCore for ChaChaCore<DOUBLE_ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_word().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<const DOUBLE_ROUNDS: usize> SeedableRng for ChaChaCore<DOUBLE_ROUNDS> {
    type Seed = [u8; 32];
    fn from_seed(seed: Self::Seed) -> Self {
        Self::from_seed_bytes(seed)
    }
}

/// ChaCha with 8 double-rounds — the fast paper-simulation workhorse.
pub type ChaCha8Rng = ChaChaCore<4>;
/// ChaCha with 12 double-rounds.
pub type ChaCha12Rng = ChaChaCore<6>;
/// ChaCha with 20 double-rounds (the IETF standard round count).
pub type ChaCha20Rng = ChaChaCore<10>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn chacha20_known_answer() {
        // RFC 8439 §2.3.2 test vector: key 00..1f, counter 1, nonce
        // 00:00:00:09:00:00:00:4a:00:00:00:00. Our block layout uses a
        // 64-bit counter + 64-bit stream, so replicate the state directly.
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let mut rng = ChaCha20Rng::from_seed(key);
        rng.counter = 1 | ((0x0900_0000u64) << 32);
        rng.stream = 0x4a00_0000 | (0u64 << 32);
        rng.index = 16;
        let first = rng.next_u32();
        assert_eq!(first, 0xe4e7_f110);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        let mut b = ChaCha8Rng::seed_from_u64(3);
        b.set_stream(1);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }
}
