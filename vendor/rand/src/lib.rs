//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! This workspace builds in a network-isolated environment with no crates
//! registry, so the handful of external dependencies are vendored as
//! API-compatible subsets (see `vendor/README.md`). This crate provides the
//! `RngCore` / `SeedableRng` / `Rng` trait surface the workspace uses:
//! `gen`, `gen_range` over half-open and inclusive integer/float ranges,
//! and `gen_bool`. Distribution sampling beyond uniform lives in the
//! workspace itself (Box–Muller in `latest-gpu-sim`), not here.
//!
//! Determinism is the only hard requirement the workspace places on its
//! RNG — every simulated platform is seeded — so the sampling algorithms
//! favour simplicity over bit-compatibility with upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Derive a full seed from a `u64` via SplitMix64, as rand 0.8 does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types that `Rng::gen` can produce.
pub trait StandardSample {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly samplable from a range.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Widening-multiply bounded sample: uniform in `[0, span)`.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                lo + bounded_u64(rng, (hi - lo) as u64) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        let u = f64::standard_sample(rng);
        let x = lo + u * (hi - lo);
        // Guard against rounding up to the excluded endpoint.
        if x >= hi {
            hi - (hi - lo) * f64::EPSILON
        } else {
            x
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::standard_sample(rng);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        let u = f32::standard_sample(rng);
        let x = lo + u * (hi - lo);
        if x >= hi {
            hi - (hi - lo) * f32::EPSILON
        } else {
            x
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        let u = f32::standard_sample(rng);
        lo + u * (hi - lo)
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Minimal `rand::rngs` namespace for API compatibility.
pub mod rngs {
    /// A trivially seedable mock generator (xorshift-based), handy in tests.
    #[derive(Clone, Debug)]
    pub struct SmallRng(u64);

    impl crate::SeedableRng for SmallRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            let v = u64::from_le_bytes(seed);
            SmallRng(if v == 0 { 0x9E37_79B9_7F4A_7C15 } else { v })
        }
    }

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64* — fine for a mock; the workspace uses ChaCha8.
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&x));
            let y: u64 = r.gen_range(5..8);
            assert!((5..8).contains(&y));
            let z: i32 = r.gen_range(-4..=4);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
