//! Offline stand-in for `proptest` (1.x API subset): deterministic
//! generate-and-assert property testing.
//!
//! The real proptest shrinks failing inputs; this stub does not — a
//! failing case panics with the case number so it can be replayed (the
//! RNG stream for a test is derived from the test's module path and name,
//! so failures are stable across runs and machines). The strategy surface
//! matches what this workspace uses: numeric ranges, `Just`, tuples,
//! `prop::collection::vec`, `prop_map`, `prop_oneof!` and the `proptest!`
//! macro with `pattern in strategy` parameters.

pub mod test_runner {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// The RNG handed to strategies. A concrete type keeps the `Strategy`
    /// trait object-safe (needed by `prop_oneof!`).
    pub struct TestRng(pub ChaCha8Rng);

    impl rand::RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }

    /// Number of cases per property: `PROPTEST_CASES` or 64.
    pub fn cases() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Deterministic per-test RNG, seeded from the test's full name.
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(ChaCha8Rng::seed_from_u64(hash))
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A value generator. `generate` draws one value; no shrinking.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, map }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<T: rand::SampleUniform> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    impl<T: rand::SampleUniform> Strategy for RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(*self.start()..=*self.end())
        }
    }

    macro_rules! impl_strategy_tuple {
        ($(($($idx:tt $name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_strategy_tuple! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.map)(self.inner.generate(rng))
        }
    }

    /// `&str` is a regex-shaped string strategy in proptest. This stub
    /// supports the subset the workspace uses: literal characters,
    /// character classes (`[a-z0-9_]`), and the quantifiers `{n}`,
    /// `{m,n}`, `?`, `*`, `+` (the unbounded ones capped at 8 repeats).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let atoms = parse_regex_subset(self);
            let mut out = String::new();
            for (ranges, min, max) in &atoms {
                let reps = rng.gen_range(*min..=*max);
                for _ in 0..reps {
                    let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                    out.push(char::from_u32(rng.gen_range(lo as u32..=hi as u32)).unwrap_or(lo));
                }
            }
            out
        }
    }

    type RegexAtom = (Vec<(char, char)>, usize, usize);

    fn parse_regex_subset(pattern: &str) -> Vec<RegexAtom> {
        let mut chars = pattern.chars().peekable();
        let mut atoms: Vec<RegexAtom> = Vec::new();
        while let Some(c) = chars.next() {
            let ranges: Vec<(char, char)> = match c {
                '[' => {
                    let mut ranges = Vec::new();
                    let mut class: Vec<char> = Vec::new();
                    for c in chars.by_ref() {
                        if c == ']' {
                            break;
                        }
                        class.push(c);
                    }
                    let mut i = 0;
                    while i < class.len() {
                        if i + 2 < class.len() && class[i + 1] == '-' {
                            ranges.push((class[i], class[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((class[i], class[i]));
                            i += 1;
                        }
                    }
                    ranges
                }
                '\\' => {
                    let escaped = chars.next().unwrap_or('\\');
                    vec![(escaped, escaped)]
                }
                literal => vec![(literal, literal)],
            };
            // Optional quantifier.
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().unwrap_or(0),
                            hi.trim().parse().unwrap_or(8),
                        ),
                        None => {
                            let n = spec.trim().parse().unwrap_or(1);
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            atoms.push((ranges, min, max));
        }
        atoms
    }

    /// Uniform choice between strategies (`prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for [`vec`], inclusive on both ends.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// `prop::collection::vec(element, sizes)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `use proptest::prelude::*;`
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` namespace (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let cases = $crate::test_runner::cases();
            let mut rng = $crate::test_runner::rng_for(
                ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name)),
            );
            for case in 0..cases {
                let result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| {
                        let ($($arg,)+) = (
                            $($crate::strategy::Strategy::generate(&($strategy), &mut rng),)+
                        );
                        $body
                    }),
                );
                if let ::std::result::Result::Err(panic) = result {
                    ::std::eprintln!(
                        "proptest stub: property `{}` failed at case {}/{}",
                        ::std::stringify!($name),
                        case + 1,
                        cases,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let mut options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec::Vec::new();
        $(options.push(::std::boxed::Box::new($strategy));)+
        $crate::strategy::OneOf::new(options)
    }};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { ::std::assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { ::std::assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { ::std::assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { ::std::assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { ::std::assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { ::std::assert_ne!($left, $right, $($fmt)+) };
}

/// Skip the current case when an assumption fails. Without shrinking or
/// case regeneration, rejecting means returning early from the case body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_are_respected(x in 3..10u32, y in -2.0..2.0f64) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_and_map_compose(
            xs in prop::collection::vec(0..100u32, 2..9).prop_map(|v| v.len()),
        ) {
            prop_assert!((2..=8).contains(&xs));
        }

        #[test]
        fn oneof_and_just(k in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!(k >= 1 && k <= 3);
        }
    }

    #[test]
    fn rng_streams_are_stable_per_name() {
        use rand::RngCore;
        let a = crate::test_runner::rng_for("x").0.next_u64();
        let b = crate::test_runner::rng_for("x").0.next_u64();
        let c = crate::test_runner::rng_for("y").0.next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
