//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` targeting the vendored value-model `serde`.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the item is
//! parsed with a small hand-rolled walker and the impl is emitted as
//! source text. Supported shapes — exactly what this workspace derives on:
//!
//! * structs with named fields,
//! * tuple structs (newtype structs serialise transparently),
//! * enums with unit variants (serialised as the variant-name string),
//! * the `#[serde(from = "Type", into = "Type")]` container attribute.
//!
//! Anything else panics at expansion time with a descriptive message, so
//! an unsupported shape fails the build loudly rather than misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    /// Struct with named fields.
    Named(Vec<String>),
    /// Tuple struct with N fields.
    Tuple(usize),
    /// Enum made of unit variants.
    UnitEnum(Vec<String>),
}

#[derive(Debug)]
struct Item {
    name: String,
    shape: Shape,
    /// `#[serde(from = "...")]` / `#[serde(into = "...")]` container attrs.
    from_ty: Option<String>,
    into_ty: Option<String>,
}

/// Split a token sequence on top-level commas, tracking `<...>` depth so
/// commas inside generic argument lists do not split (parens/brackets are
/// already atomic groups in a token tree).
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// From one comma-separated field/variant segment, skip attributes and
/// visibility and return the leading identifier (field or variant name),
/// plus whether a payload group follows an enum variant name.
fn leading_ident(segment: &[TokenTree]) -> Option<(String, bool)> {
    let mut i = 0;
    while i < segment.len() {
        match &segment[i] {
            // Attribute (incl. doc comments): `#` followed by a `[...]` group.
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` and friends.
                if matches!(&segment.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) => {
                let has_payload = matches!(segment.get(i + 1), Some(TokenTree::Group(_)));
                return Some((id.to_string(), has_payload));
            }
            _ => return None,
        }
    }
    None
}

/// Parse `from = "X"` / `into = "X"` pairs out of a `serde(...)` group.
fn parse_serde_attr(
    tokens: &[TokenTree],
    from_ty: &mut Option<String>,
    into_ty: &mut Option<String>,
) {
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Ident(key) = &tokens[i] {
            let key = key.to_string();
            let is_eq =
                matches!(&tokens.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=');
            if is_eq {
                if let Some(TokenTree::Literal(lit)) = tokens.get(i + 2) {
                    let text = lit.to_string();
                    let inner = text.trim_matches('"').to_string();
                    match key.as_str() {
                        "from" => *from_ty = Some(inner),
                        "into" => *into_ty = Some(inner),
                        other => panic!(
                            "vendored serde_derive: unsupported #[serde({other} = ...)] attribute"
                        ),
                    }
                    i += 3;
                    continue;
                }
            }
            panic!("vendored serde_derive: unsupported #[serde(...)] attribute form");
        }
        i += 1;
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut from_ty = None;
    let mut into_ty = None;
    let mut i = 0;

    // Attributes and visibility before `struct` / `enum`.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(attr)) = tokens.get(i + 1) {
                    let attr_tokens: Vec<TokenTree> = attr.stream().into_iter().collect();
                    if let Some(TokenTree::Ident(id)) = attr_tokens.first() {
                        if id.to_string() == "serde" {
                            if let Some(TokenTree::Group(args)) = attr_tokens.get(1) {
                                let args: Vec<TokenTree> = args.stream().into_iter().collect();
                                parse_serde_attr(&args, &mut from_ty, &mut into_ty);
                            }
                        }
                    }
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            other => {
                panic!("vendored serde_derive: unexpected token before item keyword: {other:?}")
            }
        }
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("vendored serde_derive: expected item name, got {other:?}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive: generic types are not supported (deriving on `{name}`)");
    }

    let shape = match tokens.get(i) {
        Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => {
            let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
            let segments = split_top_level_commas(&body_tokens);
            if kind == "struct" {
                let mut fields = Vec::new();
                for seg in &segments {
                    if seg.is_empty() {
                        continue;
                    }
                    let (field, _) = leading_ident(seg).unwrap_or_else(|| {
                        panic!("vendored serde_derive: cannot parse a field of `{name}`")
                    });
                    fields.push(field);
                }
                Shape::Named(fields)
            } else {
                let mut variants = Vec::new();
                for seg in &segments {
                    if seg.is_empty() {
                        continue;
                    }
                    let (variant, has_payload) = leading_ident(seg).unwrap_or_else(|| {
                        panic!("vendored serde_derive: cannot parse a variant of `{name}`")
                    });
                    if has_payload {
                        panic!(
                            "vendored serde_derive: enum `{name}` variant `{variant}` carries data; only unit variants are supported"
                        );
                    }
                    variants.push(variant);
                }
                Shape::UnitEnum(variants)
            }
        }
        Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Parenthesis => {
            if kind == "enum" {
                panic!("vendored serde_derive: unexpected parenthesised enum body in `{name}`");
            }
            let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
            Shape::Tuple(split_top_level_commas(&body_tokens).len())
        }
        other => panic!("vendored serde_derive: unsupported item body for `{name}`: {other:?}"),
    };

    Item {
        name,
        shape,
        from_ty,
        into_ty,
    }
}

fn derive_serialize_src(item: &Item) -> String {
    let name = &item.name;
    if let Some(into_ty) = &item.into_ty {
        return format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     let repr: {into_ty} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
                     ::serde::Serialize::to_value(&repr)\n\
                 }}\n\
             }}"
        );
    }
    let body = match &item.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\"))"
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn derive_deserialize_src(item: &Item) -> String {
    let name = &item.name;
    if let Some(from_ty) = &item.from_ty {
        return format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     let repr: {from_ty} = ::serde::Deserialize::from_value(value)?;\n\
                     ::std::result::Result::Ok(::std::convert::Into::into(repr))\n\
                 }}\n\
             }}"
        );
    }
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::field(entries, \"{f}\", \"{name}\")?)?"
                    )
                })
                .collect();
            format!(
                "let entries = value.as_map().ok_or_else(|| ::serde::Error::custom(\
                     ::std::format!(\"expected map for {name}, got {{value:?}}\")))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                .collect();
            format!(
                "let seq = value.as_seq().ok_or_else(|| ::serde::Error::custom(\
                     ::std::format!(\"expected sequence for {name}, got {{value:?}}\")))?;\n\
                 if seq.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"expected {n} elements for {name}, got {{}}\", seq.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v})"))
                .collect();
            format!(
                "let text = value.as_str().ok_or_else(|| ::serde::Error::custom(\
                     ::std::format!(\"expected variant string for {name}, got {{value:?}}\")))?;\n\
                 match text {{\n\
                     {},\n\
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_serialize_src(&item)
        .parse()
        .expect("vendored serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_deserialize_src(&item)
        .parse()
        .expect("vendored serde_derive: generated Deserialize impl failed to parse")
}
