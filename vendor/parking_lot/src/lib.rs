//! Offline stand-in for `parking_lot` (0.12 API subset): `Mutex` and
//! `RwLock` with the non-poisoning lock API, backed by `std::sync`.
//!
//! Semantics match what the workspace relies on: `lock()` returns the
//! guard directly (no `Result`). Poisoning is translated by recovering the
//! inner guard — a panic while holding the lock does not wedge the
//! simulator on the next access, mirroring parking_lot's behaviour.

use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
