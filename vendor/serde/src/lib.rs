//! Offline stand-in for `serde` (1.x API subset).
//!
//! Instead of serde's visitor architecture, this stub routes everything
//! through a self-describing [`Value`] tree: `Serialize` renders a value
//! into a `Value`, `Deserialize` reconstructs one from it. The vendored
//! `serde_json` then prints/parses `Value` as JSON text. The derive macros
//! (re-exported from the vendored `serde_derive`) understand the shapes
//! this workspace uses: named structs, newtype/tuple structs, unit-variant
//! enums and the `#[serde(from = "...", into = "...")]` container
//! attribute.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree — the interchange format between the
/// `Serialize` and `Deserialize` halves and the vendored `serde_json`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map with string keys (JSON object shape).
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Render `self` into the [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Look up a struct field in a map value (derive-generated code calls this).
pub fn field<'a>(
    entries: &'a [(String, Value)],
    name: &str,
    type_name: &str,
) -> Result<&'a Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}` for `{type_name}`")))
}

// --- impls for std types ---------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::I64(i) => *i,
                    Value::U64(u) if *u <= i64::MAX as u64 => *u as i64,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(Error::custom(format!("expected integer, got {other:?}")))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::F64(f) => Ok(*f as $t),
                    Value::U64(u) => Ok(*u as $t),
                    Value::I64(i) => Ok(*i as $t),
                    // serde_json writes non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::custom(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::custom(format!("expected sequence, got {value:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($idx:tt $name:ident),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let seq = value
                    .as_seq()
                    .ok_or_else(|| Error::custom(format!("expected tuple sequence, got {value:?}")))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of length {expected}, got {}",
                        seq.len()
                    )));
                }
                Ok(($($name::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::custom(format!("expected map, got {value:?}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, S>
{
    fn to_value(&self) -> Value {
        // Sort for stable output; serde_json users get deterministic text.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::custom(format!("expected map, got {value:?}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}
