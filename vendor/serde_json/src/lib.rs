//! Offline stand-in for `serde_json` (1.x API subset): JSON text ⇄ the
//! vendored `serde::Value` tree.
//!
//! Supports everything the workspace serialises: objects, arrays, strings
//! (with escapes), integers, floats (non-finite values are written as
//! `null`, as upstream serde_json does), booleans and null. `to_string`
//! emits compact JSON; `to_string_pretty` uses two-space indentation, like
//! upstream.

use serde::{Deserialize, Serialize, Value};

/// JSON serialisation/deserialisation error.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.message())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// --- writing ---------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // `{:?}` gives the shortest round-trippable decimal form.
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_value(v: &Value, pretty: bool, indent: usize, out: &mut String) {
    let pad = |n: usize, out: &mut String| {
        if pretty {
            out.push('\n');
            out.push_str(&"  ".repeat(n));
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(indent + 1, out);
                write_value(item, pretty, indent + 1, out);
            }
            pad(indent, out);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(indent + 1, out);
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(item, pretty, indent + 1, out);
            }
            pad(indent, out);
            out.push('}');
        }
    }
}

/// Serialise to compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), false, 0, &mut out);
    Ok(out)
}

/// Serialise to pretty JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), true, 0, &mut out);
    Ok(out)
}

// --- parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: impl std::fmt::Display) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn consume_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.error("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.error("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.error("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(self.error(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-sync on UTF-8 boundaries: walk back and take the char.
                    let start = self.pos - 1;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if text.is_empty() || text == "-" {
            return Err(self.error("expected number"));
        }
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self
            .peek()
            .ok_or_else(|| self.error("unexpected end of input"))?
        {
            b'{' => {
                self.expect(b'{')?;
                let mut entries = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.error("expected `,` or `}`")),
                    }
                }
            }
            b'[' => {
                self.expect(b'[')?;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.error("expected `,` or `]`")),
                    }
                }
            }
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b't' | b'f' => {
                if self.consume_keyword("true") {
                    Ok(Value::Bool(true))
                } else if self.consume_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            b'n' => {
                if self.consume_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            _ => self.parse_number(),
        }
    }
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("a\"b\\c\nd".into())),
            (
                "xs".into(),
                Value::Seq(vec![
                    Value::F64(1.5),
                    Value::U64(7),
                    Value::Bool(true),
                    Value::Null,
                ]),
            ),
            ("empty".into(), Value::Seq(vec![])),
        ]);
        for text in [
            to_string(&VWrap(v.clone())).unwrap(),
            to_string_pretty(&VWrap(v.clone())).unwrap(),
        ] {
            let mut p = Parser::new(&text);
            assert_eq!(p.parse_value().unwrap(), v);
        }
    }

    struct VWrap(Value);
    impl Serialize for VWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn floats_round_trip_shortest() {
        let text = to_string(&0.1f64).unwrap();
        assert_eq!(text, "0.1");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, 0.1);
    }

    #[test]
    fn integers_parse_as_integers() {
        let mut p = Parser::new("[-3, 18446744073709551615]");
        assert_eq!(
            p.parse_value().unwrap(),
            Value::Seq(vec![Value::I64(-3), Value::U64(u64::MAX)])
        );
    }
}
