//! Offline stand-in for `rayon` (1.x API subset): the parallel-iterator
//! entry points the workspace uses, executed sequentially.
//!
//! The LATEST campaign is *designed* so scheduling cannot affect results —
//! every pair platform is seeded from `(campaign seed, pair)` — and the
//! determinism integration tests assert exactly that. Running the "parallel"
//! iterators sequentially is therefore semantics-preserving; it only
//! forgoes the wall-clock speedup until a real thread pool is wired in.

/// `into_par_iter()` — returns the ordinary sequential iterator, whose
/// `map`/`filter`/`collect` chains compile unchanged.
pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// `par_iter()` / `par_iter_mut()` over references.
pub trait IntoParallelRefIterator<'data> {
    type Item: 'data;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Item = <&'data C as IntoIterator>::Item;
    type Iter = <&'data C as IntoIterator>::IntoIter;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

pub trait IntoParallelRefMutIterator<'data> {
    type Item: 'data;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator,
{
    type Item = <&'data mut C as IntoIterator>::Item;
    type Iter = <&'data mut C as IntoIterator>::IntoIter;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_iter()
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

/// Join two closures "in parallel" (sequentially here).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Scope stub: runs the body immediately.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    f(&Scope {
        _marker: std::marker::PhantomData,
    })
}

pub struct Scope<'scope> {
    _marker: std::marker::PhantomData<&'scope ()>,
}

impl<'scope> Scope<'scope> {
    pub fn spawn<F: FnOnce(&Scope<'scope>) + 'scope>(&self, f: F) {
        f(self);
    }
}

/// Error type for [`ThreadPoolBuilder::build`]; never produced here.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`]. The thread count is recorded but unused:
/// execution is sequential.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.max(1),
        })
    }
}

/// A "thread pool" that installs work on the current thread.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = v.par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn pool_installs_inline() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 7), 7);
    }
}
