//! Offline stand-in for `criterion` (0.5 API subset): a minimal
//! wall-clock benchmark harness behind criterion's API shape.
//!
//! No statistical analysis, no HTML reports — each benchmark runs a warmup
//! pass plus `sample_size` timed passes and prints min/mean per-iteration
//! times. Honours `--test` on the command line (as real criterion does) by
//! running every benchmark exactly once, so `cargo test` stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        let sample_size = std::env::var("CRITERION_SAMPLE_SIZE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Criterion {
            sample_size,
            test_mode,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, self.test_mode, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Recorded for API compatibility; the stub prints times only.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&full, samples, self.criterion.test_mode, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(
            &full,
            samples,
            self.criterion.test_mode,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Accepts both `&str` and [`BenchmarkId`] where criterion does.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Declared throughput of one benchmark iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Timer handed to the benchmark closure.
pub struct Bencher {
    /// Duration of the most recent `iter` batch.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }

    /// `iter_batched` with per-iteration setup; batch size is ignored.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn run_one(id: &str, samples: usize, test_mode: bool, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
    };
    if test_mode {
        f(&mut bencher);
        println!("test {id} ... ok");
        return;
    }
    // Warmup.
    f(&mut bencher);
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        f(&mut bencher);
        times.push(bencher.elapsed);
    }
    let min = times.iter().min().copied().unwrap_or_default();
    let mean = times.iter().sum::<Duration>() / samples.max(1) as u32;
    println!("bench {id:<50} min {min:>12?}  mean {mean:>12?}  (n={samples})");
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion {
            sample_size: 2,
            test_mode: true,
        };
        let mut calls = 0usize;
        c.bench_function("unit", |b| b.iter(|| black_box(1 + 1)));
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2).throughput(Throughput::Elements(4));
            g.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
                b.iter(|| {
                    calls += 1;
                    black_box(n * 2)
                })
            });
            g.finish();
        }
        assert!(calls >= 1);
    }
}
