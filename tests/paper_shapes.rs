//! Qualitative-shape assertions from Sec. VII, run as tests: the simulated
//! architectures must reproduce who-is-slow / where-the-spikes-are, and the
//! methodology must surface them the way the paper reports.
//!
//! These use reduced sweeps (fewer frequencies/measurements than the repro
//! binaries) to stay fast under `cargo test`; the full-scale regenerations
//! live in `crates/bench/src/bin/repro_*`.

use latest::core::{CampaignConfig, CampaignResult, Latest};
use latest::gpu_sim::devices::{self, DeviceSpec};

fn sweep(spec: DeviceSpec, n: usize, seed: u64) -> CampaignResult {
    let config = CampaignConfig::builder(spec)
        .frequency_subset(n)
        .measurements(20, 40)
        .simulated_sms(Some(4))
        .seed(seed)
        .build();
    Latest::new(config).run().expect("sweep")
}

fn worst_cases(result: &CampaignResult) -> Vec<(u32, u32, f64)> {
    result
        .completed()
        .filter_map(|p| {
            p.analysis
                .as_ref()
                .filter(|a| !a.inliers_ms.is_empty())
                .map(|a| (p.init_mhz(), p.target_mhz(), a.filtered.max))
        })
        .collect()
}

#[test]
fn a100_worst_cases_stay_below_25ms() {
    let result = sweep(devices::a100_sxm4(), 8, 101);
    let cells = worst_cases(&result);
    assert!(cells.len() >= 40);
    for (i, t, v) in &cells {
        assert!(*v < 25.0, "{i}->{t}: {v} ms breaks the paper's A100 bound");
    }
}

#[test]
fn a100_decreases_are_faster_and_tighter_than_increases() {
    // Fig. 4b: clear asymmetry between frequency decreasing and increasing.
    let result = sweep(devices::a100_sxm4(), 8, 102);
    let (mut down, mut up) = (Vec::new(), Vec::new());
    for p in result.completed() {
        if let Some(a) = &p.analysis {
            let side = if p.target_mhz() < p.init_mhz() {
                &mut down
            } else {
                &mut up
            };
            side.extend_from_slice(&a.inliers_ms);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let sd = |v: &[f64]| {
        let m = mean(v);
        (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (v.len() - 1) as f64).sqrt()
    };
    assert!(
        mean(&down) < 0.6 * mean(&up),
        "down {:.2} ms vs up {:.2} ms: asymmetry missing",
        mean(&down),
        mean(&up)
    );
    assert!(sd(&down) < sd(&up), "decreases should also be tighter");
}

#[test]
fn gh200_has_slow_target_columns() {
    // Fig. 3b: specific *target* frequencies spike into hundreds of ms while
    // the bulk stays low — and the spike is a column (target) property.
    let result = sweep(devices::gh200(), 10, 103);
    let cells = worst_cases(&result);
    let slow: Vec<_> = cells.iter().filter(|(_, _, v)| *v > 100.0).collect();
    let fast = cells.iter().filter(|(_, _, v)| *v < 30.0).count();
    assert!(!slow.is_empty(), "no slow cells on GH200");
    assert!(fast > cells.len() / 2, "most GH200 cells should stay fast");
    // Slow cells concentrate on few target columns.
    let mut slow_targets: Vec<u32> = slow.iter().map(|(_, t, _)| *t).collect();
    slow_targets.sort_unstable();
    slow_targets.dedup();
    assert!(
        slow_targets.len() <= 3,
        "slow cells spread over {} targets: {:?}",
        slow_targets.len(),
        slow_targets
    );
}

#[test]
fn gh200_best_cases_are_predictable() {
    // Fig. 3a: "minimum values are way more stable" — best cases sit in a
    // narrow 4-9 ms band off the slow columns.
    let result = sweep(devices::gh200(), 8, 104);
    let mut in_band = 0usize;
    let mut total = 0usize;
    for p in result.completed() {
        if let Some(a) = &p.analysis {
            if !a.inliers_ms.is_empty() {
                total += 1;
                if (4.0..9.0).contains(&a.filtered.min) {
                    in_band += 1;
                }
            }
        }
    }
    assert!(
        in_band as f64 >= 0.7 * total as f64,
        "only {in_band}/{total} best cases in the 4-9 ms band"
    );
}

#[test]
fn quadro_is_most_variable_and_slowest_on_average() {
    let quadro = sweep(devices::rtx_quadro_6000(), 8, 105);
    let a100 = sweep(devices::a100_sxm4(), 8, 105);
    let mean_of = |r: &CampaignResult| {
        let cells = worst_cases(r);
        cells.iter().map(|c| c.2).sum::<f64>() / cells.len() as f64
    };
    let q = mean_of(&quadro);
    let a = mean_of(&a100);
    // Table II: Quadro worst-case mean 81.9 ms vs A100 15.6 ms (~5x). The
    // reduced sweep must preserve at least a 2x gap.
    assert!(q > 2.0 * a, "Quadro mean {q:.1} ms vs A100 {a:.1} ms");
}

#[test]
fn target_frequency_dominates_the_latency() {
    // Sec. VII: "the target frequency has a much higher impact (visible row
    // pattern in the heatmaps)". Group worst cases by target vs by initial:
    // the between-group spread must be larger for targets.
    let result = sweep(devices::rtx_quadro_6000(), 8, 106);
    let cells = worst_cases(&result);
    let group_spread = |key: fn(&(u32, u32, f64)) -> u32| {
        let mut groups: std::collections::BTreeMap<u32, Vec<f64>> = Default::default();
        for c in &cells {
            groups.entry(key(c)).or_default().push(c.2);
        }
        let means: Vec<f64> = groups
            .values()
            .map(|v| v.iter().sum::<f64>() / v.len() as f64)
            .collect();
        let m = means.iter().sum::<f64>() / means.len() as f64;
        (means.iter().map(|x| (x - m).powi(2)).sum::<f64>() / means.len() as f64).sqrt()
    };
    let by_target = group_spread(|c| c.1);
    let by_initial = group_spread(|c| c.0);
    assert!(
        by_target > 3.0 * by_initial,
        "target spread {by_target:.1} vs initial spread {by_initial:.1}"
    );
}

#[test]
fn outliers_are_a_small_fraction_with_deviant_values() {
    // Sec. V-C: outliers "never exceed a low percentage of the measurements"
    // and deviate significantly from the pattern.
    let result = sweep(devices::gh200(), 8, 107);
    for p in result.completed() {
        let a = p.analysis.as_ref().unwrap();
        assert!(
            a.outlier_ratio() <= 0.15,
            "{}->{}: outlier ratio {:.2}",
            p.init_mhz(),
            p.target_mhz(),
            a.outlier_ratio()
        );
    }
}

#[test]
fn multi_cluster_pairs_score_decent_silhouettes() {
    // Sec. VII-B: where 2+ clusters exist, silhouette > 0.4.
    let result = sweep(devices::gh200(), 8, 108);
    let mut multi = 0;
    for p in result.completed() {
        let a = p.analysis.as_ref().unwrap();
        if a.n_clusters >= 2 {
            multi += 1;
            let s = a.silhouette.expect("silhouette defined for 2+ clusters");
            assert!(
                s > 0.4,
                "{}->{}: silhouette {s:.2}",
                p.init_mhz(),
                p.target_mhz()
            );
        }
    }
    assert!(multi >= 1, "no multi-cluster pair found on GH200");
}
