//! Backward compatibility with the single-domain era: adding the memory
//! frequency domain must not move any existing run id (the content address
//! of a spec) nor change a single archived byte of a core-only campaign.
//! The fixtures under `tests/fixtures/` were captured before the memory
//! domain landed and pin that behaviour forever.

use std::fs;
use std::path::{Path, PathBuf};

use latest::core::spec::{CampaignSpec, ScenarioSpec};
use latest::core::store::ResultStore;
use latest::core::{CampaignSession, RunId};

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn campaign_spec(target: &str) -> CampaignSpec {
    let (path, member) = match target.split_once('#') {
        Some((p, m)) => {
            let index: usize = m
                .strip_prefix("member")
                .and_then(|i| i.parse().ok())
                .unwrap_or_else(|| panic!("bad member tag in {target:?}"));
            (p, Some(index))
        }
        None => (target, None),
    };
    let text =
        fs::read_to_string(repo_path(path)).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let scenario = ScenarioSpec::from_json(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"));
    match (scenario, member) {
        (ScenarioSpec::Campaign(spec), None) => spec,
        (ScenarioSpec::Fleet(fleet), Some(i)) => fleet.members[i].clone(),
        (ScenarioSpec::Campaign(_), Some(_)) => panic!("{target}: campaign spec has no members"),
        (ScenarioSpec::Fleet(_), None) => panic!("{target}: fleet target needs a #memberN tag"),
    }
}

/// Every scenario that existed before the memory domain keeps its exact
/// content-addressed run id: archives stay addressable, caches stay warm.
#[test]
fn scenario_run_ids_survive_the_memory_domain() {
    let manifest = fs::read_to_string(repo_path("tests/fixtures/pre_mem_run_ids.txt")).unwrap();
    let mut checked = 0;
    for line in manifest.lines().filter(|l| !l.trim().is_empty()) {
        let (target, expected) = line
            .split_once(' ')
            .unwrap_or_else(|| panic!("bad manifest line {line:?}"));
        let spec = campaign_spec(target);
        assert_eq!(
            RunId::of_spec(&spec).to_string(),
            expected,
            "{target}: run id moved — pre-memory archives of this spec are orphaned"
        );
        checked += 1;
    }
    assert_eq!(checked, 7, "manifest lost lines");
}

/// Re-running the pre-memory golden spec reproduces its archived store
/// file byte for byte: same run id, same latencies, same serialised form.
#[test]
fn pre_memory_archive_bytes_reproduce_exactly() {
    let text = fs::read_to_string(repo_path("tests/fixtures/pre_mem_spec.json")).unwrap();
    let ScenarioSpec::Campaign(spec) = ScenarioSpec::from_json(&text).unwrap() else {
        panic!("pre_mem_spec.json must be a campaign spec");
    };
    let config = spec.resolve().expect("golden spec resolves");
    let result = CampaignSession::new(config)
        .sequential(true)
        .run()
        .expect("golden campaign runs");

    let dir = std::env::temp_dir().join(format!("latest_premem_{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    let store = ResultStore::open(&dir).unwrap();
    let id = store.put(&spec, &result).unwrap();
    assert_eq!(id.to_string(), "run-5f26ffe10dc1829f254fce69e56156d0");

    let fresh = fs::read(dir.join(format!("{id}.json"))).unwrap();
    let golden = fs::read(repo_path(
        "tests/fixtures/pre_mem_store/run-5f26ffe10dc1829f254fce69e56156d0.json",
    ))
    .unwrap();
    fs::remove_dir_all(&dir).ok();
    assert_eq!(
        fresh, golden,
        "archived bytes drifted from the single-domain era"
    );
}
