//! Failure injection across crate boundaries: the tool must degrade the way
//! the paper's tool does — skip power-limited pairs, back off on thermal
//! events, skip statistically indistinguishable pairs, and survive
//! evaluation retries without aborting the campaign.

use std::sync::Arc;

use latest::core::{CampaignConfig, Latest, PairOutcome};
use latest::gpu_sim::devices::{self, DeviceSpec};
use latest::gpu_sim::transition::FixedTransition;
use latest::sim_clock::SimDuration;

fn base_config(spec: DeviceSpec, freqs: &[u32], seed: u64) -> CampaignConfig {
    CampaignConfig::builder(spec)
        .frequencies_mhz(freqs)
        .measurements(8, 20)
        .simulated_sms(Some(4))
        .seed(seed)
        .build()
}

#[test]
fn power_capped_frequency_pairs_are_skipped_not_fatal() {
    // A TDP that cannot sustain the top clock (but sustains 1095 MHz):
    // pairs targeting it must end PowerLimited while the rest of the
    // campaign completes.
    let mut spec = devices::a100_sxm4();
    spec.transition = Arc::new(FixedTransition {
        latency: SimDuration::from_millis(6),
    });
    spec.thermal.tdp_w = spec.power.busy_power(1200.0);
    let result = Latest::new(base_config(spec, &[705, 1095, 1410], 10))
        .run()
        .unwrap();

    let power_limited: Vec<_> = result
        .pairs()
        .iter()
        .filter(|p| matches!(p.outcome, PairOutcome::PowerLimited { .. }))
        .collect();
    assert!(!power_limited.is_empty(), "no pair hit the power cap");
    for p in &power_limited {
        assert_eq!(
            p.target_mhz(),
            1410,
            "only the unsustainable clock should power-limit"
        );
        assert!(
            p.analysis.is_none(),
            "power-limited pairs must carry no analysis"
        );
    }
    // Pairs between sustainable clocks still completed.
    assert!(
        result.completed().any(|p| p.target_mhz() != 1410),
        "sustainable pairs should have completed"
    );
}

#[test]
fn thermal_events_discard_and_continue() {
    // Aggressive thermal model: throttling fires mid-run; the controller
    // must discard the newest measurements, back off and still complete.
    let mut spec = devices::a100_sxm4();
    spec.transition = Arc::new(FixedTransition {
        latency: SimDuration::from_millis(8),
    });
    spec.thermal.tau_s = 0.5;
    spec.thermal.r_th = 0.16;
    spec.thermal.throttle_temp_c = 66.0;
    spec.thermal.release_temp_c = 60.0;
    spec.thermal.throttle_cap_mhz = 1410.0;
    let result = Latest::new(base_config(spec, &[705, 1410], 11))
        .run()
        .unwrap();

    let mut saw_thermal = false;
    for p in result.completed() {
        let run = p.outcome.run().unwrap();
        saw_thermal |= run.thermal_events > 0;
        // The data that survived must still be sane.
        let a = p.analysis.as_ref().unwrap();
        assert!(
            (a.filtered.mean - 8.0).abs() < 2.0,
            "mean {}",
            a.filtered.mean
        );
    }
    assert!(saw_thermal, "thermal injection never fired");
}

#[test]
fn indistinguishable_pairs_are_excluded_in_phase1() {
    // Adjacent 15 MHz A100 steps under heavy workload noise and few
    // samples: phase 1 must exclude the pair rather than measure garbage.
    let mut config = base_config(devices::a100_sxm4(), &[1395, 1410], 12);
    config.workload.noise_rel_sigma = 0.5;
    config.phase1_iters = 40;
    let result = Latest::new(config).run().unwrap();
    assert!(
        result
            .pairs()
            .iter()
            .any(|p| matches!(p.outcome, PairOutcome::SkippedIndistinguishable)),
        "no pair was excluded"
    );
    for p in result.pairs() {
        if matches!(p.outcome, PairOutcome::SkippedIndistinguishable) {
            assert!(p.analysis.is_none());
            assert!(p.latencies_ms().is_none());
        }
    }
}

#[test]
fn campaign_survives_unmeasurable_pairs() {
    // Zero retries allowed and a capture window bound of nearly nothing:
    // evaluation can fail, but the campaign must return outcomes for every
    // pair instead of erroring out.
    let mut config = base_config(devices::rtx_quadro_6000(), &[750, 990, 1650], 13);
    config.max_retries = 1;
    config.initial_latency_guess_ms = 0.5;
    config.probe_safety_factor = 1.0;
    let result = Latest::new(config).run().expect("campaign must not abort");
    assert_eq!(result.pairs().len(), 6);
    for p in result.pairs() {
        match &p.outcome {
            PairOutcome::Completed(run) => assert!(!run.latencies_ms.is_empty()),
            PairOutcome::RetriesExhausted { attempts, .. } => assert_eq!(*attempts, 1),
            PairOutcome::PowerLimited { .. } | PairOutcome::SkippedIndistinguishable => {}
            PairOutcome::Cancelled => panic!("nothing cancelled this campaign"),
        }
    }
}

#[test]
fn single_frequency_config_is_rejected() {
    let config = base_config(devices::a100_sxm4(), &[705], 14);
    assert!(Latest::new(config).run().is_err());
}

#[test]
fn off_ladder_frequency_is_rejected() {
    // 1000 MHz is not a 15 MHz A100 ladder step.
    let config = base_config(devices::a100_sxm4(), &[705, 1000], 15);
    assert!(Latest::new(config).run().is_err());
}
