//! End-to-end proof of the service telemetry subsystem: a drain times
//! every stage of the execution path into lock-free recorders, persists
//! the merged snapshot, stays bitwise-reproducible under the virtual
//! clock, counts (never blocks on) dropped events, and renders through
//! the report Artifact contract.

use std::fs;
use std::path::PathBuf;

use latest::core::spec::{CampaignSpec, ScenarioSpec};
use latest::core::store::RunId;
use latest::core::CampaignSession;
use latest::queue::{PoolConfig, SubmitOptions, WorkerPool};
use latest::report::{render_to_string, stage_latency_table, Format};
use latest::telemetry::{ClockSpec, Stage, TelemetrySnapshot};

fn tiny(seed: u64) -> CampaignSpec {
    CampaignSpec::builder("a100")
        .frequencies_mhz(&[705, 1410])
        .measurements(3, 6)
        .simulated_sms(Some(2))
        .seed(seed)
        .build()
        .unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("latest_telemetry_e2e_{tag}_{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn drain_records_every_service_stage_and_persists_the_snapshot() {
    let dir = temp_dir("stages");
    let pool = WorkerPool::open(&dir, PoolConfig::default()).unwrap();
    pool.queue()
        .submit(ScenarioSpec::Campaign(tiny(11)), SubmitOptions::default())
        .unwrap();
    let stats = pool.drain().unwrap();
    assert_eq!(stats.executed, 1, "{stats:?}");

    let t = &stats.telemetry;
    assert_eq!(
        t.stage(Stage::QueueWait).count(),
        1,
        "one claim, one queue-wait sample"
    );
    assert_eq!(
        t.stage(Stage::SettleLatency).count(),
        1,
        "one settled job, one settle-latency sample"
    );
    assert!(t.stage(Stage::ClaimToStart).count() >= 1, "{t:?}");
    assert!(t.stage(Stage::ShardExec).count() >= 1, "{t:?}");
    assert!(
        t.stage(Stage::CheckpointStall).count() >= 1,
        "checkpoint_every=1 must checkpoint at least once: {t:?}"
    );
    assert!(
        t.stage(Stage::EventFanIn).count() >= 1,
        "observerless pools still drain the spool in batches: {t:?}"
    );
    assert_eq!(t.dropped_events, 0, "default buffer never fills here");

    // The drain persisted exactly the snapshot it returned.
    let persisted = fs::read_to_string(pool.queue().telemetry_path()).unwrap();
    assert_eq!(persisted, t.to_json());
    let parsed = TelemetrySnapshot::from_json(&persisted).unwrap();
    assert_eq!(&parsed, t, "snapshot JSON round-trips losslessly");

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn virtual_clock_single_worker_snapshots_are_bitwise_identical() {
    // The CI determinism gate in library form: two fresh drains of the
    // same scenario under the tick clock with one worker must persist
    // byte-for-byte identical telemetry.
    let run = |tag: &str| {
        let dir = temp_dir(tag);
        let pool = WorkerPool::open(
            &dir,
            PoolConfig {
                workers: 1,
                shard_pairs: 2,
                clock: ClockSpec::Ticks { tick_ns: 100_000 },
                ..PoolConfig::default()
            },
        )
        .unwrap();
        pool.queue()
            .submit(ScenarioSpec::Campaign(tiny(21)), SubmitOptions::default())
            .unwrap();
        let stats = pool.drain().unwrap();
        assert_eq!(stats.executed, 1, "{stats:?}");
        let json = fs::read_to_string(pool.queue().telemetry_path()).unwrap();
        fs::remove_dir_all(&dir).ok();
        json
    };
    let first = run("det_a");
    let second = run("det_b");
    assert_eq!(first, second, "virtual-clock drains must be reproducible");
    assert!(
        !TelemetrySnapshot::from_json(&first).unwrap().is_empty(),
        "the identical snapshots must not be trivially empty"
    );
}

#[test]
fn full_event_buffer_counts_drops_without_losing_the_measurement() {
    let dir = temp_dir("drops");
    let spec = tiny(31);
    let reference = CampaignSession::new(spec.resolve().unwrap()).run().unwrap();
    let pool = WorkerPool::open(
        &dir,
        PoolConfig {
            workers: 1,
            event_buffer: 1,
            ..PoolConfig::default()
        },
    )
    .unwrap();
    pool.queue()
        .submit(
            ScenarioSpec::Campaign(spec.clone()),
            SubmitOptions::default(),
        )
        .unwrap();
    let stats = pool.drain().unwrap();
    assert_eq!(stats.executed, 1, "{stats:?}");
    assert!(
        stats.telemetry.dropped_events > 0,
        "a 1-deep buffer must overflow on campaign event bursts: {:?}",
        stats.telemetry
    );
    // Dropped events are observability loss only — the archived result is
    // still bitwise identical to an uninterrupted direct run.
    let stored = pool.store().get(&RunId::of_spec(&spec)).unwrap();
    assert_eq!(stored.result.to_json(), reference.to_json());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn queue_stats_table_renders_in_every_artifact_format() {
    let dir = temp_dir("render");
    let pool = WorkerPool::open(&dir, PoolConfig::default()).unwrap();
    pool.queue()
        .submit(ScenarioSpec::Campaign(tiny(41)), SubmitOptions::default())
        .unwrap();
    let stats = pool.drain().unwrap();
    let table = stage_latency_table(&stats.telemetry);
    let text = render_to_string(&table, Format::Text).unwrap();
    assert!(text.contains("queue-wait"), "{text}");
    assert!(text.contains("shard-exec"), "{text}");
    let csv = render_to_string(&table, Format::Csv).unwrap();
    assert!(csv.lines().count() > Stage::COUNT, "{csv}");
    let json = render_to_string(&table, Format::Json).unwrap();
    assert!(json.contains("settle-latency"), "{json}");
    fs::remove_dir_all(&dir).ok();
}
