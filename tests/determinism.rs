//! Reproducibility: identical seeds must give bitwise-identical campaigns,
//! regardless of rayon scheduling, session scheduling mode (sequential vs
//! parallel), or a checkpoint/resume round-trip — and different seeds must
//! differ.

use latest::core::{
    CampaignConfig, CampaignEvent, CampaignResult, CampaignSession, Latest, ShardResult,
};
use latest::gpu_sim::devices;
use latest::gpu_sim::freq::FreqMhz;
use proptest::prelude::*;

fn config(seed: u64) -> CampaignConfig {
    CampaignConfig::builder(devices::a100_sxm4())
        .frequencies_mhz(&[705, 1095, 1410])
        .measurements(10, 25)
        .simulated_sms(Some(4))
        .seed(seed)
        .build()
}

fn run(seed: u64, threads: usize) -> CampaignResult {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    pool.install(|| Latest::new(config(seed)).run().expect("campaign"))
}

fn all_latencies(result: &CampaignResult) -> Vec<(u32, u32, Vec<u64>)> {
    result
        .pairs()
        .iter()
        .map(|p| {
            let bits = p
                .latencies_ms()
                .unwrap_or(&[])
                .iter()
                .map(|f| f.to_bits())
                .collect();
            (p.init_mhz(), p.target_mhz(), bits)
        })
        .collect()
}

#[test]
fn identical_seeds_are_bitwise_identical() {
    let a = run(77, 4);
    let b = run(77, 4);
    assert_eq!(all_latencies(&a), all_latencies(&b));
}

#[test]
fn scheduling_does_not_affect_results() {
    // 1 worker vs many workers: per-pair platforms are seeded from
    // (campaign seed, pair), so the execution order cannot matter.
    let serial = run(78, 1);
    let parallel = run(78, 8);
    assert_eq!(all_latencies(&serial), all_latencies(&parallel));
}

#[test]
fn different_seeds_differ() {
    let a = run(79, 4);
    let b = run(80, 4);
    assert_ne!(all_latencies(&a), all_latencies(&b));
}

#[test]
fn filtered_summaries_are_identical_for_identical_seeds() {
    // Smoke test for the rand_chacha seeding path end to end: not just the
    // raw latencies but the post-analysis (DBSCAN-filtered) summaries must
    // be bitwise identical between two campaigns with the same seed.
    let a = run(82, 4);
    let b = run(82, 4);
    let summaries = |r: &CampaignResult| -> Vec<(u32, u32, u64, u64, u64, u64)> {
        r.pairs()
            .iter()
            .filter_map(|p| {
                p.filtered_summary().map(|s| {
                    (
                        p.init_mhz(),
                        p.target_mhz(),
                        s.mean.to_bits(),
                        s.stdev.to_bits(),
                        s.min.to_bits(),
                        s.max.to_bits(),
                    )
                })
            })
            .collect()
    };
    let (sa, sb) = (summaries(&a), summaries(&b));
    assert!(!sa.is_empty(), "campaign produced no filtered summaries");
    assert_eq!(sa, sb);
}

#[test]
fn phase1_characterisation_is_reproducible() {
    let a = run(81, 2);
    let b = run(81, 2);
    for (fa, fb) in a.phase1.freqs.values().zip(b.phase1.freqs.values()) {
        assert_eq!(fa.iter_ns.mean.to_bits(), fb.iter_ns.mean.to_bits());
        assert_eq!(fa.iter_ns.stdev.to_bits(), fb.iter_ns.stdev.to_bits());
    }
    assert_eq!(a.phase1.valid_pairs, b.phase1.valid_pairs);
}

// --- the session engine -----------------------------------------------------

#[test]
fn session_sequential_and_parallel_schedules_are_bitwise_identical() {
    // The session schedules pairs either inline or through rayon; per-pair
    // platform seeding makes the schedule invisible in the results.
    let sequential = CampaignSession::new(config(83))
        .sequential(true)
        .run()
        .unwrap();
    let parallel = CampaignSession::new(config(83)).run().unwrap();
    assert_eq!(all_latencies(&sequential), all_latencies(&parallel));
    // And the session agrees with the legacy wrapper it replaced.
    let legacy = Latest::new(config(83)).run().unwrap();
    assert_eq!(all_latencies(&sequential), all_latencies(&legacy));
}

#[test]
fn checkpoint_resume_roundtrip_is_bitwise_identical() {
    let uninterrupted = CampaignSession::new(config(84))
        .sequential(true)
        .run()
        .unwrap();

    // Cancel after the third pair completes, checkpoint through JSON (as a
    // process restart would), then resume the remaining pairs.
    let session = CampaignSession::new(config(84)).sequential(true);
    let token = session.cancel_token();
    let seen = std::sync::atomic::AtomicUsize::new(0);
    let session = session.observe(move |e: &CampaignEvent| {
        if matches!(e, CampaignEvent::PairFinished { .. })
            && seen.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1 == 3
        {
            token.cancel();
        }
    });
    let partial = session.run().unwrap();
    assert!(
        partial.is_partial(),
        "cancellation must leave pairs unmeasured"
    );
    let measured_before = partial.completed().count();
    assert!(measured_before < uninterrupted.completed().count());

    let checkpoint = CampaignResult::from_json(&partial.to_json()).expect("checkpoint parses");
    let resumed = CampaignSession::new(config(84))
        .sequential(true)
        .resume_from(checkpoint)
        .run()
        .unwrap();
    assert!(!resumed.is_partial());
    assert_eq!(all_latencies(&uninterrupted), all_latencies(&resumed));
}

// --- the work-unit layer ----------------------------------------------------

#[test]
fn sharded_schedules_are_bitwise_identical_to_sequential() {
    // The WorkUnit determinism contract: partitioning the pairs into any
    // number of shards must be invisible in the results — each pair's
    // platform is seeded from (campaign seed, pair) alone.
    let reference = CampaignSession::new(config(85))
        .sequential(true)
        .run()
        .unwrap();
    for n_shards in [1, 2, 5, usize::MAX] {
        let sharded = CampaignSession::new(config(85))
            .run_sharded(n_shards)
            .unwrap();
        assert_eq!(
            all_latencies(&reference),
            all_latencies(&sharded),
            "n_shards={n_shards}"
        );
        assert_eq!(
            reference.to_json(),
            sharded.to_json(),
            "n_shards={n_shards}"
        );
    }
}

proptest! {
    /// `CampaignResult::merge` must reassemble the canonical result from
    /// ANY partition of the pairs into shards, presented in any order.
    #[test]
    fn merge_reassembles_any_partition(
        assignment in proptest::collection::vec(0usize..4, 6),
    ) {
        static REFERENCE: std::sync::OnceLock<CampaignResult> = std::sync::OnceLock::new();
        let reference = REFERENCE.get_or_init(|| {
            CampaignSession::new(config(86))
                .sequential(true)
                .run()
                .unwrap()
        });
        let ordered = config(86).ordered_state_pairs();
        prop_assert_eq!(assignment.len(), ordered.len());

        // Partition the measured pairs by the random shard assignment,
        // then present the shards in reverse order: merge sorts them.
        let mut shards: Vec<ShardResult> = (0..4)
            .map(|shard| ShardResult { shard, pairs: Vec::new() })
            .collect();
        for (index, pair) in reference.pairs().iter().enumerate() {
            shards[assignment[index]].pairs.push((index, pair.clone()));
        }
        shards.reverse();

        let merged = CampaignResult::merge(
            reference.device_name.clone(),
            reference.device_index,
            reference.seed,
            reference.phase1.clone(),
            reference.probe.clone(),
            &ordered,
            shards,
        );
        prop_assert_eq!(reference.to_json(), merged.to_json());
    }
}

// --- the memory-clock plane -------------------------------------------------

fn mem_plane_config(seed: u64) -> CampaignConfig {
    CampaignConfig::builder(devices::a100_sxm4())
        .frequencies_mhz(&[705, 1410])
        .mem_frequencies_mhz(&[810, 1215])
        .measurements(6, 12)
        .simulated_sms(Some(2))
        .seed(seed)
        .build()
}

#[test]
fn mem_plane_sharded_schedules_are_bitwise_identical_to_sequential() {
    // The 2-D (core × memory) sweep inherits the WorkUnit determinism
    // contract unchanged: 4 states → 12 ordered state pairs, and any
    // sharding of them reproduces the sequential run bit for bit.
    let reference = CampaignSession::new(mem_plane_config(90))
        .sequential(true)
        .run()
        .unwrap();
    assert_eq!(reference.pairs().len(), 12);
    for n_shards in [1, 3, 5, usize::MAX] {
        let sharded = CampaignSession::new(mem_plane_config(90))
            .run_sharded(n_shards)
            .unwrap();
        assert_eq!(
            reference.to_json(),
            sharded.to_json(),
            "n_shards={n_shards}"
        );
    }
    // And two independent sequential runs agree bitwise too.
    let again = CampaignSession::new(mem_plane_config(90))
        .sequential(true)
        .run()
        .unwrap();
    assert_eq!(reference.to_json(), again.to_json());
}

// --- pair seeding -----------------------------------------------------------

proptest! {
    /// `pair_seed` must be collision-free across all ordered pairs of a
    /// realistic frequency ladder: two pairs sharing a seed would run
    /// identical simulations, silently correlating their noise.
    #[test]
    fn pair_seed_is_collision_free_over_a_ladder(
        base in 200u32..1200,
        step in 15u32..120,
        n in 2usize..40,
        seed in 0u64..u64::MAX,
    ) {
        let c = CampaignConfig::builder(devices::a100_sxm4()).seed(seed).build();
        let freqs: Vec<FreqMhz> = (0..n).map(|i| FreqMhz(base + step * i as u32)).collect();
        let mut seeds = std::collections::HashSet::new();
        for &init in &freqs {
            for &target in &freqs {
                if init != target {
                    prop_assert!(
                        seeds.insert(c.pair_seed(init, target)),
                        "seed collision at {init}->{target} MHz"
                    );
                }
            }
        }
        prop_assert_eq!(seeds.len(), n * (n - 1));
    }

    /// `state_pair_seed` must stay collision-free when the state space
    /// grows a memory dimension: over the full cross product of a core
    /// ladder with {no memory pin} ∪ {memory ladder}, every ordered state
    /// pair must get a distinct platform seed — including against the
    /// legacy core-only seeds, which the formula reduces to verbatim.
    #[test]
    fn state_pair_seed_is_collision_free_over_a_2d_plane(
        base in 200u32..1200,
        step in 15u32..120,
        n in 2usize..8,
        mem_base in 400u32..2000,
        mem_step in 50u32..400,
        m in 1usize..4,
        seed in 0u64..u64::MAX,
    ) {
        use latest::core::FreqState;
        let c = CampaignConfig::builder(devices::a100_sxm4()).seed(seed).build();
        let cores: Vec<FreqMhz> = (0..n).map(|i| FreqMhz(base + step * i as u32)).collect();
        let mut mems: Vec<Option<FreqMhz>> = vec![None];
        mems.extend((0..m).map(|i| Some(FreqMhz(mem_base + mem_step * i as u32))));
        let states: Vec<FreqState> = cores
            .iter()
            .flat_map(|&core| mems.iter().map(move |&mem| FreqState { core, mem }))
            .collect();
        let mut seeds = std::collections::HashSet::new();
        for &init in &states {
            for &target in &states {
                if init != target {
                    prop_assert!(
                        seeds.insert(c.state_pair_seed(init, target)),
                        "seed collision at {init}->{target}"
                    );
                }
            }
        }
        let k = states.len();
        prop_assert_eq!(seeds.len(), k * (k - 1));
    }
}
