//! Reproducibility: identical seeds must give bitwise-identical campaigns,
//! regardless of rayon scheduling, and different seeds must differ.

use latest::core::{CampaignConfig, CampaignResult, Latest};
use latest::gpu_sim::devices;

fn run(seed: u64, threads: usize) -> CampaignResult {
    let config = CampaignConfig::builder(devices::a100_sxm4())
        .frequencies_mhz(&[705, 1095, 1410])
        .measurements(10, 25)
        .simulated_sms(Some(4))
        .seed(seed)
        .build();
    let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
    pool.install(|| Latest::new(config).run().expect("campaign"))
}

fn all_latencies(result: &CampaignResult) -> Vec<(u32, u32, Vec<u64>)> {
    result
        .pairs()
        .iter()
        .map(|p| {
            let bits = p
                .latencies_ms()
                .unwrap_or(&[])
                .iter()
                .map(|f| f.to_bits())
                .collect();
            (p.init_mhz, p.target_mhz, bits)
        })
        .collect()
}

#[test]
fn identical_seeds_are_bitwise_identical() {
    let a = run(77, 4);
    let b = run(77, 4);
    assert_eq!(all_latencies(&a), all_latencies(&b));
}

#[test]
fn scheduling_does_not_affect_results() {
    // 1 worker vs many workers: per-pair platforms are seeded from
    // (campaign seed, pair), so the execution order cannot matter.
    let serial = run(78, 1);
    let parallel = run(78, 8);
    assert_eq!(all_latencies(&serial), all_latencies(&parallel));
}

#[test]
fn different_seeds_differ() {
    let a = run(79, 4);
    let b = run(80, 4);
    assert_ne!(all_latencies(&a), all_latencies(&b));
}

#[test]
fn filtered_summaries_are_identical_for_identical_seeds() {
    // Smoke test for the rand_chacha seeding path end to end: not just the
    // raw latencies but the post-analysis (DBSCAN-filtered) summaries must
    // be bitwise identical between two campaigns with the same seed.
    let a = run(82, 4);
    let b = run(82, 4);
    let summaries = |r: &CampaignResult| -> Vec<(u32, u32, u64, u64, u64, u64)> {
        r.pairs()
            .iter()
            .filter_map(|p| {
                p.filtered_summary().map(|s| {
                    (
                        p.init_mhz,
                        p.target_mhz,
                        s.mean.to_bits(),
                        s.stdev.to_bits(),
                        s.min.to_bits(),
                        s.max.to_bits(),
                    )
                })
            })
            .collect()
    };
    let (sa, sb) = (summaries(&a), summaries(&b));
    assert!(!sa.is_empty(), "campaign produced no filtered summaries");
    assert_eq!(sa, sb);
}

#[test]
fn phase1_characterisation_is_reproducible() {
    let a = run(81, 2);
    let b = run(81, 2);
    for (fa, fb) in a.phase1.freqs.values().zip(b.phase1.freqs.values()) {
        assert_eq!(fa.iter_ns.mean.to_bits(), fb.iter_ns.mean.to_bits());
        assert_eq!(fa.iter_ns.stdev.to_bits(), fb.iter_ns.stdev.to_bits());
    }
    assert_eq!(a.phase1.valid_pairs, b.phase1.valid_pairs);
}
