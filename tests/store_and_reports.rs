//! The unified results pipeline end to end: archive a campaign in the
//! [`ResultStore`], query it back, render the artifact bundle, and diff
//! stored runs — the `latest run --store` / `latest report` / `latest diff`
//! data path, exercised at the library level.

use std::fs;
use std::path::PathBuf;

use latest::core::spec::CampaignSpec;
use latest::core::store::{ResultStore, RunId};
use latest::core::view::{LatencyView, PairStat};
use latest::core::{CampaignResult, Latest};
use latest::report::{render_to_string, Bundle, CampaignDiff, Format};
use proptest::prelude::*;

fn tiny_spec(seed: u64, max_measurements: usize) -> CampaignSpec {
    CampaignSpec::builder("a100")
        .frequencies_mhz(&[705, 1410])
        .measurements(3, max_measurements.max(3))
        .simulated_sms(Some(2))
        .seed(seed)
        .build()
        .unwrap()
}

fn run_spec(spec: &CampaignSpec) -> CampaignResult {
    Latest::new(spec.resolve().unwrap()).run().unwrap()
}

fn temp_store(tag: &str) -> ResultStore {
    let dir = std::env::temp_dir().join(format!("latest_it_store_{tag}_{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    ResultStore::open(dir).unwrap()
}

#[test]
fn archive_query_report_diff_round_trip() {
    let store = temp_store("pipeline");
    let spec = tiny_spec(41, 8);
    let result = run_spec(&spec);
    let id = store.put(&spec, &result).unwrap();

    // Query layer over the reloaded run agrees with the in-memory one.
    let stored = store.get(&id).unwrap();
    let live = LatencyView::of(&result).completed();
    let reloaded = LatencyView::of(&stored.result).completed();
    assert_eq!(live.count(), reloaded.count());
    assert_eq!(
        live.stat_extreme(PairStat::Max, true)
            .map(|(v, i, t)| (v.to_bits(), i, t)),
        reloaded
            .stat_extreme(PairStat::Max, true)
            .map(|(v, i, t)| (v.to_bits(), i, t)),
    );

    // The bundle rendered from the stored run is bitwise identical to the
    // bundle rendered from the live result: determinism survives the
    // archive round trip.
    let live_bundle = Bundle::for_campaign(&result).render_all().unwrap();
    let stored_bundle = Bundle::for_campaign(&stored.result).render_all().unwrap();
    assert_eq!(live_bundle, stored_bundle);

    // `latest diff` semantics: a run against itself reports zero
    // significant regressions (and zero improvements).
    let diff = CampaignDiff::between(&stored.result, &stored.result, 0.05);
    assert_eq!(diff.significant_regressions(), 0);
    assert_eq!(diff.improvements().count(), 0);
    assert!(!diff.deltas.is_empty());

    fs::remove_dir_all(store.root()).ok();
}

#[test]
fn diff_of_different_seeds_is_significance_annotated() {
    let store = temp_store("seeds");
    let spec_a = tiny_spec(1, 10);
    let spec_b = tiny_spec(2, 10);
    let id_a = store.put(&spec_a, &run_spec(&spec_a)).unwrap();
    let id_b = store.put(&spec_b, &run_spec(&spec_b)).unwrap();
    assert_ne!(id_a, id_b, "different seeds must archive separately");

    let (a, b) = (store.get(&id_a).unwrap(), store.get(&id_b).unwrap());
    let diff = CampaignDiff::between(&a.result, &b.result, 0.05);
    assert_eq!(diff.deltas.len(), 2);
    // Every common pair carries a p-value from the Mann-Whitney test.
    for d in &diff.deltas {
        let p = d.p_value.expect("samples are large enough to test");
        assert!((0.0..=1.0).contains(&p));
    }
    // The rendered table annotates significance per pair.
    let table = render_to_string(&diff.regression_table(), Format::Text).unwrap();
    assert!(table.contains("p-value"));
    assert!(table.contains("verdict"));
    fs::remove_dir_all(store.root()).ok();
}

#[test]
fn store_survives_reopen_and_lists_provenance() {
    let root: PathBuf;
    {
        let store = temp_store("reopen");
        root = store.root().to_path_buf();
        let spec = tiny_spec(9, 6);
        store.put(&spec, &run_spec(&spec)).unwrap();
    }
    let reopened = ResultStore::open(&root).unwrap();
    let runs = reopened.list().unwrap();
    assert_eq!(runs.len(), 1);
    assert_eq!(runs[0].provenance.seed, 9);
    assert_eq!(runs[0].provenance.pairs_total, 2);
    assert!(runs[0].provenance.device_name.contains("A100"));
    fs::remove_dir_all(&root).ok();
}

proptest! {
    /// `RunId` is a pure function of the spec and stable across JSON
    /// re-serialisation, for any builder-accepted spec shape.
    #[test]
    fn run_id_stable_across_reserialisation(
        device_i in 0usize..3,
        seed in 0u64..u64::MAX,
        rse in 0.001f64..0.95,
        min in 1usize..60,
        extra in 0usize..100,
        n in 2usize..12,
    ) {
        let device = ["a100", "gh200", "quadro"][device_i];
        let spec = CampaignSpec::builder(device)
            .frequency_subset(n)
            .seed(seed)
            .rse_threshold(rse)
            .measurements(min, min + extra)
            .build()
            .expect("valid spec");
        let id = RunId::of_spec(&spec);
        let mut reserialised = spec.clone();
        for _ in 0..3 {
            reserialised = CampaignSpec::from_json(&reserialised.to_json()).unwrap();
            prop_assert_eq!(RunId::of_spec(&reserialised), id.clone());
        }
        // And a different seed always moves the address.
        let mut other = spec.clone();
        other.seed = seed.wrapping_add(1);
        prop_assert_ne!(RunId::of_spec(&other), id);
    }
}

// Store idempotence needs real campaign runs; keep the case count small so
// the property stays cheap.
fn idempotence_cases() -> Vec<(u64, usize)> {
    vec![(1, 3), (2, 4), (3, 5), (17, 6), (99, 8)]
}

#[test]
fn store_put_get_put_is_idempotent() {
    let store = temp_store("idem_it");
    for (seed, max) in idempotence_cases() {
        let spec = tiny_spec(seed, max);
        let result = run_spec(&spec);
        let id1 = store.put(&spec, &result).unwrap();
        let bytes1 = fs::read(store.root().join(format!("{id1}.json"))).unwrap();
        let stored = store.get(&id1).unwrap();
        // put(get(put(x))) writes the same bytes at the same address.
        let id2 = store.put(&stored.spec, &stored.result).unwrap();
        let bytes2 = fs::read(store.root().join(format!("{id2}.json"))).unwrap();
        assert_eq!(id1, id2, "seed {seed}");
        assert_eq!(bytes1, bytes2, "seed {seed}: archive entry not idempotent");
    }
    fs::remove_dir_all(store.root()).ok();
}
