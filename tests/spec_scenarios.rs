//! The declarative spec layer, end to end: every `SpecError` variant is
//! reachable, builder-accepted specs survive a JSON round-trip unchanged
//! (property-tested), spec-driven runs are bitwise identical to hand-built
//! `CampaignConfig` runs, and every checked-in `scenarios/*.json` file
//! parses, validates and resolves.

use latest::core::spec::{
    CampaignSpec, FleetSpec, FreqSelection, ScenarioSpec, SpecCheckpoint, SpecError, SpecErrors,
};
use latest::core::{CampaignConfig, CampaignResult, CampaignSession};
use latest::gpu_sim::devices::{self, DeviceRegistry};
use latest::traffic::{TrafficRegistry, TrafficSpec};
use proptest::prelude::*;

// --- one test per SpecError variant ----------------------------------------

fn the_error(result: Result<CampaignSpec, SpecErrors>) -> Vec<SpecError> {
    result.expect_err("spec must be rejected").errors().to_vec()
}

#[test]
fn unknown_device_lists_the_vocabulary() {
    let errs = the_error(
        CampaignSpec::builder("h100")
            .frequencies_mhz(&[705, 1410])
            .build(),
    );
    assert_eq!(errs.len(), 1);
    let SpecError::UnknownDevice { name, known } = &errs[0] else {
        panic!("wrong variant: {errs:?}");
    };
    assert_eq!(name, "h100");
    assert_eq!(known, &["quadro", "a100", "gh200"]);
    // The rendered message carries the vocabulary — the CLI shows it verbatim.
    let msg = errs[0].to_string();
    assert!(msg.contains("quadro") && msg.contains("a100") && msg.contains("gh200"));
}

#[test]
fn unknown_workload_lists_the_vocabulary() {
    let errs = the_error(
        CampaignSpec::builder("a100")
            .frequencies_mhz(&[705, 1410])
            .workload("compute-heavy")
            .build(),
    );
    assert!(
        matches!(&errs[..], [SpecError::UnknownWorkload { name, known }]
            if name == "compute-heavy" && known.contains(&"paper-default".to_string()))
    );
}

#[test]
fn too_few_frequencies_is_rejected() {
    let errs = the_error(
        CampaignSpec::builder("a100")
            .frequencies_mhz(&[705])
            .build(),
    );
    assert!(matches!(
        &errs[..],
        [SpecError::TooFewFrequencies { got: 1 }]
    ));
    // The default (empty) selection is equally invalid.
    let errs = the_error(CampaignSpec::builder("a100").build());
    assert!(matches!(
        &errs[..],
        [SpecError::TooFewFrequencies { got: 0 }]
    ));
}

#[test]
fn duplicate_frequency_is_rejected_once_per_value() {
    let errs = the_error(
        CampaignSpec::builder("a100")
            .frequencies_mhz(&[705, 1410, 705, 705])
            .build(),
    );
    assert!(matches!(
        &errs[..],
        [SpecError::DuplicateFrequency { mhz: 705 }]
    ));
}

#[test]
fn off_ladder_frequency_names_the_device() {
    let errs = the_error(
        CampaignSpec::builder("a100")
            .frequencies_mhz(&[705, 1411])
            .build(),
    );
    assert!(
        matches!(&errs[..], [SpecError::OffLadderFrequency { mhz: 1411, device }]
        if device == "NVIDIA A100-SXM4-40GB")
    );
}

#[test]
fn subset_too_small_is_rejected() {
    let errs = the_error(CampaignSpec::builder("gh200").frequency_subset(1).build());
    assert!(matches!(&errs[..], [SpecError::SubsetTooSmall { n: 1 }]));
}

#[test]
fn subset_exceeding_the_ladder_is_rejected() {
    // ladder.subset(n) silently clamps to the whole ladder; the spec layer
    // must reject the typo instead of quietly benchmarking fewer values.
    let errs = the_error(CampaignSpec::builder("a100").frequency_subset(500).build());
    assert!(matches!(
        &errs[..],
        [SpecError::SubsetExceedsLadder { n: 500, steps: 81 }]
    ));
    // The exact ladder size is the boundary case and stays valid.
    assert!(CampaignSpec::builder("a100")
        .frequency_subset(81)
        .build()
        .is_ok());
}

#[test]
fn rse_threshold_out_of_range_is_rejected() {
    for bad in [0.0, 1.0, -0.3, 2.5] {
        let errs = the_error(
            CampaignSpec::builder("a100")
                .frequencies_mhz(&[705, 1410])
                .rse_threshold(bad)
                .build(),
        );
        assert!(
            matches!(&errs[..], [SpecError::RseThresholdOutOfRange { value }] if *value == bad)
        );
    }
}

#[test]
fn zero_min_measurements_is_rejected() {
    let errs = the_error(
        CampaignSpec::builder("a100")
            .frequencies_mhz(&[705, 1410])
            .measurements(0, 50)
            .build(),
    );
    assert!(matches!(&errs[..], [SpecError::ZeroMinMeasurements]));
}

#[test]
fn inverted_measurement_bounds_are_rejected() {
    let errs = the_error(
        CampaignSpec::builder("a100")
            .frequencies_mhz(&[705, 1410])
            .measurements(100, 10)
            .build(),
    );
    assert!(matches!(
        &errs[..],
        [SpecError::MeasurementBoundsInverted { min: 100, max: 10 }]
    ));
}

#[test]
fn zero_simulated_sms_is_rejected() {
    let errs = the_error(
        CampaignSpec::builder("a100")
            .frequencies_mhz(&[705, 1410])
            .simulated_sms(Some(0))
            .build(),
    );
    assert!(matches!(&errs[..], [SpecError::ZeroSimulatedSms]));
    // `None` (all SMs) stays valid.
    assert!(CampaignSpec::builder("a100")
        .frequencies_mhz(&[705, 1410])
        .simulated_sms(None)
        .build()
        .is_ok());
}

#[test]
fn sigma_non_positive_is_rejected_by_try_build() {
    let errs = CampaignConfig::builder(devices::a100_sxm4())
        .sigma_k(0.0)
        .try_build()
        .unwrap_err();
    assert!(matches!(
        errs.errors(),
        [SpecError::SigmaNonPositive { value }] if *value == 0.0
    ));
}

#[test]
fn confidence_out_of_range_is_rejected_by_try_build() {
    let errs = CampaignConfig::builder(devices::a100_sxm4())
        .confidence(1.0)
        .try_build()
        .unwrap_err();
    assert!(matches!(
        errs.errors(),
        [SpecError::ConfidenceOutOfRange { value }] if *value == 1.0
    ));
}

#[test]
fn empty_fleet_is_rejected() {
    let errs = FleetSpec::new().validate().unwrap_err();
    assert!(matches!(errs.errors(), [SpecError::EmptyFleet]));
}

#[test]
fn fleet_member_violations_carry_the_member_index() {
    let fleet = FleetSpec::new()
        .member(
            CampaignSpec::builder("a100")
                .frequencies_mhz(&[705, 1410])
                .build()
                .unwrap(),
        )
        .member(CampaignSpec::builder("unknown-gpu").build_unchecked());
    let errs = fleet.validate().unwrap_err();
    assert_eq!(errs.errors().len(), 2, "{errs}");
    for e in errs.errors() {
        let SpecError::InMember { index: 1, inner } = e else {
            panic!("wrong variant: {e:?}");
        };
        assert!(matches!(
            **inner,
            SpecError::UnknownDevice { .. } | SpecError::TooFewFrequencies { .. }
        ));
    }
}

// --- property: builder-accepted specs round-trip through JSON ---------------

proptest! {
    /// Any spec the builder accepts must survive JSON serialisation
    /// unchanged — scenario files written by `print-spec` are lossless.
    #[test]
    fn builder_accepted_specs_round_trip_json(
        device_i in 0usize..3,
        selection_kind in 0usize..3,
        n in 2usize..12,
        seed in 0u64..u64::MAX,
        rse in 0.001f64..0.95,
        knobs in (1usize..60, 0usize..100, 0u32..16, 0usize..3),
    ) {
        let (min, extra, sms, workload_i) = knobs;
        let registry = DeviceRegistry::builtin();
        let device = registry.names()[device_i].clone();
        let workload = ["paper-default", "memory-bound", "bursty"][workload_i];

        let mut builder = CampaignSpec::builder(&device)
            .description("prop")
            .seed(seed)
            .rse_threshold(rse)
            .measurements(min, min + extra)
            .simulated_sms(if sms == 0 { None } else { Some(sms) })
            .workload(workload);
        builder = match selection_kind {
            0 => {
                // An on-ladder list: take it from the device's own ladder.
                let ladder = registry.get(&device).unwrap().ladder;
                let mhz: Vec<u32> = ladder.subset(n).iter().map(|f| f.0).collect();
                builder.frequencies_mhz(&mhz)
            }
            1 => builder.frequency_subset(n),
            _ => builder.full_ladder(),
        };
        let spec = builder.build().expect("constructed to be valid");

        let back = CampaignSpec::from_json(&spec.to_json()).expect("round-trip parses");
        prop_assert_eq!(&back, &spec);
        // And the round-tripped spec still validates and resolves.
        prop_assert!(back.validate().is_ok());
        prop_assert!(back.resolve().is_ok());
    }
}

// --- determinism: spec path == struct-literal path ---------------------------

fn all_latency_bits(result: &CampaignResult) -> Vec<(u32, u32, Vec<u64>)> {
    result
        .pairs()
        .iter()
        .map(|p| {
            let bits = p
                .latencies_ms()
                .unwrap_or(&[])
                .iter()
                .map(|f| f.to_bits())
                .collect();
            (p.init_mhz(), p.target_mhz(), bits)
        })
        .collect()
}

#[test]
fn spec_run_is_bitwise_identical_to_struct_literal_run() {
    let spec = CampaignSpec::builder("a100")
        .frequencies_mhz(&[705, 1410])
        .measurements(6, 12)
        .simulated_sms(Some(2))
        .seed(99)
        .build()
        .unwrap();

    // Path 1: JSON -> spec -> session -> result (the scenario-file path).
    let via_json = CampaignSpec::from_json(&spec.to_json())
        .unwrap()
        .into_session()
        .unwrap()
        .run()
        .unwrap();

    // Path 2: the spec object directly.
    let via_spec = spec.into_session().unwrap().run().unwrap();

    // Path 3: the historical hand-built CampaignConfig literal.
    let config = CampaignConfig::builder(devices::a100_sxm4())
        .frequencies_mhz(&[705, 1410])
        .measurements(6, 12)
        .simulated_sms(Some(2))
        .seed(99)
        .build();
    let via_literal = CampaignSession::new(config).run().unwrap();

    assert_eq!(all_latency_bits(&via_json), all_latency_bits(&via_spec));
    assert_eq!(all_latency_bits(&via_spec), all_latency_bits(&via_literal));
    // Post-analysis state must agree too, not just raw latencies.
    for (a, b) in via_json.pairs().iter().zip(via_literal.pairs()) {
        assert_eq!(
            a.filtered_summary().map(|s| s.mean.to_bits()),
            b.filtered_summary().map(|s| s.mean.to_bits())
        );
    }
    assert_eq!(via_json.to_json(), via_literal.to_json());
}

// --- the checked-in scenario catalog ----------------------------------------

fn scenario_files() -> Vec<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("scenarios/ exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    files
}

#[test]
fn every_checked_in_scenario_parses_validates_and_resolves() {
    let files = scenario_files();
    assert!(files.len() >= 3, "scenario catalog went missing: {files:?}");
    for path in files {
        let text = std::fs::read_to_string(&path).unwrap();
        let scenario =
            ScenarioSpec::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        scenario
            .validate()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        // Serialising the parsed scenario and parsing it back is lossless.
        assert_eq!(
            ScenarioSpec::from_json(&scenario.to_json()).unwrap(),
            scenario,
            "{} round-trip",
            path.display()
        );
        match scenario {
            ScenarioSpec::Campaign(c) => {
                c.resolve()
                    .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            }
            ScenarioSpec::Fleet(f) => {
                f.into_fleet()
                    .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            }
        }
    }
}

// --- the checked-in traffic catalog -----------------------------------------

fn traffic_scenario_files() -> Vec<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join("traffic");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("scenarios/traffic/ exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    files
}

#[test]
fn every_checked_in_traffic_scenario_parses_validates_and_generates() {
    let files = traffic_scenario_files();
    let names: Vec<String> = files
        .iter()
        .map(|p| p.file_stem().unwrap().to_string_lossy().into_owned())
        .collect();
    // The govern CLI's examples reference at least these two shapes.
    for required in ["bursty", "deadline"] {
        assert!(
            names.iter().any(|n| n == required),
            "scenarios/traffic/{required}.json is missing: {names:?}"
        );
    }
    for path in files {
        let text = std::fs::read_to_string(&path).unwrap();
        let spec =
            TrafficSpec::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        spec.validate()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        // Round-trip is lossless and generation is deterministic per seed.
        assert_eq!(
            TrafficSpec::from_json(&spec.to_json()).unwrap(),
            spec,
            "{} round-trip",
            path.display()
        );
        let trace = spec.generate().unwrap();
        assert!(
            !trace.is_empty(),
            "{} generates no requests",
            path.display()
        );
        let again = spec.generate().unwrap();
        assert_eq!(trace.requests, again.requests, "{}", path.display());
    }
}

#[test]
fn traffic_scenario_files_match_the_builtin_registry() {
    // The files are the registry's builtin specs serialised; keep them in
    // lock-step so `govern run bursty` and `govern run
    // scenarios/traffic/bursty.json` score the same workload.
    let registry = TrafficRegistry::builtin();
    let files = traffic_scenario_files();
    assert_eq!(files.len(), registry.names().len(), "catalog drifted");
    for path in files {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let from_file = TrafficSpec::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let builtin = registry
            .get(&name)
            .unwrap_or_else(|| panic!("{name} is not a builtin traffic spec"));
        assert_eq!(&from_file, builtin, "{} drifted from the builtin", name);
    }
}

#[test]
fn unknown_keys_inside_frequency_maps_are_rejected() {
    let err = CampaignSpec::from_json(
        r#"{"device": "a100", "frequencies": {"subset": 5, "susbet": 18}}"#,
    )
    .unwrap_err();
    assert!(err.to_string().contains("susbet"), "{err}");
}

#[test]
fn spec_checkpoint_round_trips_spec_and_result() {
    let spec = CampaignSpec::builder("a100")
        .frequencies_mhz(&[705, 1410])
        .measurements(4, 8)
        .simulated_sms(Some(2))
        .seed(5)
        .build()
        .unwrap();
    let result = spec.clone().into_session().unwrap().run().unwrap();
    let doc = SpecCheckpoint {
        spec: spec.clone(),
        result,
    };
    let back = SpecCheckpoint::from_json(&doc.to_json()).unwrap();
    // The stored spec is byte-comparable against the effective spec of a
    // rerun — the CLI uses this to refuse mixed-configuration resumes.
    assert_eq!(back.spec, spec);
    assert_ne!(
        back.spec,
        CampaignSpec {
            max_measurements: 150,
            ..spec.clone()
        }
    );
    assert_eq!(back.result.to_json(), doc.result.to_json());
}

#[test]
fn fleet_spec_runs_and_exports_summary_csv() {
    let member = |device: &str, freqs: &[u32], seed: u64| {
        CampaignSpec::builder(device)
            .frequencies_mhz(freqs)
            .measurements(4, 8)
            .simulated_sms(Some(2))
            .seed(seed)
            .build()
            .unwrap()
    };
    let fleet = FleetSpec::new()
        .description("two-device smoke")
        .member(member("a100", &[705, 1410], 11))
        .member(member("gh200", &[705, 1980], 12));

    // The fleet spec round-trips through JSON like campaign specs do.
    let back = FleetSpec::from_json(&fleet.to_json()).unwrap();
    assert_eq!(back, fleet);

    let result = back.into_fleet().unwrap().run().unwrap();
    assert_eq!(result.devices().len(), 2);
    let csv = result.summary_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 3);
    assert!(lines[0].starts_with("device_name,"));
    assert!(lines[1].contains("A100"));
    assert!(lines[2].contains("GH200"));
}

#[test]
fn frequency_selections_resolve_against_the_device_ladder() {
    let subset = CampaignSpec::builder("gh200")
        .frequency_subset(6)
        .build()
        .unwrap()
        .resolve()
        .unwrap();
    assert_eq!(subset.frequencies.len(), 6);
    assert!(subset
        .frequencies
        .iter()
        .all(|f| subset.spec.ladder.contains(*f)));

    let ladder = CampaignSpec::builder("a100")
        .full_ladder()
        .build()
        .unwrap()
        .resolve()
        .unwrap();
    assert_eq!(ladder.frequencies.len(), 81);

    // Serialised forms of the three selections.
    assert_eq!(
        CampaignSpec::from_json(r#"{"frequencies": {"subset": 6}}"#)
            .unwrap()
            .frequencies,
        FreqSelection::Subset(6)
    );
    assert_eq!(
        CampaignSpec::from_json(r#"{"frequencies": "ladder"}"#)
            .unwrap()
            .frequencies,
        FreqSelection::Ladder
    );
    assert_eq!(
        CampaignSpec::from_json(r#"{"frequencies": [705, 1410]}"#)
            .unwrap()
            .frequencies,
        FreqSelection::List(vec![705, 1410])
    );
}
