//! The streaming session API and the multi-device fleet driver, exercised
//! across crate boundaries: events must arrive *while the campaign runs*
//! (not as a post-hoc dump), cancellation must checkpoint, and a fleet over
//! two different GPU models must aggregate per-device results that feed the
//! cross-device report table.

use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::time::Duration;

use latest::core::{
    CampaignConfig, CampaignEvent, CampaignSession, Fleet, PairOutcome, SkipReason,
};
use latest::gpu_sim::devices::{self, DeviceSpec};
use latest::gpu_sim::transition::FixedTransition;
use latest::report::{cross_device_table, CrossDeviceRow};
use latest::sim_clock::SimDuration;

fn quick_config(spec: DeviceSpec, freqs: &[u32], seed: u64) -> CampaignConfig {
    let mut spec = spec;
    spec.transition = Arc::new(FixedTransition {
        latency: SimDuration::from_millis(7),
    });
    CampaignConfig::builder(spec)
        .frequencies_mhz(freqs)
        .measurements(6, 15)
        .simulated_sms(Some(2))
        .seed(seed)
        .build()
}

/// The acceptance test for the event stream: a consumer on another thread
/// observes `PairFinished` events in real time, i.e. delivered while the
/// campaign is still running, not as a post-hoc dump.
#[test]
fn event_stream_delivers_pair_finished_in_real_time() {
    let mut session =
        CampaignSession::new(quick_config(devices::a100_sxm4(), &[705, 1095, 1410], 41));
    let rx = session.events();

    // Rendezvous observer: on the *first* PairFinished the worker blocks
    // inside run() until this thread acknowledges receipt. That makes the
    // "observed in real time" property deterministic — the campaign cannot
    // have completed when the first PairFinished is consumed, regardless
    // of thread scheduling.
    let (ack_tx, ack_rx) = std::sync::mpsc::channel::<()>();
    let first = std::sync::atomic::AtomicBool::new(true);
    let ack_rx = std::sync::Mutex::new(ack_rx);
    let session = session.observe(move |e: &CampaignEvent| {
        if matches!(e, CampaignEvent::PairFinished { .. })
            && first.swap(false, std::sync::atomic::Ordering::SeqCst)
        {
            let _ = ack_rx.lock().unwrap().recv();
        }
    });

    let worker = std::thread::spawn(move || session.run().unwrap());

    let mut started = 0usize;
    let mut finished = 0usize;
    let mut saw_phase1 = false;
    loop {
        match rx.recv_timeout(Duration::from_secs(300)) {
            Ok(CampaignEvent::Phase1Done { .. }) => {
                assert_eq!(started, 0, "phase 1 must precede all pair work");
                saw_phase1 = true;
            }
            Ok(CampaignEvent::PairStarted { .. }) => started += 1,
            Ok(CampaignEvent::PairFinished {
                measurements,
                mean_ms,
                ..
            }) => {
                finished += 1;
                assert!(measurements >= 6);
                assert!(mean_ms > 0.0);
                if finished == 1 {
                    // The observer holds the worker inside run() until we
                    // acknowledge: this event was necessarily observed in
                    // real time.
                    assert!(
                        !worker.is_finished(),
                        "campaign finished before its first PairFinished was consumed"
                    );
                    ack_tx.send(()).unwrap();
                }
            }
            Ok(CampaignEvent::CampaignFinished { completed, .. }) => {
                assert_eq!(completed, finished);
                break;
            }
            Ok(_) => {}
            Err(RecvTimeoutError::Timeout) => panic!("event stream stalled"),
            Err(RecvTimeoutError::Disconnected) => panic!("stream closed before completion"),
        }
    }
    let result = worker.join().unwrap();

    assert!(saw_phase1);
    assert_eq!(started, 6, "every ordered pair must announce itself");
    assert_eq!(finished, result.completed().count());
}

/// Fleet acceptance: a run over two different device specs (A100 + GH200)
/// completes with per-device results, and the aggregation feeds the
/// cross-device table renderer.
#[test]
fn fleet_over_two_models_aggregates_per_device() {
    let fleet = Fleet::new()
        .add_campaign(quick_config(devices::a100_sxm4(), &[705, 1410], 42))
        .add_campaign(quick_config(devices::gh200(), &[705, 1980], 43));
    let result = fleet.run().unwrap();

    assert_eq!(result.devices().len(), 2);
    assert!(result.unstarted().is_empty());
    let a100 = result
        .by_name("NVIDIA A100-SXM4-40GB")
        .expect("A100 measured");
    let gh200 = result
        .by_name("NVIDIA GH200 (Grace Hopper)")
        .expect("GH200 measured");
    assert!(a100.completed().count() >= 1);
    assert!(gh200.completed().count() >= 1);

    // Aggregate rows feed latest-report's cross-device table.
    let rows: Vec<CrossDeviceRow> = result.summary_rows().into_iter().map(Into::into).collect();
    let rendered = cross_device_table(&rows).render();
    assert!(rendered.contains("A100"));
    assert!(rendered.contains("GH200"));
    assert_eq!(rendered.lines().count(), 4); // header + rule + 2 devices

    // Same fixed 7 ms transition model on both devices: the filtered means
    // must agree on the scale even though the architectures differ.
    for s in result.summary_rows() {
        assert!(
            s.best_ms > 5.0 && s.worst_ms < 25.0,
            "{}: [{:.3}, {:.3}] ms outside the fixed-transition band",
            s.device_name,
            s.best_ms,
            s.worst_ms
        );
    }
}

/// Fleet events are tagged with the device slot, and a shared cancel token
/// checkpoints every member.
#[test]
fn fleet_events_and_cancellation_compose() {
    let fleet = Fleet::new()
        .add_campaign(quick_config(devices::a100_sxm4(), &[705, 1410], 44))
        .add_campaign(quick_config(devices::a100_sxm4_unit(1), &[705, 1410], 45))
        .sequential(true);

    let (tx, rx) = std::sync::mpsc::channel::<(usize, bool)>();
    let tx = std::sync::Mutex::new(tx);
    let fleet = fleet.observe(move |slot: usize, e: &CampaignEvent| {
        if matches!(
            e,
            CampaignEvent::PairFinished { .. } | CampaignEvent::PairSkipped { .. }
        ) {
            let finished = matches!(e, CampaignEvent::PairFinished { .. });
            let _ = tx.lock().unwrap().send((slot, finished));
        }
    });
    let result = fleet.run().unwrap();
    let tagged: Vec<(usize, bool)> = rx.try_iter().collect();
    assert!(tagged.iter().any(|&(slot, _)| slot == 0));
    assert!(tagged.iter().any(|&(slot, _)| slot == 1));
    assert_eq!(
        tagged.iter().filter(|&&(_, finished)| finished).count(),
        result
            .devices()
            .iter()
            .map(|d| d.completed().count())
            .sum::<usize>()
    );
}

/// A cancelled pair is recorded with the dedicated outcome and skip reason,
/// and the partial result knows it is partial.
#[test]
fn cancellation_marks_pairs_and_result_partial() {
    let session = CampaignSession::new(quick_config(devices::a100_sxm4(), &[705, 1095, 1410], 46))
        .sequential(true);
    let token = session.cancel_token();
    let mut session = session.observe(move |e: &CampaignEvent| {
        if matches!(e, CampaignEvent::PairFinished { .. }) {
            token.cancel();
        }
    });
    let rx = session.events();
    let result = session.run().unwrap();

    assert!(result.is_partial());
    assert_eq!(result.completed().count(), 1);
    let cancelled = result
        .pairs()
        .iter()
        .filter(|p| matches!(p.outcome, PairOutcome::Cancelled))
        .count();
    assert_eq!(cancelled, result.pairs().len() - 1);
    let skip_events = rx
        .try_iter()
        .filter(|e| {
            matches!(
                e,
                CampaignEvent::PairSkipped {
                    reason: SkipReason::Cancelled,
                    ..
                }
            )
        })
        .count();
    assert_eq!(skip_events, cancelled);
}
