//! End-to-end proof of the campaign execution service: a mixed batch over
//! a multi-worker pool with deduplication, the result cache, and
//! checkpointed crash recovery — the acceptance path of the queue
//! subsystem.

use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use latest::core::spec::{CampaignSpec, FleetSpec, ScenarioSpec};
use latest::core::store::RunId;
use latest::core::{CampaignEvent, CampaignResult, CampaignSession};
use latest::queue::{CompletionVia, JobState, PoolConfig, QueueEvent, SubmitOptions, WorkerPool};
use latest::telemetry::Stage;

fn tiny(seed: u64) -> CampaignSpec {
    CampaignSpec::builder("a100")
        .frequencies_mhz(&[705, 1410])
        .measurements(3, 6)
        .simulated_sms(Some(2))
        .seed(seed)
        .build()
        .unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("latest_queue_e2e_{tag}_{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// Reference: the result the service must reproduce for a spec, computed
/// on a plain uninterrupted session.
fn reference_run(spec: &CampaignSpec) -> CampaignResult {
    CampaignSession::new(spec.resolve().unwrap()).run().unwrap()
}

type EventLog = Arc<Mutex<Vec<QueueEvent>>>;

fn recording_pool_with(dir: &PathBuf, config: PoolConfig) -> (WorkerPool, EventLog) {
    let events: EventLog = Arc::new(Mutex::new(Vec::new()));
    let sink = events.clone();
    let pool = WorkerPool::open(dir, config)
        .unwrap()
        .observe(move |e: &QueueEvent| sink.lock().unwrap().push(e.clone()));
    (pool, events)
}

fn recording_pool(dir: &PathBuf, workers: usize) -> (WorkerPool, EventLog) {
    recording_pool_with(
        dir,
        PoolConfig {
            workers,
            ..PoolConfig::default()
        },
    )
}

/// Which jobs emitted actual campaign work (any `Progress` event).
fn jobs_that_executed(events: &[QueueEvent]) -> Vec<latest::queue::JobId> {
    let mut ids: Vec<latest::queue::JobId> = events
        .iter()
        .filter_map(|e| match e {
            QueueEvent::Progress { job, .. } => Some(*job),
            _ => None,
        })
        .collect();
    ids.sort();
    ids.dedup();
    ids
}

#[test]
fn mixed_batch_dedupes_caches_and_archives() {
    let dir = temp_dir("mixed");
    let campaign_a = tiny(1);
    let campaign_b = tiny(2);
    let fleet = FleetSpec::new().member(tiny(70)).member(tiny(71));

    let (pool, events) = recording_pool(&dir, 2);
    let queue = pool.queue();
    let job_a = queue
        .submit(
            ScenarioSpec::Campaign(campaign_a.clone()),
            SubmitOptions::default(),
        )
        .unwrap();
    let job_b = queue
        .submit(
            ScenarioSpec::Campaign(campaign_b.clone()),
            SubmitOptions::default(),
        )
        .unwrap();
    let job_fleet = queue
        .submit(ScenarioSpec::Fleet(fleet.clone()), SubmitOptions::default())
        .unwrap();
    // The duplicate: identical spec, second submission.
    let job_dup = queue
        .submit(
            ScenarioSpec::Campaign(campaign_a.clone()),
            SubmitOptions::default(),
        )
        .unwrap();

    let stats = pool.drain().unwrap();
    assert_eq!(stats.executed, 3, "A, B and the fleet execute");
    assert_eq!(stats.coalesced, 1, "the duplicate coalesces");
    assert_eq!(stats.cached + stats.failed + stats.cancelled, 0);

    // Both submissions of the same spec are Done with the same RunId —
    // and only one of them ever emitted campaign work.
    let expect_id = RunId::of_spec(&campaign_a);
    for id in [job_a.id, job_dup.id] {
        match queue.load(id).unwrap().state {
            JobState::Done { run_ids, .. } => assert_eq!(run_ids, vec![expect_id.clone()]),
            other => panic!("{id} should be Done, is {other:?}"),
        }
    }
    let via_of = |id| match queue.load(id).unwrap().state {
        JobState::Done { via, .. } => via,
        other => panic!("expected Done, got {other:?}"),
    };
    let vias = [via_of(job_a.id), via_of(job_dup.id)];
    assert!(vias.contains(&CompletionVia::Executed));
    assert!(vias.contains(&CompletionVia::Coalesced));
    let executed = jobs_that_executed(&events.lock().unwrap());
    assert_eq!(
        executed
            .iter()
            .filter(|id| **id == job_a.id || **id == job_dup.id)
            .count(),
        1,
        "exactly one of the duplicate submissions does the work"
    );
    assert!(executed.contains(&job_b.id) && executed.contains(&job_fleet.id));

    // Every result landed in the store, bitwise identical to a plain
    // uninterrupted session run of the same spec.
    let store = pool.store();
    for spec in [
        &campaign_a,
        &campaign_b,
        &fleet.members[0],
        &fleet.members[1],
    ] {
        let stored = store.get(&RunId::of_spec(spec)).unwrap();
        assert_eq!(
            stored.result.to_json(),
            reference_run(spec).to_json(),
            "archived result for seed {} must match a direct run",
            spec.seed
        );
    }

    // Resubmit A: the archive satisfies it without recomputation.
    let before = events.lock().unwrap().len();
    let job_cached = queue
        .submit(
            ScenarioSpec::Campaign(campaign_a.clone()),
            SubmitOptions::default(),
        )
        .unwrap();
    let stats = pool.drain().unwrap();
    assert_eq!(
        (stats.executed, stats.cached),
        (0, 1),
        "cache hit, no execution"
    );
    assert_eq!(via_of(job_cached.id), CompletionVia::Cache);
    let after: Vec<QueueEvent> = events.lock().unwrap()[before..].to_vec();
    assert!(
        after
            .iter()
            .all(|e| !matches!(e, QueueEvent::Progress { .. })),
        "a cache hit must not emit campaign work: {after:?}"
    );
    assert!(after
        .iter()
        .any(|e| matches!(e, QueueEvent::CacheHit { job, .. } if *job == job_cached.id)));

    // force bypasses the cache and re-executes (deterministically, so the
    // archive bytes are unchanged).
    let job_forced = queue
        .submit(
            ScenarioSpec::Campaign(campaign_a.clone()),
            SubmitOptions {
                priority: 0,
                force: true,
            },
        )
        .unwrap();
    let path = store.root().join(format!("{expect_id}.json"));
    let bytes_before = fs::read(&path).unwrap();
    let stats = pool.drain().unwrap();
    assert_eq!((stats.executed, stats.cached), (1, 0), "force re-executes");
    assert_eq!(via_of(job_forced.id), CompletionVia::Executed);
    assert_eq!(
        bytes_before,
        fs::read(&path).unwrap(),
        "re-run is byte-idempotent"
    );

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn forced_duplicates_execute_instead_of_coalescing() {
    let dir = temp_dir("force_dup");
    let spec = tiny(5);

    // Warm the cache with one execution.
    let (pool, _) = recording_pool(&dir, 1);
    pool.queue()
        .submit(
            ScenarioSpec::Campaign(spec.clone()),
            SubmitOptions::default(),
        )
        .unwrap();
    pool.drain().unwrap();

    // A plain and a forced submission of the same spec, drained together:
    // the plain one is served from the cache, but the forced one demanded
    // a fresh measurement — it must execute, never coalesce onto the
    // plain job's cache hit.
    let (pool, events) = recording_pool(&dir, 2);
    let queue = pool.queue();
    let plain = queue
        .submit(
            ScenarioSpec::Campaign(spec.clone()),
            SubmitOptions::default(),
        )
        .unwrap();
    let forced = queue
        .submit(
            ScenarioSpec::Campaign(spec.clone()),
            SubmitOptions {
                priority: 0,
                force: true,
            },
        )
        .unwrap();
    let stats = pool.drain().unwrap();
    assert_eq!(
        (stats.cached, stats.executed, stats.coalesced),
        (1, 1, 0),
        "cache serves the plain job, the forced one runs"
    );
    let via_of = |id| match queue.load(id).unwrap().state {
        JobState::Done { via, .. } => via,
        other => panic!("expected Done, got {other:?}"),
    };
    assert_eq!(via_of(plain.id), CompletionVia::Cache);
    assert_eq!(via_of(forced.id), CompletionVia::Executed);
    let executed = jobs_that_executed(&events.lock().unwrap());
    assert_eq!(executed, vec![forced.id], "only the forced job does work");

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_pool_resumes_from_checkpoint_bitwise() {
    let dir = temp_dir("kill");
    // Six ordered pairs so the kill reliably lands mid-campaign.
    let spec = CampaignSpec::builder("a100")
        .frequencies_mhz(&[705, 1095, 1410])
        .measurements(3, 6)
        .simulated_sms(Some(2))
        .seed(33)
        .build()
        .unwrap();
    let reference = reference_run(&spec);

    // Phase 1: a pool that "dies" (shutdown token, the same path a kill
    // takes through recover()) as soon as the first pair finishes.
    let (pool, _events) = recording_pool(&dir, 2);
    let job = pool
        .queue()
        .submit(
            ScenarioSpec::Campaign(spec.clone()),
            SubmitOptions::default(),
        )
        .unwrap();
    let shutdown = pool.shutdown_token();
    let pool = pool.observe(move |e: &QueueEvent| {
        if matches!(
            e,
            QueueEvent::Progress {
                event: CampaignEvent::PairFinished { .. },
                ..
            }
        ) {
            shutdown.cancel();
        }
    });
    let stats = pool.drain().unwrap();
    assert_eq!(
        stats.requeued, 1,
        "the in-flight job is requeued for resume"
    );
    assert_eq!(stats.executed, 0);
    drop(pool);

    // Recovery (which serve/drain runs automatically under the service
    // lock) reverts the killed run's Running entry to Queued, and a
    // resumable checkpoint is on disk.
    let (pool, events) = recording_pool(&dir, 2);
    pool.queue().recover().unwrap();
    assert_eq!(pool.queue().load(job.id).unwrap().state, JobState::Queued);
    assert!(
        pool.queue().checkpoint_path(job.id, 0).is_file(),
        "the killed run must leave a checkpoint"
    );

    // Phase 2: restart on the same directory; the job resumes from the
    // checkpoint — restored pairs are not re-measured — and the archived
    // result is bitwise identical to an uninterrupted run.
    let stats = pool.drain().unwrap();
    assert_eq!(stats.executed, 1);
    match pool.queue().load(job.id).unwrap().state {
        JobState::Done { via, .. } => assert_eq!(via, CompletionVia::Executed),
        other => panic!("expected Done, got {other:?}"),
    }
    let restored = events
        .lock()
        .unwrap()
        .iter()
        .filter(|e| {
            matches!(
                e,
                QueueEvent::Progress {
                    event: CampaignEvent::PairRestored { .. },
                    ..
                }
            )
        })
        .count();
    assert!(restored > 0, "the resume must restore checkpointed pairs");
    let stored = pool.store().get(&RunId::of_spec(&spec)).unwrap();
    assert_eq!(
        stored.result.to_json(),
        reference.to_json(),
        "resumed result must be bitwise identical to an uninterrupted run"
    );
    assert!(
        !pool.queue().checkpoint_path(job.id, 0).is_file(),
        "checkpoints are cleared once the job settles"
    );

    fs::remove_dir_all(&dir).ok();
}

/// Twelve ordered pairs: enough to shard meaningfully across 4 workers.
fn wide(seed: u64) -> CampaignSpec {
    CampaignSpec::builder("a100")
        .frequencies_mhz(&[540, 810, 1095, 1410])
        .measurements(3, 6)
        .simulated_sms(Some(2))
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn sharded_drains_are_bitwise_identical_across_worker_counts() {
    // The scheduler contract: splitting a job into pair-shards and
    // spreading them across any number of workers must be invisible in
    // the archived bytes.
    let spec = wide(77);
    let reference = reference_run(&spec);
    for workers in [1usize, 2, 4] {
        let dir = temp_dir(&format!("shard_w{workers}"));
        let (pool, events) = recording_pool_with(
            &dir,
            PoolConfig {
                workers,
                shard_pairs: 2,
                ..PoolConfig::default()
            },
        );
        pool.queue()
            .submit(
                ScenarioSpec::Campaign(spec.clone()),
                SubmitOptions::default(),
            )
            .unwrap();
        let stats = pool.drain().unwrap();
        assert_eq!(stats.executed, 1, "workers={workers}: {stats:?}");
        assert_eq!(
            (stats.shards_executed, stats.pairs_measured),
            (6, 12),
            "workers={workers}: 12 pairs at 2 per shard is 6 shards"
        );
        assert_eq!(
            stats.telemetry.stage(Stage::ShardExec).count(),
            6,
            "workers={workers}: one shard-exec telemetry sample per shard"
        );
        let shard_events = events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    QueueEvent::Progress {
                        event: CampaignEvent::ShardFinished { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(shard_events, 6, "workers={workers}");
        let stored = pool.store().get(&RunId::of_spec(&spec)).unwrap();
        assert_eq!(
            stored.result.to_json(),
            reference.to_json(),
            "workers={workers}: sharded drain must be bitwise identical"
        );
        fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn killed_pool_resumes_mid_shard_bitwise() {
    // Kill the service after the very first one-pair shard settles: the
    // job is requeued with its ledger intact, and the restart resumes
    // from the per-shard checkpoint — never re-measuring settled pairs —
    // to a bitwise-identical archive.
    let dir = temp_dir("kill_shard");
    let spec = wide(91);
    let reference = reference_run(&spec);
    let sharded = PoolConfig {
        workers: 2,
        shard_pairs: 1,
        ..PoolConfig::default()
    };

    let (pool, _events) = recording_pool_with(&dir, sharded.clone());
    let job = pool
        .queue()
        .submit(
            ScenarioSpec::Campaign(spec.clone()),
            SubmitOptions::default(),
        )
        .unwrap();
    let shutdown = pool.shutdown_token();
    let pool = pool.observe(move |e: &QueueEvent| {
        if matches!(
            e,
            QueueEvent::Progress {
                event: CampaignEvent::ShardFinished { .. },
                ..
            }
        ) {
            shutdown.cancel();
        }
    });
    let stats = pool.drain().unwrap();
    assert_eq!((stats.requeued, stats.executed), (1, 0), "{stats:?}");
    assert!(
        stats.shards_executed >= 1 && stats.shards_executed < 12,
        "the kill must land mid-job: {stats:?}"
    );
    let requeued = pool.queue().load(job.id).unwrap();
    let ledger = requeued.ledger.expect("a requeued job keeps its ledger");
    assert!(
        ledger.pairs_done() >= 1 && ledger.pairs_done() < ledger.pairs_total(),
        "ledger must record partial progress: {}",
        ledger.summary()
    );
    drop(pool);

    // Restart on the same directory: the resumed drain restores the
    // settled pairs from the checkpoint and finishes the rest.
    let (pool, events) = recording_pool_with(&dir, sharded);
    let stats = pool.drain().unwrap();
    assert_eq!(stats.executed, 1, "{stats:?}");
    let restored = events
        .lock()
        .unwrap()
        .iter()
        .filter(|e| {
            matches!(
                e,
                QueueEvent::Progress {
                    event: CampaignEvent::PairRestored { .. },
                    ..
                }
            )
        })
        .count();
    assert!(restored > 0, "the resume must restore checkpointed pairs");
    match pool.queue().load(job.id).unwrap().state {
        JobState::Done { via, .. } => assert_eq!(via, CompletionVia::Executed),
        other => panic!("expected Done, got {other:?}"),
    }
    let stored = pool.store().get(&RunId::of_spec(&spec)).unwrap();
    assert_eq!(
        stored.result.to_json(),
        reference.to_json(),
        "kill-and-resume must be bitwise identical to an uninterrupted run"
    );
    assert!(
        !pool.queue().checkpoint_path(job.id, 0).is_file(),
        "checkpoints are cleared once the job settles"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn cancelling_a_running_job_settles_it_cancelled() {
    let dir = temp_dir("cancel");
    let spec = CampaignSpec::builder("a100")
        .frequencies_mhz(&[705, 1095, 1410])
        .measurements(3, 6)
        .simulated_sms(Some(2))
        .seed(44)
        .build()
        .unwrap();
    // Two workers: the idle one polls cancellation markers while its
    // sibling executes, so the request lands mid-run.
    let (pool, _events) = recording_pool(&dir, 2);
    let job = pool
        .queue()
        .submit(ScenarioSpec::Campaign(spec), SubmitOptions::default())
        .unwrap();
    // Request cancellation as soon as the job starts: the marker is
    // honoured on the next poll and the job settles as Cancelled (not
    // requeued — only shutdown requeues).
    let queue = pool.queue().clone();
    let pool = pool.observe(move |e: &QueueEvent| {
        if matches!(e, QueueEvent::Started { .. }) {
            queue.request_cancel(e.job()).unwrap();
        }
    });
    let stats = pool.drain().unwrap();
    assert_eq!(stats.cancelled, 1, "{stats:?}");
    assert_eq!(
        pool.queue().load(job.id).unwrap().state,
        JobState::Cancelled
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn cancellation_lands_even_when_every_worker_is_busy() {
    let dir = temp_dir("busy_cancel");
    let spec = CampaignSpec::builder("a100")
        .frequencies_mhz(&[705, 1095, 1410])
        .measurements(3, 6)
        .simulated_sms(Some(2))
        .seed(46)
        .build()
        .unwrap();
    // One worker: nobody is idle to poll markers, so the request must be
    // honoured by the executing worker's own checkpoint sink.
    let (pool, _events) = recording_pool(&dir, 1);
    let job = pool
        .queue()
        .submit(ScenarioSpec::Campaign(spec), SubmitOptions::default())
        .unwrap();
    let queue = pool.queue().clone();
    let pool = pool.observe(move |e: &QueueEvent| {
        if matches!(
            e,
            QueueEvent::Progress {
                event: CampaignEvent::PairFinished { .. },
                ..
            }
        ) {
            let _ = queue.request_cancel(e.job());
        }
    });
    let stats = pool.drain().unwrap();
    assert_eq!(stats.cancelled, 1, "{stats:?}");
    assert_eq!(
        pool.queue().load(job.id).unwrap().state,
        JobState::Cancelled
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_second_service_on_the_same_dir_is_refused() {
    let dir = temp_dir("second_service");
    let (pool, _events) = recording_pool(&dir, 1);
    pool.queue()
        .submit(ScenarioSpec::Campaign(tiny(9)), SubmitOptions::default())
        .unwrap();
    // Simulate a live sibling service holding the directory's slot: a
    // drain must refuse rather than recover (and re-execute) its jobs.
    let sibling = pool.queue().try_lock_service().unwrap().unwrap();
    match pool.drain() {
        Err(latest::queue::QueueError::ServiceActive { .. }) => {}
        other => panic!("expected ServiceActive, got {other:?}"),
    }
    drop(sibling);
    assert_eq!(pool.drain().unwrap().executed, 1);
    fs::remove_dir_all(&dir).ok();
}
