//! The prediction service end to end over the facade: paper-ladder
//! campaigns are measured and archived, a model is fitted over the pooled
//! archive, held-out validation stays inside an explicit error bound, and
//! the batch path routes low-confidence pairs back into the measurement
//! queue.

use latest::core::spec::CampaignSpec;
use latest::core::ResultStore;
use latest::predict::{build_corpora, cross_validate, serve_batch, PredictModel};
use latest::queue::JobQueue;
use latest::report::{render_to_string, Format};

/// Paper-ladder points of the A100-SXM4 (Table I frequencies).
const A100_LADDER: [u32; 4] = [540, 705, 1095, 1410];

fn ladder_spec(seed: u64) -> CampaignSpec {
    CampaignSpec::builder("a100")
        .frequencies_mhz(&A100_LADDER)
        .seed(seed)
        .measurements(6, 10)
        .rse_threshold(0.5)
        .build()
        .unwrap()
}

fn archive_ladder_runs(dir: &std::path::Path) -> ResultStore {
    let _ = std::fs::remove_dir_all(dir);
    let store = ResultStore::open(dir).unwrap();
    for seed in [21, 22] {
        let spec = ladder_spec(seed);
        let result = spec.clone().into_session().unwrap().run().unwrap();
        store.put(&spec, &result).unwrap();
    }
    store
}

#[test]
fn held_out_error_is_bounded_on_the_paper_ladder() {
    let dir = std::env::temp_dir().join(format!("latest_predict_it_{}", std::process::id()));
    let store = archive_ladder_runs(&dir);

    let corpora = build_corpora(&store, None).unwrap();
    let [corpus] = corpora.as_slice() else {
        panic!("one device archived, got {}", corpora.len());
    };
    assert_eq!(corpus.device, "a100");
    assert_eq!(corpus.runs, 2, "both seeds pool into one corpus");
    assert_eq!(corpus.pairs.len(), 12, "4 ladder points, 12 ordered pairs");

    let report = cross_validate(corpus, 5).unwrap();
    assert_eq!(
        report.rows.len(),
        12,
        "every measured pair gets held out once"
    );
    // The explicit bound: predictions for held-out paper-ladder pairs stay
    // within 25 % mean absolute percentage error of their measurements.
    assert!(
        report.mape < 0.25,
        "held-out MAPE {:.4} exceeds the 25 % bound",
        report.mape
    );
    assert!(report.mae_ms.is_finite() && report.mae_ms > 0.0);
    assert!(report.rmse_ms >= report.mae_ms);

    // Validation is deterministic: same archive, bitwise-identical report.
    let again = cross_validate(corpus, 5).unwrap();
    assert_eq!(report.to_json(), again.to_json());

    // The report renders as artifacts in every format.
    for format in Format::ALL {
        let scatter = render_to_string(&report.scatter(), format).unwrap();
        assert!(!scatter.is_empty(), "{format:?} scatter is empty");
        let heatmap = render_to_string(&report.error_heatmap(), format).unwrap();
        assert!(!heatmap.is_empty(), "{format:?} heatmap is empty");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn low_confidence_batch_queries_become_measurement_jobs() {
    let dir = std::env::temp_dir().join(format!("latest_predict_itq_{}", std::process::id()));
    let store = archive_ladder_runs(&dir);
    let corpus = build_corpora(&store, None).unwrap().remove(0);
    let model = PredictModel::fit(&corpus).unwrap();

    let queue_dir = dir.join("queue");
    let queue = JobQueue::open(&queue_dir).unwrap();
    let template = ladder_spec(0);

    // A measured pair answers confidently; an unmeasured on-ladder pair
    // below the grid under a zero-width gate cannot, and is routed to
    // measurement (the queue validates the follow-up spec, so only ladder
    // frequencies are resubmittable).
    let outcome = serve_batch(
        &model,
        &[(540, 1410), (1320, 330)],
        0.0,
        Some((&queue, &template)),
    )
    .unwrap();
    assert_eq!(outcome.answers.len(), 2);
    assert!(!outcome.low_confidence.is_empty());
    let job_id = outcome
        .submitted_job
        .as_deref()
        .expect("follow-up submitted");
    let jobs = queue.jobs().unwrap();
    assert_eq!(jobs.len(), 1);
    assert_eq!(format!("job-{}", jobs[0].id.0), job_id);
    let _ = std::fs::remove_dir_all(&dir);
}
