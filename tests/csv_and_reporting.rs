//! Campaign → CSV files → reload → report: the external data path a user of
//! the tool actually exercises (Sec. VI's naming convention included).

use std::fs;
use std::sync::Arc;

use latest::core::controller::PairRun;
use latest::core::output::{csv_filename, parse_csv_filename, read_pair_csv, write_pair_csv};
use latest::core::{CampaignConfig, Latest};
use latest::gpu_sim::devices;
use latest::gpu_sim::freq::FreqMhz;
use latest::gpu_sim::transition::FixedTransition;
use latest::report::Heatmap;
use latest::sim_clock::SimDuration;
use proptest::prelude::*;

#[test]
fn campaign_to_csv_to_heatmap_round_trip() {
    let mut spec = devices::a100_sxm4();
    spec.transition = Arc::new(FixedTransition {
        latency: SimDuration::from_millis(7),
    });
    let config = CampaignConfig::builder(spec)
        .frequencies_mhz(&[705, 1095, 1410])
        .measurements(8, 15)
        .simulated_sms(Some(3))
        .hostname("testnode")
        .seed(20)
        .build();
    let freqs: Vec<u32> = config.frequencies.iter().map(|f| f.0).collect();
    let result = Latest::new(config).run().unwrap();

    // Write every completed pair to the standardised files.
    let dir = std::env::temp_dir().join(format!("latest_rs_it_{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let mut written = 0;
    for p in result.completed() {
        let run = p.outcome.run().unwrap();
        let path = write_pair_csv(&dir, run, "testnode", 0).unwrap();
        assert!(path.exists());
        written += 1;
    }
    assert_eq!(written, 6);

    // Re-discover the files purely from their names and rebuild a heatmap.
    let mut hm = Heatmap::build(&freqs, &freqs, |_, _| None);
    for entry in fs::read_dir(&dir).unwrap() {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        let (init, target, host, gpu) = parse_csv_filename(&name).expect("standardised name");
        assert_eq!(host, "testnode");
        assert_eq!(gpu, 0);
        let latencies = read_pair_csv(&dir.join(&name)).unwrap();
        assert!(!latencies.is_empty());
        let row = freqs.iter().position(|&f| f == init.core.0).unwrap();
        let col = freqs.iter().position(|&f| f == target.core.0).unwrap();
        let max = latencies.iter().cloned().fold(f64::MIN, f64::max);
        hm.set(row, col, Some(max));
    }
    fs::remove_dir_all(&dir).ok();

    // The reloaded heatmap must agree with the in-memory campaign.
    for p in result.completed() {
        let row = freqs.iter().position(|&f| f == p.init_mhz()).unwrap();
        let col = freqs.iter().position(|&f| f == p.target_mhz()).unwrap();
        let from_csv = hm.get(row, col).expect("cell filled");
        let run = p.outcome.run().unwrap();
        let in_memory = run.latencies_ms.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            (from_csv - in_memory).abs() < 1e-5,
            "{}->{}: csv {from_csv} vs memory {in_memory}",
            p.init_mhz(),
            p.target_mhz()
        );
    }
}

#[test]
fn filename_convention_matches_paper_format() {
    // "the .csv filename contains the initial, the target frequency, the
    // hostname, and the index of the benchmarked GPU"
    let name = csv_filename(FreqMhz(1095), FreqMhz(705), "karolina-acn12", 3);
    assert_eq!(name, "latest_1095MHz_705MHz_karolina-acn12_gpu3.csv");
    let (i, t, h, g) = parse_csv_filename(&name).unwrap();
    assert_eq!(
        (i.core.0, t.core.0, h.as_str(), g),
        (1095, 705, "karolina-acn12", 3)
    );
}

proptest! {
    /// Sec. VI filenames must round-trip for hostile hostnames: underscores
    /// (the separator character), literal `MHz` substrings, `gpu`-shaped
    /// segments, and large GPU indices.
    #[test]
    fn csv_filename_round_trips_hostile_hostnames(
        head in "[a-z0-9][a-z0-9_-]{0,10}",
        tail in "[a-z0-9_-]{0,10}",
        decoration in 0usize..4,
        init in 1u32..4000,
        target in 1u32..4000,
        gpu_index in 0usize..1_000_000_000,
    ) {
        let hostname = match decoration {
            0 => head.clone(),
            1 => format!("{head}_MHz_{tail}"),
            2 => format!("{head}_gpu{tail}"),
            _ => format!("{head}_705MHz_{tail}"),
        };
        let name = csv_filename(FreqMhz(init), FreqMhz(target), &hostname, gpu_index);
        let (i, t, h, g) = parse_csv_filename(&name)
            .unwrap_or_else(|| panic!("unparseable filename {name:?}"));
        prop_assert_eq!(i, FreqMhz(init).into());
        prop_assert_eq!(t, FreqMhz(target).into());
        prop_assert_eq!(h, hostname);
        prop_assert_eq!(g, gpu_index);
    }

    /// Pair CSVs round-trip every latency bit for bit (shortest-round-trip
    /// float formatting; a fixed precision would silently truncate).
    #[test]
    fn pair_csv_round_trips_bit_exact(
        latencies in proptest::collection::vec(1e-4f64..1e4, 1..40),
        seed in 0u64..1000,
    ) {
        let dir = std::env::temp_dir()
            .join(format!("latest_csv_prop_{}_{seed}", std::process::id()));
        let run = PairRun {
            init: FreqMhz(1095).into(),
            target: FreqMhz(705).into(),
            ground_truth_ms: latencies.clone(),
            latencies_ms: latencies,
            retries: 0,
            thermal_events: 0,
            final_rse: 0.02,
            final_bound_ms: 20.0,
        };
        let path = write_pair_csv(&dir, &run, "prophost", 0).unwrap();
        let back = read_pair_csv(&path).unwrap();
        fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(back.len(), run.latencies_ms.len());
        for (a, b) in back.iter().zip(&run.latencies_ms) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[test]
fn heatmap_csv_export_is_parseable() {
    let freqs = [705u32, 1095];
    let hm = Heatmap::build(&freqs, &freqs, |a, b| {
        if a == b {
            None
        } else {
            Some((a + b) as f64 / 100.0)
        }
    });
    let csv = hm.to_csv();
    let mut lines = csv.lines();
    let header = lines.next().unwrap();
    assert!(header.contains("705") && header.contains("1095"));
    // One row per initial frequency, diagonal blank.
    let rows: Vec<&str> = lines.collect();
    assert_eq!(rows.len(), 2);
    assert!(rows[0].starts_with("705,,"));
}
