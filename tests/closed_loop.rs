//! Closed-loop validation: the measurement pipeline must *recover* the
//! simulated device's ground-truth switching latencies.
//!
//! This is the central payoff of the simulation substrate — on physical
//! hardware the true latency is unknowable (that is why the paper needs a
//! methodology at all); in the simulator the device records the exact
//! moment each transition request landed and settled, so we can assert the
//! tool's output against the truth.

use std::sync::Arc;

use latest::core::{CampaignConfig, Latest};
use latest::gpu_sim::devices::{self, DeviceSpec};
use latest::gpu_sim::transition::FixedTransition;
use latest::sim_clock::SimDuration;

fn fixed_spec(base: DeviceSpec, ms: u64) -> DeviceSpec {
    let mut spec = base;
    spec.transition = Arc::new(FixedTransition {
        latency: SimDuration::from_millis(ms),
    });
    spec
}

fn campaign(spec: DeviceSpec, freqs: &[u32], seed: u64) -> latest::core::CampaignResult {
    let config = CampaignConfig::builder(spec)
        .frequencies_mhz(freqs)
        .measurements(10, 25)
        .simulated_sms(Some(4))
        .seed(seed)
        .build();
    Latest::new(config).run().expect("campaign")
}

#[test]
fn pipeline_recovers_fixed_latency_on_a100() {
    let result = campaign(fixed_spec(devices::a100_sxm4(), 12), &[705, 1095, 1410], 1);
    let mut checked = 0;
    for pair in result.completed() {
        let run = pair.outcome.run().unwrap();
        for (&measured, &truth) in run.latencies_ms.iter().zip(&run.ground_truth_ms) {
            assert!(
                (measured - truth).abs() < 0.6,
                "{}->{}: measured {measured} ms vs ground truth {truth} ms",
                pair.init_mhz(),
                pair.target_mhz()
            );
            checked += 1;
        }
    }
    assert!(checked >= 60, "only {checked} closed-loop checks ran");
}

#[test]
fn pipeline_recovers_fixed_latency_on_every_architecture() {
    for (base, freqs) in [
        (devices::a100_sxm4(), [705u32, 1410]),
        (devices::gh200(), [705, 1980]),
        (devices::rtx_quadro_6000(), [750, 1650]),
    ] {
        let name = base.name.clone();
        let result = campaign(fixed_spec(base, 20), &freqs, 2);
        for pair in result.completed() {
            let analysis = pair.analysis.as_ref().unwrap();
            assert!(
                (analysis.filtered.mean - 20.0).abs() < 2.0,
                "{name} {}->{}: mean {} ms, expected ~20 ms + detection granularity",
                pair.init_mhz(),
                pair.target_mhz(),
                analysis.filtered.mean
            );
        }
    }
}

#[test]
fn measured_latency_never_precedes_the_request() {
    // Physical causality: the detected transition end must come after the
    // change request, for every accepted measurement.
    let result = campaign(fixed_spec(devices::a100_sxm4(), 5), &[705, 1410], 3);
    for pair in result.completed() {
        for &ms in &pair.outcome.run().unwrap().latencies_ms {
            assert!(
                ms > 0.0,
                "{}->{}: non-positive latency {ms}",
                pair.init_mhz(),
                pair.target_mhz()
            );
        }
    }
}

#[test]
fn stock_models_recover_their_own_ground_truth() {
    // Not just fixed transitions: the calibrated per-architecture models
    // (mixtures, ramps, slow columns) must also be recovered within the
    // detection granularity of one workload iteration.
    let result = campaign(devices::a100_sxm4(), &[705, 1095, 1410], 4);
    let mut worst_err: f64 = 0.0;
    for pair in result.completed() {
        let run = pair.outcome.run().unwrap();
        for (&measured, &truth) in run.latencies_ms.iter().zip(&run.ground_truth_ms) {
            worst_err = worst_err.max((measured - truth).abs());
        }
    }
    assert!(worst_err < 1.0, "worst measurement error {worst_err} ms");
}

#[test]
fn probe_bound_covers_true_latencies() {
    // The probe phase's upper-bound estimate must dominate the latencies the
    // full campaign then observes (otherwise capture windows truncate).
    let result = campaign(devices::gh200(), &[705, 1095, 1980], 5);
    let bound = result.probe.max_latency_ms * 10.0; // tenfold rule, Sec. V
    for pair in result.completed() {
        let run = pair.outcome.run().unwrap();
        for &ms in &run.latencies_ms {
            assert!(
                ms <= bound || run.final_bound_ms >= ms,
                "{}->{}: latency {ms} ms above probe bound {bound} ms without window growth",
                pair.init_mhz(),
                pair.target_mhz()
            );
        }
    }
}
