//! The closed control loop end to end: the checked-in
//! `scenarios/governor_stress.json` campaign is measured, archived in a
//! `ResultStore`, reloaded, turned into a `LatencyTable`, and driven by the
//! governor daemon under the builtin traffic catalog. Pins the headline
//! ablation (latency-aware strictly beats latency-oblivious on missed
//! deadlines under bursty traffic on the pathological Quadro table) and
//! bitwise scorecard determinism.

use latest::core::spec::CampaignSpec;
use latest::core::{FreqSelection, ResultStore};
use latest::governor::{
    make_policy, replay_seed, DaemonConfig, GovernorDaemon, LatencyTable, PowerModel, Scorecard,
    TransitionReplay, ZoneLadder, POLICY_NAMES,
};
use latest::predict::{corpus_for_device, PredictModel, PredictedTable};
use latest::traffic::TrafficRegistry;

fn stress_spec() -> CampaignSpec {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join("governor_stress.json");
    let mut spec = CampaignSpec::from_json(&std::fs::read_to_string(path).unwrap()).unwrap();
    // The checked-in scenario asks for 25..80 measurements per pair under a
    // tight 4 % RSE stopping rule; a reduced replica keeps this test fast
    // while preserving the pathology (the Quadro's slow 930/990 MHz target
    // columns are properties of the device model, not the stopping rule).
    // The RSE threshold must be relaxed along with the sample budget, or
    // pairs exhaust their retries before converging and drop out.
    spec.min_measurements = 4;
    spec.max_measurements = 8;
    spec.rse_threshold = 0.5;
    spec.validate().unwrap();
    spec
}

/// Archive the reduced stress campaign in a fresh store, reload it by spec
/// address, and hand back the latency table exactly as the CLI would. The
/// campaign runs once; all tests share the resulting table.
fn stress_table() -> &'static LatencyTable {
    static TABLE: std::sync::OnceLock<LatencyTable> = std::sync::OnceLock::new();
    TABLE.get_or_init(build_stress_table)
}

fn build_stress_table() -> LatencyTable {
    let dir = std::env::temp_dir().join(format!("latest_govern_it_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ResultStore::open(&dir).unwrap();

    let spec = stress_spec();
    let result = spec.clone().into_session().unwrap().run().unwrap();
    let put_id = store.put(&spec, &result).unwrap();

    let reloaded = store.latest_for(&spec).unwrap().expect("run just archived");
    assert_eq!(reloaded.run_id, put_id);

    let (table, skipped) = LatencyTable::from_campaign_counting(&reloaded.result);
    // The stress scenario's whole point: transitions into the Quadro's slow
    // 930/990 MHz target columns exhaust their measurement retries under the
    // bursty disturbance workload and drop out of the table — explicitly
    // counted, never silently. The governor must cope with those pairs being
    // unknown at decision time.
    assert_eq!(
        skipped.retries_exhausted, 5,
        "skip pattern drifted: {skipped}"
    );
    assert_eq!(skipped.total(), 5, "unexpected extra skips: {skipped}");
    // 4 frequencies => 12 ordered pairs; completed + skipped covers them.
    assert_eq!(table.len() + skipped.total(), 12);
    let _ = std::fs::remove_dir_all(&dir);
    table
}

fn score(table: &LatencyTable, policy_name: &str, traffic_name: &str, base_seed: u64) -> Scorecard {
    let registry = TrafficRegistry::builtin();
    let trace = registry.get(traffic_name).unwrap().generate().unwrap();
    let ladder = ZoneLadder::from_table(table).unwrap();
    let daemon = GovernorDaemon::new(DaemonConfig::default(), PowerModel::sxm_class(ladder.max()));
    let policy = make_policy(policy_name, table).unwrap();
    let seed = replay_seed(base_seed, policy.name(), &trace.name);
    let mut replay = TransitionReplay::new(table.clone(), seed);
    daemon.run(policy.as_ref(), &trace, &mut replay, seed)
}

#[test]
fn latency_aware_strictly_dominates_oblivious_on_the_stress_table() {
    let table = stress_table();
    // The stress scenario exists to exercise exactly this pathology: the
    // ladder's Low/Medium/High rungs are the Quadro's slow 930/990 targets.
    let ladder = ZoneLadder::from_table(table).unwrap();
    assert!(
        ladder.rungs().iter().any(|f| f.0 == 930 || f.0 == 990),
        "ladder lost the pathological rungs: {:?}",
        ladder.rungs()
    );

    let aware = score(table, "latency-aware", "bursty", 0);
    let oblivious = score(table, "latency-oblivious", "bursty", 0);

    assert!(aware.with_deadline > 0, "bursty traffic carries deadlines");
    assert_eq!(aware.with_deadline, oblivious.with_deadline);
    assert!(
        aware.missed_deadlines < oblivious.missed_deadlines,
        "latency-aware must strictly beat oblivious on missed deadlines: \
         aware {} vs oblivious {} (of {})",
        aware.missed_deadlines,
        oblivious.missed_deadlines,
        aware.with_deadline
    );
    // The mechanism, not just the outcome: the oblivious governor pays for
    // switches the aware one declines.
    assert!(oblivious.switches > aware.switches);
    assert!(oblivious.time_in_switch_ms > aware.time_in_switch_ms);
}

#[test]
fn every_policy_scores_every_builtin_traffic_shape() {
    let table = stress_table();
    let registry = TrafficRegistry::builtin();
    assert!(registry.names().len() >= 4);
    for traffic in registry.names() {
        for policy in POLICY_NAMES {
            let card = score(table, policy, traffic, 7);
            assert_eq!(card.policy, *policy);
            assert_eq!(card.traffic, traffic);
            assert!(card.requests > 0, "{policy}/{traffic} scored no requests");
            assert_eq!(
                card.completed, card.requests,
                "{policy}/{traffic} left requests unserved"
            );
            assert!(card.runtime_ms > 0.0);
            assert!(card.energy_j > 0.0);
            assert!(card.missed_deadlines <= card.with_deadline);
        }
    }
}

#[test]
fn a_predicted_table_fills_the_skipped_pairs_and_drives_the_daemon_deterministically() {
    let dir = std::env::temp_dir().join(format!("latest_govern_pred_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ResultStore::open(&dir).unwrap();
    let spec = stress_spec();
    let result = spec.clone().into_session().unwrap().run().unwrap();
    store.put(&spec, &result).unwrap();

    let corpus = corpus_for_device(&store, &spec.device, None).unwrap();
    let model = PredictModel::fit(&corpus).unwrap();
    let FreqSelection::List(freqs) = &spec.frequencies else {
        panic!("stress scenario lists its frequencies explicitly");
    };

    // The measured table skips the 5 pairs that exhaust their retries (see
    // build_stress_table); the prediction cascade answers all 12 ordered
    // pairs, falling back to interpolation/regression for the skipped ones.
    let full = PredictedTable::over(&model, freqs, f64::INFINITY);
    assert_eq!(full.entries.len(), 12);
    assert_eq!(full.accepted().count(), 12);
    assert!(
        full.entries.iter().any(|e| e.source != "measured"),
        "the skipped pairs must be served by the fallback tiers"
    );
    let table = full.to_latency_table();
    assert_eq!(table.len(), 12, "the gated table covers every ordered pair");
    assert!(
        corpus.pairs.len() < 12,
        "the measured corpus must have holes for prediction to fill"
    );

    // The confidence gate is what relaxes the latency-aware policy's
    // unknown-pair refusal: a tighter gate keeps fewer pairs, and the ones
    // it drops stay unknown to the policy exactly like unmeasured pairs.
    let tight = PredictedTable::over(&model, freqs, 0.0);
    assert!(tight.accepted().count() < full.accepted().count());
    assert_eq!(
        tight.to_latency_table().len(),
        tight.accepted().count(),
        "rejected pairs stay out of the governor's table"
    );

    // Closed loop on predicted latencies: bitwise-deterministic scorecards,
    // same as on a measured table.
    for traffic in ["bursty", "steady"] {
        let first = score(&table, "latency-aware", traffic, 11);
        let second = score(&table, "latency-aware", traffic, 11);
        assert_eq!(first.to_json(), second.to_json(), "{traffic}");
        assert_eq!(first.completed, first.requests);
    }
    // And refitting over the same archive reproduces the model bitwise.
    assert_eq!(
        PredictModel::fit(&corpus).unwrap().to_json(),
        model.to_json()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scorecards_are_bitwise_deterministic_across_reruns() {
    let table = stress_table();
    for (policy, traffic) in [
        ("latency-aware", "bursty"),
        ("latency-oblivious", "gaming"),
        ("run-at-max", "deadline"),
    ] {
        let first = score(table, policy, traffic, 42);
        let second = score(table, policy, traffic, 42);
        assert_eq!(first.to_json(), second.to_json(), "{policy}/{traffic}");
        // A different base seed must actually change the replay stream.
        let other = score(table, policy, traffic, 43);
        assert_ne!(first.seed, other.seed, "{policy}/{traffic}");
    }
}
