//! Measurement-to-deployment integration: a LATEST campaign feeds the DVFS
//! governor, and the latency knowledge must change (and improve) its
//! decisions — the full loop the paper's Sec. VIII motivates.

use latest::core::{CampaignConfig, CampaignEvent, CampaignSession, Latest};
use latest::governor::simulate::TransitionReplay;
use latest::governor::{
    simulate_policy, LatencyAware, LatencyOblivious, LatencyTable, PowerModel, RunAtMax,
    TraceGenerator,
};
use latest::gpu_sim::devices;

fn measured_table(
    seed: u64,
) -> (
    LatencyTable,
    latest::gpu_sim::freq::FreqMhz,
    latest::gpu_sim::freq::FreqMhz,
) {
    let spec = devices::gh200();
    let (f_min, f_max) = (spec.ladder.min(), spec.ladder.max());
    let config = CampaignConfig::builder(spec)
        .frequency_subset(6)
        .measurements(15, 30)
        .simulated_sms(Some(3))
        .seed(seed)
        .build();
    let result = Latest::new(config).run().expect("campaign");
    (LatencyTable::from_campaign(&result), f_min, f_max)
}

#[test]
fn campaign_table_is_complete_and_sane() {
    let (table, _, _) = measured_table(201);
    // 6 frequencies -> up to 30 ordered pairs (minus skipped/power-limited).
    assert!(table.len() >= 24, "only {} pairs measured", table.len());
    for pair in table.pairs() {
        assert!(pair.mean_ms() > 0.0);
        assert!(pair.quantile_ms(1.0) >= pair.quantile_ms(0.0));
    }
    let typical = table.typical_ms().unwrap();
    assert!((2.0..50.0).contains(&typical), "typical {typical} ms");
}

#[test]
fn table_survives_json_deployment_round_trip() {
    let (table, _, _) = measured_table(202);
    let restored = LatencyTable::from_json(&table.to_json()).unwrap();
    assert_eq!(restored.len(), table.len());
    for pair in table.pairs() {
        let r = restored
            .pair(
                latest::gpu_sim::freq::FreqMhz(pair.init_mhz),
                latest::gpu_sim::freq::FreqMhz(pair.target_mhz),
            )
            .expect("pair preserved");
        assert_eq!(r.latencies_ms, pair.latencies_ms);
    }
}

#[test]
fn latency_aware_governor_has_better_edp_on_hostile_workloads() {
    // Short bursts against GH200-scale latencies: churn loses, knowledge
    // wins. The aware governor must beat the oblivious one on energy-delay
    // product and runtime extension.
    let (table, f_min, f_max) = measured_table(203);
    let trace = TraceGenerator::new(77).streaming_bursts(60, 20.0);
    let power = PowerModel::sxm_class(f_max);

    let baseline = {
        let mut replay = TransitionReplay::new(table.clone(), 7);
        simulate_policy(&RunAtMax { f_max }, &trace, &power, &mut replay, f_max)
    };
    let oblivious = {
        let mut replay = TransitionReplay::new(table.clone(), 7);
        simulate_policy(
            &LatencyOblivious { f_min, f_max },
            &trace,
            &power,
            &mut replay,
            f_max,
        )
    };
    let aware = {
        let mut replay = TransitionReplay::new(table.clone(), 7);
        simulate_policy(
            &LatencyAware::new(table.clone(), f_min, f_max),
            &trace,
            &power,
            &mut replay,
            f_max,
        )
    };

    assert!(
        aware.switches < oblivious.switches,
        "no suppression happened"
    );
    assert!(
        aware.runtime_extension_vs(&baseline) < oblivious.runtime_extension_vs(&baseline),
        "aware {:.1}% vs oblivious {:.1}% slower",
        100.0 * aware.runtime_extension_vs(&baseline),
        100.0 * oblivious.runtime_extension_vs(&baseline)
    );
    assert!(
        aware.edp() < oblivious.edp(),
        "aware EDP {:.0} vs oblivious {:.0}",
        aware.edp(),
        oblivious.edp()
    );
}

#[test]
fn latency_aware_governor_keeps_dvfs_savings_on_friendly_workloads() {
    // Long LLM-training phases amortise everything: the aware governor must
    // not be *more* conservative than necessary — it should keep most of the
    // oblivious policy's energy saving.
    let (table, f_min, f_max) = measured_table(204);
    let trace = TraceGenerator::new(78).llm_training(10, 800.0);
    let power = PowerModel::sxm_class(f_max);

    let baseline = {
        let mut replay = TransitionReplay::new(table.clone(), 9);
        simulate_policy(&RunAtMax { f_max }, &trace, &power, &mut replay, f_max)
    };
    let oblivious = {
        let mut replay = TransitionReplay::new(table.clone(), 9);
        simulate_policy(
            &LatencyOblivious { f_min, f_max },
            &trace,
            &power,
            &mut replay,
            f_max,
        )
    };
    let aware = {
        let mut replay = TransitionReplay::new(table.clone(), 9);
        simulate_policy(
            &LatencyAware::new(table.clone(), f_min, f_max),
            &trace,
            &power,
            &mut replay,
            f_max,
        )
    };

    let s_obl = oblivious.energy_saving_vs(&baseline);
    let s_aware = aware.energy_saving_vs(&baseline);
    assert!(
        s_obl > 0.02,
        "oblivious saving {:.1}% too small to compare",
        100.0 * s_obl
    );
    assert!(
        s_aware >= 0.8 * s_obl,
        "aware saving {:.1}% lost too much of oblivious {:.1}%",
        100.0 * s_aware,
        100.0 * s_obl
    );
}

#[test]
fn cancelled_pairs_are_counted_not_silently_dropped() {
    // Cancel a campaign after three pairs: the rest end Cancelled and must
    // show up in the skipped-pair count, with the table/skip split exactly
    // partitioning the campaign's pairs.
    let config = CampaignConfig::builder(devices::gh200())
        .frequency_subset(6)
        .measurements(15, 30)
        .simulated_sms(Some(3))
        .seed(206)
        .build();
    let session = CampaignSession::new(config).sequential(true);
    let token = session.cancel_token();
    let seen = std::sync::atomic::AtomicUsize::new(0);
    let session = session.observe(move |e: &CampaignEvent| {
        if matches!(e, CampaignEvent::PairFinished { .. })
            && seen.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1 == 3
        {
            token.cancel();
        }
    });
    let partial = session.run().unwrap();
    assert!(partial.is_partial(), "cancellation must leave pairs undone");

    let (table, skipped) = LatencyTable::from_campaign_counting(&partial);
    assert!(skipped.cancelled > 0, "no Cancelled pairs counted");
    assert_eq!(
        table.len() + skipped.total(),
        partial.pairs().len(),
        "table + skipped must partition the campaign: {skipped}"
    );
    // The silent constructor builds the identical table.
    assert_eq!(LatencyTable::from_campaign(&partial).len(), table.len());

    // An uninterrupted run of the same campaign skips strictly fewer pairs.
    let config = CampaignConfig::builder(devices::gh200())
        .frequency_subset(6)
        .measurements(15, 30)
        .simulated_sms(Some(3))
        .seed(206)
        .build();
    let full = Latest::new(config).run().expect("campaign");
    let (_, full_skipped) = LatencyTable::from_campaign_counting(&full);
    assert_eq!(full_skipped.cancelled, 0);
    assert!(full_skipped.total() < skipped.total());
}

#[test]
fn avoid_list_matches_pathological_columns() {
    // GH200's slow target columns must show up in the table's avoid list
    // when the sweep touched them.
    let spec = devices::gh200();
    let config = CampaignConfig::builder(spec)
        .frequency_subset(10)
        .measurements(15, 30)
        .simulated_sms(Some(3))
        .seed(205)
        .build();
    let result = Latest::new(config).run().expect("campaign");
    let table = LatencyTable::from_campaign(&result);
    let avoid = table.avoid_list(5.0);
    if !avoid.is_empty() {
        // Pathological pairs concentrate on few targets (column structure).
        let mut targets: Vec<u32> = avoid.iter().map(|&(_, t)| t).collect();
        targets.sort_unstable();
        targets.dedup();
        assert!(targets.len() <= 3, "avoid-list targets {targets:?}");
    }
}
