//! Measurement-to-deployment integration: a LATEST campaign feeds the DVFS
//! governor, and the latency knowledge must change (and improve) its
//! decisions — the full loop the paper's Sec. VIII motivates.

use latest::core::{CampaignConfig, Latest};
use latest::governor::simulate::TransitionReplay;
use latest::governor::{
    simulate_policy, LatencyAware, LatencyOblivious, LatencyTable, PowerModel, RunAtMax,
    TraceGenerator,
};
use latest::gpu_sim::devices;

fn measured_table(
    seed: u64,
) -> (
    LatencyTable,
    latest::gpu_sim::freq::FreqMhz,
    latest::gpu_sim::freq::FreqMhz,
) {
    let spec = devices::gh200();
    let (f_min, f_max) = (spec.ladder.min(), spec.ladder.max());
    let config = CampaignConfig::builder(spec)
        .frequency_subset(6)
        .measurements(15, 30)
        .simulated_sms(Some(3))
        .seed(seed)
        .build();
    let result = Latest::new(config).run().expect("campaign");
    (LatencyTable::from_campaign(&result), f_min, f_max)
}

#[test]
fn campaign_table_is_complete_and_sane() {
    let (table, _, _) = measured_table(201);
    // 6 frequencies -> up to 30 ordered pairs (minus skipped/power-limited).
    assert!(table.len() >= 24, "only {} pairs measured", table.len());
    for pair in table.pairs() {
        assert!(pair.mean_ms() > 0.0);
        assert!(pair.quantile_ms(1.0) >= pair.quantile_ms(0.0));
    }
    let typical = table.typical_ms().unwrap();
    assert!((2.0..50.0).contains(&typical), "typical {typical} ms");
}

#[test]
fn table_survives_json_deployment_round_trip() {
    let (table, _, _) = measured_table(202);
    let restored = LatencyTable::from_json(&table.to_json()).unwrap();
    assert_eq!(restored.len(), table.len());
    for pair in table.pairs() {
        let r = restored
            .pair(
                latest::gpu_sim::freq::FreqMhz(pair.init_mhz),
                latest::gpu_sim::freq::FreqMhz(pair.target_mhz),
            )
            .expect("pair preserved");
        assert_eq!(r.latencies_ms, pair.latencies_ms);
    }
}

#[test]
fn latency_aware_governor_has_better_edp_on_hostile_workloads() {
    // Short bursts against GH200-scale latencies: churn loses, knowledge
    // wins. The aware governor must beat the oblivious one on energy-delay
    // product and runtime extension.
    let (table, f_min, f_max) = measured_table(203);
    let trace = TraceGenerator::new(77).streaming_bursts(60, 20.0);
    let power = PowerModel::sxm_class(f_max);

    let baseline = {
        let mut replay = TransitionReplay::new(table.clone(), 7);
        simulate_policy(&RunAtMax { f_max }, &trace, &power, &mut replay, f_max)
    };
    let oblivious = {
        let mut replay = TransitionReplay::new(table.clone(), 7);
        simulate_policy(
            &LatencyOblivious { f_min, f_max },
            &trace,
            &power,
            &mut replay,
            f_max,
        )
    };
    let aware = {
        let mut replay = TransitionReplay::new(table.clone(), 7);
        simulate_policy(
            &LatencyAware::new(table.clone(), f_min, f_max),
            &trace,
            &power,
            &mut replay,
            f_max,
        )
    };

    assert!(
        aware.switches < oblivious.switches,
        "no suppression happened"
    );
    assert!(
        aware.runtime_extension_vs(&baseline) < oblivious.runtime_extension_vs(&baseline),
        "aware {:.1}% vs oblivious {:.1}% slower",
        100.0 * aware.runtime_extension_vs(&baseline),
        100.0 * oblivious.runtime_extension_vs(&baseline)
    );
    assert!(
        aware.edp() < oblivious.edp(),
        "aware EDP {:.0} vs oblivious {:.0}",
        aware.edp(),
        oblivious.edp()
    );
}

#[test]
fn latency_aware_governor_keeps_dvfs_savings_on_friendly_workloads() {
    // Long LLM-training phases amortise everything: the aware governor must
    // not be *more* conservative than necessary — it should keep most of the
    // oblivious policy's energy saving.
    let (table, f_min, f_max) = measured_table(204);
    let trace = TraceGenerator::new(78).llm_training(10, 800.0);
    let power = PowerModel::sxm_class(f_max);

    let baseline = {
        let mut replay = TransitionReplay::new(table.clone(), 9);
        simulate_policy(&RunAtMax { f_max }, &trace, &power, &mut replay, f_max)
    };
    let oblivious = {
        let mut replay = TransitionReplay::new(table.clone(), 9);
        simulate_policy(
            &LatencyOblivious { f_min, f_max },
            &trace,
            &power,
            &mut replay,
            f_max,
        )
    };
    let aware = {
        let mut replay = TransitionReplay::new(table.clone(), 9);
        simulate_policy(
            &LatencyAware::new(table.clone(), f_min, f_max),
            &trace,
            &power,
            &mut replay,
            f_max,
        )
    };

    let s_obl = oblivious.energy_saving_vs(&baseline);
    let s_aware = aware.energy_saving_vs(&baseline);
    assert!(
        s_obl > 0.02,
        "oblivious saving {:.1}% too small to compare",
        100.0 * s_obl
    );
    assert!(
        s_aware >= 0.8 * s_obl,
        "aware saving {:.1}% lost too much of oblivious {:.1}%",
        100.0 * s_aware,
        100.0 * s_obl
    );
}

#[test]
fn avoid_list_matches_pathological_columns() {
    // GH200's slow target columns must show up in the table's avoid list
    // when the sweep touched them.
    let spec = devices::gh200();
    let config = CampaignConfig::builder(spec)
        .frequency_subset(10)
        .measurements(15, 30)
        .simulated_sms(Some(3))
        .seed(205)
        .build();
    let result = Latest::new(config).run().expect("campaign");
    let table = LatencyTable::from_campaign(&result);
    let avoid = table.avoid_list(5.0);
    if !avoid.is_empty() {
        // Pathological pairs concentrate on few targets (column structure).
        let mut targets: Vec<u32> = avoid.iter().map(|&(_, t)| t).collect();
        targets.sort_unstable();
        targets.dedup();
        assert!(targets.len() <= 3, "avoid-list targets {targets:?}");
    }
}
