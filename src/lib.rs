//! # latest-rs
//!
//! A from-scratch Rust reproduction of *"Methodology for GPU Frequency
//! Switching Latency Measurement"* (Velička, Vysocky, Riha — IT4Innovations,
//! IPPS 2025, arXiv:2502.20075), including the paper's LATEST benchmarking
//! tool and every substrate it depends on, running against a deterministic
//! virtual-time GPU simulator.
//!
//! This facade crate re-exports the workspace crates under one namespace so
//! examples, integration tests and downstream users deal with a single
//! dependency:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`sim_clock`] | `latest-sim-clock` | virtual time, clock views |
//! | [`gpu_sim`] | `latest-gpu-sim` | the simulated GPU (SMs, DVFS, thermals) |
//! | [`nvml`] | `latest-nvml-sim` | NVML-shaped driver façade |
//! | [`cuda`] | `latest-cuda-sim` | CUDA-shaped host runtime façade |
//! | [`clock_sync`] | `latest-clock-sync` | IEEE 1588 host↔device timer sync |
//! | [`stats`] | `latest-stats` | tests, intervals, RSE, quantiles |
//! | [`cluster`] | `latest-cluster` | DBSCAN, k-NN, silhouette, Alg. 3 |
//! | [`core`] | `latest-core` | the LATEST methodology (Alg. 1 & 2) |
//! | [`ftalat`] | `latest-ftalat` | FTaLaT CPU baseline (Sec. IV) |
//! | [`governor`] | `latest-governor` | latency-aware DVFS governor (Sec. VIII application) |
//! | [`queue`] | `latest-queue` | campaign execution service (job queue, workers, result cache) |
//! | [`telemetry`] | `latest-telemetry` | lock-free stage latency histograms, clocks, registries |
//! | [`traffic`] | `latest-traffic` | deterministic open-loop traffic generators |
//! | [`predict`] | `latest-predict` | latency models fitted over the archive, served to the governor |
//! | [`report`] | `latest-report` | heatmaps, violins, tables, CSV |
//!
//! ## Quick start
//!
//! See `examples/quickstart.rs`; the one-paragraph version:
//!
//! ```no_run
//! use latest::core::{CampaignConfig, CampaignEvent, CampaignSession};
//! use latest::gpu_sim::devices;
//!
//! // Measure the SM frequency switching latency between two frequencies on
//! // a simulated A100-SXM4, streaming progress as pairs finish.
//! let spec = devices::a100_sxm4();
//! let config = CampaignConfig::builder(spec)
//!     .frequencies_mhz(&[1095, 1410])
//!     .seed(42)
//!     .build();
//! let session = CampaignSession::new(config)
//!     .observe(|e: &CampaignEvent| eprintln!("{e}"));
//! let campaign = session.run().expect("campaign failed");
//! for pair in campaign.pairs() {
//!     println!("{} -> {}: {:?}", pair.init, pair.target, pair.filtered_summary());
//! }
//! ```
//!
//! The blocking one-liner `Latest::new(config).run()` remains as a thin
//! wrapper over the session; multi-device sweeps use
//! [`core::Fleet`](latest_core::fleet::Fleet). See the README's "Migrating
//! from `Latest::run()`" section.

pub use latest_clock_sync as clock_sync;
pub use latest_cluster as cluster;
pub use latest_core as core;
pub use latest_cuda_sim as cuda;
pub use latest_ftalat as ftalat;
pub use latest_governor as governor;
pub use latest_gpu_sim as gpu_sim;
pub use latest_nvml_sim as nvml;
pub use latest_predict as predict;
pub use latest_queue as queue;
pub use latest_report as report;
pub use latest_sim_clock as sim_clock;
pub use latest_stats as stats;
pub use latest_telemetry as telemetry;
pub use latest_traffic as traffic;
