//! `latest` — the command-line benchmarking tool of Sec. VI, over the
//! simulated CUDA substrate.
//!
//! Mirrors the paper tool's interface: one mandatory argument (the
//! comma-separated list of benchmarked frequencies in MHz) plus the optional
//! arguments the paper enumerates — device index, RSE threshold, minimum and
//! maximum measurement counts — and simulation-specific extras (GPU model,
//! seed, output directory).
//!
//! ```text
//! latest 705,1095,1410
//! latest --model gh200 --rse 0.05 --min 25 --max 150 --out ./results 705,1260,1980
//! latest --model a100 --device 2 --seed 7 705,1410
//! ```
//!
//! After each pair, latencies are written to
//! `latest_{init}MHz_{target}MHz_{hostname}_gpu{index}.csv` in the output
//! directory, exactly as the paper describes.

use std::path::PathBuf;
use std::process::ExitCode;

use latest::core::output::write_pair_csv;
use latest::core::{CampaignConfig, CampaignEvent, CampaignSession, PairOutcome};
use latest::gpu_sim::devices::{self, DeviceSpec};
use latest::report::TextTable;

struct Args {
    frequencies: Vec<u32>,
    model: String,
    device_index: usize,
    rse: f64,
    min_measurements: usize,
    max_measurements: usize,
    seed: u64,
    out_dir: Option<PathBuf>,
    hostname: String,
    simulated_sms: Option<u32>,
    json: bool,
    progress: bool,
}

const USAGE: &str = "\
usage: latest [OPTIONS] <freq,freq,...>

Benchmark the SM frequency switching latency of a simulated CUDA GPU.

arguments:
  <freq,freq,...>      comma-separated frequencies in MHz (mandatory)

options:
  --model <name>       gpu model: a100 | gh200 | quadro      [a100]
  --device <index>     device index (a100: per-unit model)   [0]
  --rse <fraction>     RSE stopping threshold                [0.05]
  --min <count>        measurements before RSE checks begin  [25]
  --max <count>        hard cap on measurements per pair     [150]
  --seed <u64>         simulation seed                       [0]
  --out <dir>          write per-pair CSVs to this directory [off]
  --hostname <name>    hostname used in CSV file names       [simnode]
  --sms <count>        simulated SM record streams           [8]
  --json               emit the full campaign result as JSON on stdout
  --progress           stream per-pair progress events to stderr
  --help               print this message
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        frequencies: Vec::new(),
        model: "a100".to_string(),
        device_index: 0,
        rse: 0.05,
        min_measurements: 25,
        max_measurements: 150,
        seed: 0,
        out_dir: None,
        hostname: "simnode".to_string(),
        simulated_sms: Some(8),
        json: false,
        progress: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--model" => args.model = value("--model")?,
            "--device" => {
                args.device_index = value("--device")?
                    .parse()
                    .map_err(|e| format!("--device: {e}"))?
            }
            "--rse" => args.rse = value("--rse")?.parse().map_err(|e| format!("--rse: {e}"))?,
            "--min" => {
                args.min_measurements =
                    value("--min")?.parse().map_err(|e| format!("--min: {e}"))?
            }
            "--max" => {
                args.max_measurements =
                    value("--max")?.parse().map_err(|e| format!("--max: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--out" => args.out_dir = Some(PathBuf::from(value("--out")?)),
            "--hostname" => args.hostname = value("--hostname")?,
            "--sms" => {
                args.simulated_sms =
                    Some(value("--sms")?.parse().map_err(|e| format!("--sms: {e}"))?)
            }
            "--json" => args.json = true,
            "--progress" => args.progress = true,
            other if other.starts_with('-') => return Err(format!("unknown option {other}")),
            freq_list => {
                if !args.frequencies.is_empty() {
                    return Err("multiple frequency lists given".to_string());
                }
                for part in freq_list.split(',') {
                    let mhz: u32 = part
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad frequency {part:?} in list"))?;
                    args.frequencies.push(mhz);
                }
            }
        }
    }
    if args.frequencies.len() < 2 {
        return Err("need a comma-separated list of at least two frequencies".to_string());
    }
    Ok(args)
}

fn device_spec(model: &str, index: usize) -> Result<DeviceSpec, String> {
    match model {
        "a100" => Ok(if index == 0 {
            devices::a100_sxm4()
        } else {
            devices::a100_sxm4_unit(index)
        }),
        "gh200" => Ok(devices::gh200()),
        "quadro" => Ok(devices::rtx_quadro_6000()),
        other => Err(format!("unknown model {other:?} (a100 | gh200 | quadro)")),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let spec = match device_spec(&args.model, args.device_index) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "benchmarking {} (device {}), frequencies {:?} MHz",
        spec.name, args.device_index, args.frequencies
    );

    let config = CampaignConfig::builder(spec)
        .frequencies_mhz(&args.frequencies)
        .rse_threshold(args.rse)
        .measurements(args.min_measurements, args.max_measurements)
        .device_index(args.device_index)
        .hostname(args.hostname.clone())
        .simulated_sms(args.simulated_sms)
        .seed(args.seed)
        .build();

    let mut session = CampaignSession::new(config);
    if args.progress {
        session = session.observe(|e: &CampaignEvent| eprintln!("progress: {e}"));
    }
    let result = match session.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "phase 1: {} valid pairs, {} skipped as indistinguishable",
        result.phase1.valid_pairs.len(),
        result.phase1.skipped_pairs.len()
    );

    let mut table = TextTable::with_header(&[
        "init[MHz]",
        "target[MHz]",
        "n",
        "min[ms]",
        "mean[ms]",
        "max[ms]",
        "outliers",
        "status",
    ]);
    let mut csv_files = 0usize;
    for pair in result.pairs() {
        match &pair.outcome {
            PairOutcome::Completed(run) => {
                let a = pair.analysis.as_ref().expect("completed implies analysed");
                table.row(&[
                    pair.init_mhz.to_string(),
                    pair.target_mhz.to_string(),
                    a.inliers_ms.len().to_string(),
                    format!("{:.3}", a.filtered.min),
                    format!("{:.3}", a.filtered.mean),
                    format!("{:.3}", a.filtered.max),
                    a.outliers_ms.len().to_string(),
                    "ok".to_string(),
                ]);
                if let Some(dir) = &args.out_dir {
                    match write_pair_csv(dir, run, &args.hostname, args.device_index) {
                        Ok(_) => csv_files += 1,
                        Err(e) => eprintln!(
                            "warning: writing CSV for {}->{}: {e}",
                            pair.init_mhz, pair.target_mhz
                        ),
                    }
                }
            }
            PairOutcome::PowerLimited {
                measurements_before,
            } => {
                table.row(&[
                    pair.init_mhz.to_string(),
                    pair.target_mhz.to_string(),
                    measurements_before.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "power-limited".to_string(),
                ]);
            }
            PairOutcome::SkippedIndistinguishable => {
                table.row(&[
                    pair.init_mhz.to_string(),
                    pair.target_mhz.to_string(),
                    "0".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "indistinguishable".to_string(),
                ]);
            }
            PairOutcome::RetriesExhausted { attempts, .. } => {
                table.row(&[
                    pair.init_mhz.to_string(),
                    pair.target_mhz.to_string(),
                    "0".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("unmeasurable ({attempts} attempts)"),
                ]);
            }
            PairOutcome::Cancelled => {
                table.row(&[
                    pair.init_mhz.to_string(),
                    pair.target_mhz.to_string(),
                    "0".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "cancelled".to_string(),
                ]);
            }
        }
    }
    if args.json {
        // The serialisable result is the machine interface; the table stays
        // on stderr so `latest --json | jq` composes cleanly.
        println!("{}", result.to_json());
        eprintln!("{}", table.render());
    } else {
        println!("{}", table.render());
    }
    if let Some(dir) = &args.out_dir {
        eprintln!("wrote {csv_files} CSV files to {}", dir.display());
    }
    ExitCode::SUCCESS
}
