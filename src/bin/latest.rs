//! `latest` — the command-line benchmarking tool of Sec. VI, over the
//! simulated CUDA substrate.
//!
//! Experiments are *data*: a scenario file (JSON [`CampaignSpec`] or
//! [`FleetSpec`]) fully describes a campaign, and the legacy flag interface
//! compiles to exactly the same spec — `print-spec` shows the effective
//! spec for any invocation, and re-running that output reproduces the run
//! bit for bit.
//!
//! ```text
//! latest run scenarios/table2.json --json
//! latest run --model gh200 --rse 0.05 --min 25 --max 150 705,1260,1980
//! latest run big_sweep.json --checkpoint sweep.ckpt.json   # resumes on restart
//! latest validate scenarios/fleet_sweep.json
//! latest print-spec --model a100 --seed 7 705,1410
//! latest list-devices
//! latest 705,1095,1410          # legacy shorthand for `run`
//! ```
//!
//! After each pair, latencies are written to
//! `latest_{init}MHz_{target}MHz_{hostname}_gpu{index}.csv` in the output
//! directory, exactly as the paper describes; fleet runs write a
//! cross-device `fleet_summary.csv` instead.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use latest::core::output::write_pair_csv;
use latest::core::spec::{CampaignSpec, FleetSpec, ScenarioSpec, SpecCheckpoint};
use latest::core::store::{ResultStore, StoredRun};
use latest::core::{CampaignEvent, CampaignResult, CampaignSession, PairOutcome};
use latest::gpu_sim::devices::DeviceRegistry;
use latest::gpu_sim::sm::WorkloadRegistry;
use latest::report::{
    campaign_summary_table, cross_device_table, Bundle, CampaignDiff, CrossDeviceRow, TextTable,
};

const USAGE: &str = "\
usage: latest <command> [options]
       latest [OPTIONS] <freq,freq,...>         (legacy shorthand for `run`)

Benchmark the SM frequency switching latency of simulated CUDA GPUs, and
maintain an archive of the results.

commands:
  run [<spec.json>] [options] [<freq,freq,...>]
                       run a campaign (or fleet) described by a scenario
                       file, by flags, or by a file with flag overrides
  report <run-id|spec.json> [--store <dir>] [--out <dir>]
                       render a stored run's complete artefact bundle
                       (figures, tables, EXPERIMENTS.md in all formats)
  diff <a> <b> | diff <a> --against <b>
                       per-pair latency deltas between two stored runs with
                       Mann-Whitney significance; exits 1 on significant
                       regressions
  list-runs [--store <dir>] [--ids]
                       enumerate the archive with spec provenance
  validate <spec.json> check a scenario file, listing every violation
  print-spec [...]     print the effective spec for any run invocation
  list-devices         enumerate the device registry
  list-workloads       enumerate the workload presets
  help                 print this message

run/print-spec options (flags override scenario-file fields; for fleet
specs, overrides apply to every member):
  --model <name>       gpu model (see `latest list-devices`)
  --device <index>     device unit index                     [0]
  --rse <fraction>     RSE stopping threshold                [0.05]
  --min <count>        measurements before RSE checks begin  [25]
  --max <count>        hard cap on measurements per pair     [150]
  --seed <u64>         simulation seed                       [0]
  --hostname <name>    hostname used in CSV file names       [simnode]
  --sms <count>        simulated SM record streams           [8]
  --workload <name>    workload preset (see list-workloads)  [paper-default]

run-only options:
  --out <dir>          per-pair CSVs (campaign) or fleet_summary.csv (fleet)
  --store <dir>        archive the finished result(s) into this result
                       store (fleet members are stored per slot)
  --json               emit the full result as JSON on stdout
  --progress           stream per-pair progress events to stderr
  --checkpoint <path>  persist a resumable checkpoint to this file while
                       running, and resume from it when it already exists
                       (single-campaign specs only)
  --checkpoint-every <n>  pairs between checkpoint writes    [5]

report/diff/list-runs options:
  --store <dir>        the result store to read               [latest-store]
  --out <dir>          output directory (report: the bundle; diff: the
                       delta heatmap + regression table in all formats)
  --alpha <p>          diff significance level                [0.05]

Run targets for report/diff are either archived run ids (`run-<hex>`, any
unambiguous prefix of at least 4 digits) or campaign scenario files, which
resolve to the archived run of that exact spec.
";

// ---------------------------------------------------------------------------
// argument parsing

#[derive(Default)]
struct RunArgs {
    spec_path: Option<PathBuf>,
    frequencies: Option<Vec<u32>>,
    model: Option<String>,
    device_index: Option<usize>,
    rse: Option<f64>,
    min: Option<usize>,
    max: Option<usize>,
    seed: Option<u64>,
    hostname: Option<String>,
    sms: Option<u32>,
    workload: Option<String>,
    out_dir: Option<PathBuf>,
    store: Option<PathBuf>,
    json: bool,
    progress: bool,
    checkpoint: Option<PathBuf>,
    checkpoint_every: usize,
}

fn parse_freq_list(text: &str) -> Result<Vec<u32>, String> {
    let mut freqs = Vec::new();
    for part in text.split(',') {
        let mhz: u32 = part
            .trim()
            .parse()
            .map_err(|_| format!("bad frequency {part:?} in list"))?;
        freqs.push(mhz);
    }
    Ok(freqs)
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut out = RunArgs {
        checkpoint_every: 5,
        ..RunArgs::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--model" => out.model = Some(value("--model")?),
            "--device" => {
                out.device_index = Some(
                    value("--device")?
                        .parse()
                        .map_err(|e| format!("--device: {e}"))?,
                )
            }
            "--rse" => out.rse = Some(value("--rse")?.parse().map_err(|e| format!("--rse: {e}"))?),
            "--min" => out.min = Some(value("--min")?.parse().map_err(|e| format!("--min: {e}"))?),
            "--max" => out.max = Some(value("--max")?.parse().map_err(|e| format!("--max: {e}"))?),
            "--seed" => {
                out.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--hostname" => out.hostname = Some(value("--hostname")?),
            "--sms" => out.sms = Some(value("--sms")?.parse().map_err(|e| format!("--sms: {e}"))?),
            "--workload" => out.workload = Some(value("--workload")?),
            "--out" => out.out_dir = Some(PathBuf::from(value("--out")?)),
            "--store" => out.store = Some(PathBuf::from(value("--store")?)),
            "--json" => out.json = true,
            "--progress" => out.progress = true,
            "--checkpoint" => out.checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
            "--checkpoint-every" => {
                out.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?
            }
            other if other.starts_with('-') => return Err(format!("unknown option {other}")),
            positional => {
                // A positional is either the scenario file or the legacy
                // frequency list.
                if positional.ends_with(".json") || Path::new(positional).is_file() {
                    if out.spec_path.is_some() {
                        return Err("multiple scenario files given".to_string());
                    }
                    out.spec_path = Some(PathBuf::from(positional));
                } else {
                    if out.frequencies.is_some() {
                        return Err("multiple frequency lists given".to_string());
                    }
                    out.frequencies = Some(parse_freq_list(positional)?);
                }
            }
        }
    }
    Ok(out)
}

/// Compile the invocation — scenario file plus flag overrides, or flags
/// alone — into the effective spec. This is the single construction path:
/// the legacy interface has no behaviour of its own.
fn effective_spec(args: &RunArgs) -> Result<ScenarioSpec, String> {
    let mut scenario = match &args.spec_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            ScenarioSpec::from_json(&text)
                .map_err(|e| format!("parsing {}: {e}", path.display()))?
        }
        None => ScenarioSpec::Campaign(CampaignSpec::default()),
    };
    let apply = |spec: &mut CampaignSpec| {
        if let Some(freqs) = &args.frequencies {
            spec.frequencies = latest::core::FreqSelection::List(freqs.clone());
        }
        if let Some(model) = &args.model {
            spec.device = model.clone();
        }
        if let Some(index) = args.device_index {
            spec.device_index = index;
        }
        if let Some(rse) = args.rse {
            spec.rse_threshold = rse;
        }
        if let Some(min) = args.min {
            spec.min_measurements = min;
        }
        if let Some(max) = args.max {
            spec.max_measurements = max;
        }
        if let Some(seed) = args.seed {
            spec.seed = seed;
        }
        if let Some(hostname) = &args.hostname {
            spec.hostname = hostname.clone();
        }
        if let Some(sms) = args.sms {
            spec.simulated_sms = Some(sms);
        }
        if let Some(workload) = &args.workload {
            spec.workload = workload.clone();
        }
    };
    match &mut scenario {
        ScenarioSpec::Campaign(spec) => apply(spec),
        ScenarioSpec::Fleet(fleet) => fleet.members.iter_mut().for_each(apply),
    }
    if args.spec_path.is_none() && args.frequencies.is_none() {
        return Err(
            "need a scenario file or a comma-separated frequency list (see `latest help`)"
                .to_string(),
        );
    }
    Ok(scenario)
}

fn fail(msg: &str) -> ExitCode {
    if msg.is_empty() {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

// ---------------------------------------------------------------------------
// subcommands

fn cmd_validate(args: &[String]) -> ExitCode {
    let [path] = args else {
        return fail("validate takes exactly one scenario file");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let scenario = match ScenarioSpec::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: parsing {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(errors) = scenario.validate() {
        eprintln!("{path}: {} violation(s)", errors.errors().len());
        for e in errors.errors() {
            eprintln!("  - {e}");
        }
        return ExitCode::from(2);
    }
    match &scenario {
        ScenarioSpec::Campaign(c) => {
            let config = c.resolve().expect("validated spec resolves");
            println!(
                "OK: {path}: campaign on {} ({} frequencies, {} ordered pairs)",
                config.spec.name,
                config.frequencies.len(),
                config.ordered_pairs().len()
            );
        }
        ScenarioSpec::Fleet(f) => {
            println!(
                "OK: {path}: fleet of {} member campaign(s)",
                f.members.len()
            );
            for (i, member) in f.members.iter().enumerate() {
                let config = member.resolve().expect("validated member resolves");
                println!(
                    "  member {i}: {} ({} frequencies, {} ordered pairs)",
                    config.spec.name,
                    config.frequencies.len(),
                    config.ordered_pairs().len()
                );
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_print_spec(raw: &[String]) -> ExitCode {
    let args = match parse_run_args(raw) {
        Ok(a) => a,
        Err(msg) => return fail(&msg),
    };
    match effective_spec(&args) {
        Ok(scenario) => {
            println!("{}", scenario.to_json());
            ExitCode::SUCCESS
        }
        Err(msg) => fail(&msg),
    }
}

fn cmd_list_devices() -> ExitCode {
    let registry = DeviceRegistry::builtin();
    let mut table = TextTable::with_header(&[
        "name",
        "device",
        "ladder [MHz]",
        "steps",
        "units",
        "aliases",
    ]);
    for entry in registry.entries() {
        let spec = entry.make(0);
        table.row(&[
            entry.name().to_string(),
            spec.name.clone(),
            format!("{}-{}", spec.ladder.min().0, spec.ladder.max().0),
            spec.ladder.len().to_string(),
            entry.units().to_string(),
            entry.aliases().join(", "),
        ]);
    }
    println!("{}", table.render());
    for entry in registry.entries() {
        println!("  {}: {}", entry.name(), entry.description());
    }
    ExitCode::SUCCESS
}

fn cmd_list_workloads() -> ExitCode {
    let registry = WorkloadRegistry::builtin();
    let mut table = TextTable::with_header(&["name", "description"]);
    for entry in registry.entries() {
        table.row(&[entry.name().to_string(), entry.description().to_string()]);
    }
    println!("{}", table.render());
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// run

/// Write `content` to `path` atomically (write-to-temp + rename), so a
/// crash mid-write can never corrupt an existing checkpoint.
fn write_atomic(path: &Path, content: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, content)?;
    std::fs::rename(&tmp, path)
}

fn run_campaign(spec: CampaignSpec, args: &RunArgs) -> ExitCode {
    let config = match spec.resolve() {
        Ok(c) => c,
        Err(errors) => {
            eprintln!("error: invalid spec:");
            for e in errors.errors() {
                eprintln!("  - {e}");
            }
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "benchmarking {} (device {}), {} frequencies, {} ordered pairs",
        config.spec.name,
        config.device_index,
        config.frequencies.len(),
        config.ordered_pairs().len()
    );
    let hostname = config.hostname.clone();
    let device_index = config.device_index;

    let mut session = CampaignSession::new(config);
    if args.progress {
        session = session.observe(|e: &CampaignEvent| eprintln!("progress: {e}"));
    }
    if let Some(path) = &args.checkpoint {
        if path.is_file() {
            let checkpoint = match std::fs::read_to_string(path)
                .map_err(|e| e.to_string())
                .and_then(|t| SpecCheckpoint::from_json(&t).map_err(|e| e.to_string()))
            {
                Ok(cp) => cp,
                Err(e) => {
                    eprintln!(
                        "error: checkpoint {} is unreadable ({e}); delete it to start fresh",
                        path.display()
                    );
                    return ExitCode::from(2);
                }
            };
            // The session validates device, seed and pair set itself, but
            // only the stored spec can reveal a knob mismatch (measurement
            // bounds, RSE, workload): refuse to mix configurations.
            if checkpoint.spec != spec {
                eprintln!(
                    "error: checkpoint {} was taken under a different spec; \
                     rerun with the original scenario/flags, or delete the \
                     checkpoint to start fresh",
                    path.display()
                );
                return ExitCode::from(2);
            }
            eprintln!(
                "resuming from checkpoint {} ({} of {} pairs already settled)",
                path.display(),
                checkpoint
                    .result
                    .pairs()
                    .iter()
                    .filter(|p| !p.outcome.is_cancelled())
                    .count(),
                checkpoint.result.pairs().len()
            );
            session = session.resume_from(checkpoint.result);
        }
        let sink_path = path.clone();
        let sink_spec = spec.clone();
        session = session.checkpoint_to(args.checkpoint_every, move |cp: &CampaignResult| {
            let doc = SpecCheckpoint {
                spec: sink_spec.clone(),
                result: cp.clone(),
            };
            if let Err(e) = write_atomic(&sink_path, &doc.to_json()) {
                eprintln!("warning: writing checkpoint {}: {e}", sink_path.display());
            }
        });
    }

    let result = match session.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "phase 1: {} valid pairs, {} skipped as indistinguishable",
        result.phase1.valid_pairs.len(),
        result.phase1.skipped_pairs.len()
    );

    if let Some(dir) = &args.store {
        match ResultStore::open(dir).and_then(|store| store.put(&spec, &result)) {
            Ok(id) => eprintln!("archived as {id} in {}", dir.display()),
            Err(e) => {
                eprintln!("error: archiving result: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let table = campaign_summary_table(&result);
    let mut csv_files = 0usize;
    if let Some(dir) = &args.out_dir {
        for pair in result.pairs() {
            if let PairOutcome::Completed(run) = &pair.outcome {
                match write_pair_csv(dir, run, &hostname, device_index) {
                    Ok(_) => csv_files += 1,
                    Err(e) => eprintln!(
                        "warning: writing CSV for {}->{}: {e}",
                        pair.init_mhz, pair.target_mhz
                    ),
                }
            }
        }
    }
    if args.json {
        // The serialisable result is the machine interface; the table stays
        // on stderr so `latest run --json | jq` composes cleanly.
        println!("{}", result.to_json());
        eprintln!("{}", table.render());
    } else {
        println!("{}", table.render());
    }
    if let Some(dir) = &args.out_dir {
        eprintln!("wrote {csv_files} CSV files to {}", dir.display());
    }
    ExitCode::SUCCESS
}

fn run_fleet(spec: FleetSpec, args: &RunArgs) -> ExitCode {
    if args.checkpoint.is_some() {
        eprintln!("error: --checkpoint supports single-campaign specs only");
        return ExitCode::from(2);
    }
    let n_members = spec.members.len();
    let member_specs = spec.members.clone();
    let fleet = match spec.into_fleet() {
        Ok(f) => f,
        Err(errors) => {
            eprintln!("error: invalid spec:");
            for e in errors.errors() {
                eprintln!("  - {e}");
            }
            return ExitCode::from(2);
        }
    };
    eprintln!("benchmarking a fleet of {n_members} device(s)");
    let fleet = if args.progress {
        fleet.observe(|slot: usize, e: &CampaignEvent| eprintln!("progress[device {slot}]: {e}"))
    } else {
        fleet
    };
    let result = match fleet.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = &args.store {
        // Members that were cancelled before starting have no result; the
        // started ones appear in `devices()` in slot order.
        let started: Vec<CampaignSpec> = member_specs
            .iter()
            .enumerate()
            .filter(|(slot, _)| !result.unstarted().contains(slot))
            .map(|(_, m)| m.clone())
            .collect();
        let archive = ResultStore::open(dir).and_then(|store| {
            let fleet_spec = FleetSpec {
                description: String::new(),
                members: started,
            };
            store.put_fleet(&fleet_spec, result.devices())
        });
        match archive {
            Ok(ids) => {
                for (slot, id) in ids.iter().enumerate() {
                    eprintln!("archived member {slot} as {id} in {}", dir.display());
                }
            }
            Err(e) => {
                eprintln!("error: archiving fleet results: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let rows: Vec<CrossDeviceRow> = result.summary_rows().into_iter().map(Into::into).collect();
    let table = cross_device_table(&rows).render();
    if args.json {
        println!("{}", result.to_json());
        eprintln!("{table}");
    } else {
        println!("{table}");
    }
    if let Some(dir) = &args.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: creating {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        let path = dir.join("fleet_summary.csv");
        if let Err(e) = std::fs::write(&path, result.summary_csv()) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote cross-device summary to {}", path.display());
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// archive subcommands (report / diff / list-runs)

struct ArchiveArgs {
    targets: Vec<String>,
    store: PathBuf,
    out: Option<PathBuf>,
    alpha: f64,
    against: Option<String>,
    ids_only: bool,
}

fn parse_archive_args(raw: &[String]) -> Result<ArchiveArgs, String> {
    let mut out = ArchiveArgs {
        targets: Vec::new(),
        store: PathBuf::from("latest-store"),
        out: None,
        alpha: 0.05,
        against: None,
        ids_only: false,
    };
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--store" => out.store = PathBuf::from(value("--store")?),
            "--out" => out.out = Some(PathBuf::from(value("--out")?)),
            "--against" => out.against = Some(value("--against")?),
            "--alpha" => {
                out.alpha = value("--alpha")?
                    .parse()
                    .map_err(|e| format!("--alpha: {e}"))?;
                if !(out.alpha > 0.0 && out.alpha < 1.0) {
                    return Err(format!("--alpha must be in (0, 1), got {}", out.alpha));
                }
            }
            "--ids" => out.ids_only = true,
            other if other.starts_with('-') => return Err(format!("unknown option {other}")),
            positional => out.targets.push(positional.to_string()),
        }
    }
    Ok(out)
}

/// Resolve a run target — an archived run id (or unambiguous prefix), or a
/// campaign scenario file whose spec addresses its archived run — to the
/// stored run it names.
fn resolve_stored_run(store: &ResultStore, target: &str) -> Result<StoredRun, String> {
    if target.ends_with(".json") || Path::new(target).is_file() {
        let text = std::fs::read_to_string(target).map_err(|e| format!("reading {target}: {e}"))?;
        let scenario =
            ScenarioSpec::from_json(&text).map_err(|e| format!("parsing {target}: {e}"))?;
        let spec = match scenario {
            ScenarioSpec::Campaign(spec) => spec,
            ScenarioSpec::Fleet(_) => {
                return Err(format!(
                    "{target} is a fleet spec; fleet members are archived per slot — \
                     address one member's campaign spec or its run id"
                ))
            }
        };
        return store
            .latest_for(&spec)
            .map_err(|e| e.to_string())?
            .ok_or_else(|| {
                format!(
                    "no archived run for the spec in {target} (expected {}); \
                     archive one with `latest run {target} --store {}`",
                    latest::core::RunId::of_spec(&spec),
                    store.root().display()
                )
            });
    }
    let id = store.resolve(target).map_err(|e| e.to_string())?;
    store.get(&id).map_err(|e| e.to_string())
}

fn cmd_report(raw: &[String]) -> ExitCode {
    let args = match parse_archive_args(raw) {
        Ok(a) => a,
        Err(msg) => return fail(&msg),
    };
    let [target] = args.targets.as_slice() else {
        return fail("report takes exactly one run id or campaign scenario file");
    };
    let store = match ResultStore::open(&args.store) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: opening store: {e}");
            return ExitCode::from(2);
        }
    };
    let run = match resolve_stored_run(&store, target) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let out_dir = args
        .out
        .unwrap_or_else(|| PathBuf::from(format!("{}-report", run.run_id)));
    let bundle = Bundle::for_campaign(&run.result);
    match bundle.write_to(&out_dir) {
        Ok(written) => {
            eprintln!(
                "rendered {} ({} on {}, seed {}): {} files in {}",
                run.run_id,
                run.spec.device,
                run.provenance.device_name,
                run.provenance.seed,
                written.len(),
                out_dir.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: writing bundle: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_diff(raw: &[String]) -> ExitCode {
    let args = match parse_archive_args(raw) {
        Ok(a) => a,
        Err(msg) => return fail(&msg),
    };
    let (target_a, target_b) = match (args.targets.as_slice(), &args.against) {
        ([a, b], None) => (a.clone(), b.clone()),
        ([a], Some(b)) => (a.clone(), b.clone()),
        _ => return fail("diff takes two run targets (either `diff A B` or `diff A --against B`)"),
    };
    let store = match ResultStore::open(&args.store) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: opening store: {e}");
            return ExitCode::from(2);
        }
    };
    let (run_a, run_b) = match (
        resolve_stored_run(&store, &target_a),
        resolve_stored_run(&store, &target_b),
    ) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(msg), _) | (_, Err(msg)) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let diff = CampaignDiff::between(&run_a.result, &run_b.result, args.alpha);
    eprintln!("A: {} (seed {})", run_a.run_id, run_a.provenance.seed);
    eprintln!("B: {} (seed {})", run_b.run_id, run_b.provenance.seed);
    let table = diff.regression_table();
    let heatmap = diff.delta_heatmap();
    println!("{}", table.render());
    println!("{}", heatmap.render(heatmap.title(), false));
    if let Some(dir) = &args.out {
        let mut bundle = Bundle::new();
        bundle.add("delta_heatmap", heatmap);
        bundle.add("regression_table", table);
        if let Err(e) = bundle.write_to(dir) {
            eprintln!("error: writing diff artifacts: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote diff artifacts to {}", dir.display());
    }
    let regressions = diff.significant_regressions();
    let improvements = diff.improvements().count();
    let lost = diff.lost_pairs().len();
    eprintln!(
        "{} common pair(s): {regressions} significant regression(s), \
         {improvements} significant improvement(s) at family-wise alpha {}",
        diff.deltas.len(),
        args.alpha
    );
    if lost > 0 {
        eprintln!(
            "{lost} pair(s) measured in A have no data in B — \
             losing a measurable transition gates like a regression"
        );
    }
    if regressions > 0 || lost > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_list_runs(raw: &[String]) -> ExitCode {
    let args = match parse_archive_args(raw) {
        Ok(a) => a,
        Err(msg) => return fail(&msg),
    };
    if !args.targets.is_empty() {
        return fail("list-runs takes no positional arguments");
    }
    let runs = match ResultStore::open(&args.store).and_then(|s| s.list()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: listing {}: {e}", args.store.display());
            return ExitCode::from(2);
        }
    };
    if args.ids_only {
        for run in &runs {
            println!("{}", run.run_id);
        }
        return ExitCode::SUCCESS;
    }
    let mut table = TextTable::with_header(&[
        "run id",
        "device",
        "seed",
        "pairs",
        "completed",
        "description",
    ]);
    for run in &runs {
        table.row(&[
            run.run_id.to_string(),
            format!("{} [{}]", run.spec.device, run.provenance.device_index),
            run.provenance.seed.to_string(),
            run.provenance.pairs_total.to_string(),
            run.provenance.pairs_completed.to_string(),
            run.provenance.description.clone(),
        ]);
    }
    println!("{}", table.render());
    eprintln!("{} archived run(s) in {}", runs.len(), args.store.display());
    ExitCode::SUCCESS
}

fn cmd_run(raw: &[String]) -> ExitCode {
    let args = match parse_run_args(raw) {
        Ok(a) => a,
        Err(msg) => return fail(&msg),
    };
    let scenario = match effective_spec(&args) {
        Ok(s) => s,
        Err(msg) => return fail(&msg),
    };
    // No separate validation pass: resolve()/into_fleet() below report the
    // same exhaustive SpecErrors, and run_campaign/run_fleet print them.
    match scenario {
        ScenarioSpec::Campaign(spec) => run_campaign(spec, &args),
        ScenarioSpec::Fleet(spec) => run_fleet(spec, &args),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => fail(""),
        Some("run") => cmd_run(&argv[1..]),
        Some("report") => cmd_report(&argv[1..]),
        Some("diff") => cmd_diff(&argv[1..]),
        Some("list-runs") => cmd_list_runs(&argv[1..]),
        Some("validate") => cmd_validate(&argv[1..]),
        Some("print-spec") => cmd_print_spec(&argv[1..]),
        Some("list-devices") => cmd_list_devices(),
        Some("list-workloads") => cmd_list_workloads(),
        // Legacy shorthand: `latest [OPTIONS] <freq,freq,...>` is `run`.
        Some(_) => cmd_run(&argv),
    }
}
