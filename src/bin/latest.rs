//! `latest` — the command-line benchmarking tool of Sec. VI, over the
//! simulated CUDA substrate.
//!
//! Experiments are *data*: a scenario file (JSON [`CampaignSpec`] or
//! [`FleetSpec`]) fully describes a campaign, and the legacy flag interface
//! compiles to exactly the same spec — `print-spec` shows the effective
//! spec for any invocation, and re-running that output reproduces the run
//! bit for bit.
//!
//! ```text
//! latest run scenarios/table2.json --json
//! latest run --model gh200 --rse 0.05 --min 25 --max 150 705,1260,1980
//! latest run big_sweep.json --checkpoint sweep.ckpt.json   # resumes on restart
//! latest validate scenarios/fleet_sweep.json
//! latest print-spec --model a100 --seed 7 705,1410
//! latest list-devices
//! latest 705,1095,1410          # legacy shorthand for `run`
//! ```
//!
//! After each pair, latencies are written to
//! `latest_{init}MHz_{target}MHz_{hostname}_gpu{index}.csv` in the output
//! directory, exactly as the paper describes; fleet runs write a
//! cross-device `fleet_summary.csv` instead.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use latest::core::output::write_pair_csv;
use latest::core::spec::{CampaignSpec, FleetSpec, ScenarioSpec, SpecCheckpoint};
use latest::core::{CampaignEvent, CampaignResult, CampaignSession, PairOutcome};
use latest::gpu_sim::devices::DeviceRegistry;
use latest::gpu_sim::sm::WorkloadRegistry;
use latest::report::{cross_device_table, CrossDeviceRow, TextTable};

const USAGE: &str = "\
usage: latest <command> [options]
       latest [OPTIONS] <freq,freq,...>         (legacy shorthand for `run`)

Benchmark the SM frequency switching latency of simulated CUDA GPUs.

commands:
  run [<spec.json>] [options] [<freq,freq,...>]
                       run a campaign (or fleet) described by a scenario
                       file, by flags, or by a file with flag overrides
  validate <spec.json> check a scenario file, listing every violation
  print-spec [...]     print the effective spec for any run invocation
  list-devices         enumerate the device registry
  list-workloads       enumerate the workload presets
  help                 print this message

run/print-spec options (flags override scenario-file fields; for fleet
specs, overrides apply to every member):
  --model <name>       gpu model (see `latest list-devices`)
  --device <index>     device unit index                     [0]
  --rse <fraction>     RSE stopping threshold                [0.05]
  --min <count>        measurements before RSE checks begin  [25]
  --max <count>        hard cap on measurements per pair     [150]
  --seed <u64>         simulation seed                       [0]
  --hostname <name>    hostname used in CSV file names       [simnode]
  --sms <count>        simulated SM record streams           [8]
  --workload <name>    workload preset (see list-workloads)  [paper-default]

run-only options:
  --out <dir>          per-pair CSVs (campaign) or fleet_summary.csv (fleet)
  --json               emit the full result as JSON on stdout
  --progress           stream per-pair progress events to stderr
  --checkpoint <path>  persist a resumable checkpoint to this file while
                       running, and resume from it when it already exists
                       (single-campaign specs only)
  --checkpoint-every <n>  pairs between checkpoint writes    [5]
";

// ---------------------------------------------------------------------------
// argument parsing

#[derive(Default)]
struct RunArgs {
    spec_path: Option<PathBuf>,
    frequencies: Option<Vec<u32>>,
    model: Option<String>,
    device_index: Option<usize>,
    rse: Option<f64>,
    min: Option<usize>,
    max: Option<usize>,
    seed: Option<u64>,
    hostname: Option<String>,
    sms: Option<u32>,
    workload: Option<String>,
    out_dir: Option<PathBuf>,
    json: bool,
    progress: bool,
    checkpoint: Option<PathBuf>,
    checkpoint_every: usize,
}

fn parse_freq_list(text: &str) -> Result<Vec<u32>, String> {
    let mut freqs = Vec::new();
    for part in text.split(',') {
        let mhz: u32 = part
            .trim()
            .parse()
            .map_err(|_| format!("bad frequency {part:?} in list"))?;
        freqs.push(mhz);
    }
    Ok(freqs)
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut out = RunArgs {
        checkpoint_every: 5,
        ..RunArgs::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--model" => out.model = Some(value("--model")?),
            "--device" => {
                out.device_index = Some(
                    value("--device")?
                        .parse()
                        .map_err(|e| format!("--device: {e}"))?,
                )
            }
            "--rse" => out.rse = Some(value("--rse")?.parse().map_err(|e| format!("--rse: {e}"))?),
            "--min" => out.min = Some(value("--min")?.parse().map_err(|e| format!("--min: {e}"))?),
            "--max" => out.max = Some(value("--max")?.parse().map_err(|e| format!("--max: {e}"))?),
            "--seed" => {
                out.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--hostname" => out.hostname = Some(value("--hostname")?),
            "--sms" => out.sms = Some(value("--sms")?.parse().map_err(|e| format!("--sms: {e}"))?),
            "--workload" => out.workload = Some(value("--workload")?),
            "--out" => out.out_dir = Some(PathBuf::from(value("--out")?)),
            "--json" => out.json = true,
            "--progress" => out.progress = true,
            "--checkpoint" => out.checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
            "--checkpoint-every" => {
                out.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?
            }
            other if other.starts_with('-') => return Err(format!("unknown option {other}")),
            positional => {
                // A positional is either the scenario file or the legacy
                // frequency list.
                if positional.ends_with(".json") || Path::new(positional).is_file() {
                    if out.spec_path.is_some() {
                        return Err("multiple scenario files given".to_string());
                    }
                    out.spec_path = Some(PathBuf::from(positional));
                } else {
                    if out.frequencies.is_some() {
                        return Err("multiple frequency lists given".to_string());
                    }
                    out.frequencies = Some(parse_freq_list(positional)?);
                }
            }
        }
    }
    Ok(out)
}

/// Compile the invocation — scenario file plus flag overrides, or flags
/// alone — into the effective spec. This is the single construction path:
/// the legacy interface has no behaviour of its own.
fn effective_spec(args: &RunArgs) -> Result<ScenarioSpec, String> {
    let mut scenario = match &args.spec_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            ScenarioSpec::from_json(&text)
                .map_err(|e| format!("parsing {}: {e}", path.display()))?
        }
        None => ScenarioSpec::Campaign(CampaignSpec::default()),
    };
    let apply = |spec: &mut CampaignSpec| {
        if let Some(freqs) = &args.frequencies {
            spec.frequencies = latest::core::FreqSelection::List(freqs.clone());
        }
        if let Some(model) = &args.model {
            spec.device = model.clone();
        }
        if let Some(index) = args.device_index {
            spec.device_index = index;
        }
        if let Some(rse) = args.rse {
            spec.rse_threshold = rse;
        }
        if let Some(min) = args.min {
            spec.min_measurements = min;
        }
        if let Some(max) = args.max {
            spec.max_measurements = max;
        }
        if let Some(seed) = args.seed {
            spec.seed = seed;
        }
        if let Some(hostname) = &args.hostname {
            spec.hostname = hostname.clone();
        }
        if let Some(sms) = args.sms {
            spec.simulated_sms = Some(sms);
        }
        if let Some(workload) = &args.workload {
            spec.workload = workload.clone();
        }
    };
    match &mut scenario {
        ScenarioSpec::Campaign(spec) => apply(spec),
        ScenarioSpec::Fleet(fleet) => fleet.members.iter_mut().for_each(apply),
    }
    if args.spec_path.is_none() && args.frequencies.is_none() {
        return Err(
            "need a scenario file or a comma-separated frequency list (see `latest help`)"
                .to_string(),
        );
    }
    Ok(scenario)
}

fn fail(msg: &str) -> ExitCode {
    if msg.is_empty() {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

// ---------------------------------------------------------------------------
// subcommands

fn cmd_validate(args: &[String]) -> ExitCode {
    let [path] = args else {
        return fail("validate takes exactly one scenario file");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let scenario = match ScenarioSpec::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: parsing {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(errors) = scenario.validate() {
        eprintln!("{path}: {} violation(s)", errors.errors().len());
        for e in errors.errors() {
            eprintln!("  - {e}");
        }
        return ExitCode::from(2);
    }
    match &scenario {
        ScenarioSpec::Campaign(c) => {
            let config = c.resolve().expect("validated spec resolves");
            println!(
                "OK: {path}: campaign on {} ({} frequencies, {} ordered pairs)",
                config.spec.name,
                config.frequencies.len(),
                config.ordered_pairs().len()
            );
        }
        ScenarioSpec::Fleet(f) => {
            println!(
                "OK: {path}: fleet of {} member campaign(s)",
                f.members.len()
            );
            for (i, member) in f.members.iter().enumerate() {
                let config = member.resolve().expect("validated member resolves");
                println!(
                    "  member {i}: {} ({} frequencies, {} ordered pairs)",
                    config.spec.name,
                    config.frequencies.len(),
                    config.ordered_pairs().len()
                );
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_print_spec(raw: &[String]) -> ExitCode {
    let args = match parse_run_args(raw) {
        Ok(a) => a,
        Err(msg) => return fail(&msg),
    };
    match effective_spec(&args) {
        Ok(scenario) => {
            println!("{}", scenario.to_json());
            ExitCode::SUCCESS
        }
        Err(msg) => fail(&msg),
    }
}

fn cmd_list_devices() -> ExitCode {
    let registry = DeviceRegistry::builtin();
    let mut table = TextTable::with_header(&[
        "name",
        "device",
        "ladder [MHz]",
        "steps",
        "units",
        "aliases",
    ]);
    for entry in registry.entries() {
        let spec = entry.make(0);
        table.row(&[
            entry.name().to_string(),
            spec.name.clone(),
            format!("{}-{}", spec.ladder.min().0, spec.ladder.max().0),
            spec.ladder.len().to_string(),
            entry.units().to_string(),
            entry.aliases().join(", "),
        ]);
    }
    println!("{}", table.render());
    for entry in registry.entries() {
        println!("  {}: {}", entry.name(), entry.description());
    }
    ExitCode::SUCCESS
}

fn cmd_list_workloads() -> ExitCode {
    let registry = WorkloadRegistry::builtin();
    let mut table = TextTable::with_header(&["name", "description"]);
    for entry in registry.entries() {
        table.row(&[entry.name().to_string(), entry.description().to_string()]);
    }
    println!("{}", table.render());
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// run

/// Write `content` to `path` atomically (write-to-temp + rename), so a
/// crash mid-write can never corrupt an existing checkpoint.
fn write_atomic(path: &Path, content: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, content)?;
    std::fs::rename(&tmp, path)
}

fn run_campaign(spec: CampaignSpec, args: &RunArgs) -> ExitCode {
    let config = match spec.resolve() {
        Ok(c) => c,
        Err(errors) => {
            eprintln!("error: invalid spec:");
            for e in errors.errors() {
                eprintln!("  - {e}");
            }
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "benchmarking {} (device {}), {} frequencies, {} ordered pairs",
        config.spec.name,
        config.device_index,
        config.frequencies.len(),
        config.ordered_pairs().len()
    );
    let hostname = config.hostname.clone();
    let device_index = config.device_index;

    let mut session = CampaignSession::new(config);
    if args.progress {
        session = session.observe(|e: &CampaignEvent| eprintln!("progress: {e}"));
    }
    if let Some(path) = &args.checkpoint {
        if path.is_file() {
            let checkpoint = match std::fs::read_to_string(path)
                .map_err(|e| e.to_string())
                .and_then(|t| SpecCheckpoint::from_json(&t).map_err(|e| e.to_string()))
            {
                Ok(cp) => cp,
                Err(e) => {
                    eprintln!(
                        "error: checkpoint {} is unreadable ({e}); delete it to start fresh",
                        path.display()
                    );
                    return ExitCode::from(2);
                }
            };
            // The session validates device, seed and pair set itself, but
            // only the stored spec can reveal a knob mismatch (measurement
            // bounds, RSE, workload): refuse to mix configurations.
            if checkpoint.spec != spec {
                eprintln!(
                    "error: checkpoint {} was taken under a different spec; \
                     rerun with the original scenario/flags, or delete the \
                     checkpoint to start fresh",
                    path.display()
                );
                return ExitCode::from(2);
            }
            eprintln!(
                "resuming from checkpoint {} ({} of {} pairs already settled)",
                path.display(),
                checkpoint
                    .result
                    .pairs()
                    .iter()
                    .filter(|p| !p.outcome.is_cancelled())
                    .count(),
                checkpoint.result.pairs().len()
            );
            session = session.resume_from(checkpoint.result);
        }
        let sink_path = path.clone();
        let sink_spec = spec.clone();
        session = session.checkpoint_to(args.checkpoint_every, move |cp: &CampaignResult| {
            let doc = SpecCheckpoint {
                spec: sink_spec.clone(),
                result: cp.clone(),
            };
            if let Err(e) = write_atomic(&sink_path, &doc.to_json()) {
                eprintln!("warning: writing checkpoint {}: {e}", sink_path.display());
            }
        });
    }

    let result = match session.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "phase 1: {} valid pairs, {} skipped as indistinguishable",
        result.phase1.valid_pairs.len(),
        result.phase1.skipped_pairs.len()
    );

    let mut table = TextTable::with_header(&[
        "init[MHz]",
        "target[MHz]",
        "n",
        "min[ms]",
        "mean[ms]",
        "max[ms]",
        "outliers",
        "status",
    ]);
    let mut csv_files = 0usize;
    for pair in result.pairs() {
        let placeholder = |status: String| {
            [
                pair.init_mhz.to_string(),
                pair.target_mhz.to_string(),
                "0".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                status,
            ]
        };
        match &pair.outcome {
            PairOutcome::Completed(run) => {
                let a = pair.analysis.as_ref().expect("completed implies analysed");
                table.row(&[
                    pair.init_mhz.to_string(),
                    pair.target_mhz.to_string(),
                    a.inliers_ms.len().to_string(),
                    format!("{:.3}", a.filtered.min),
                    format!("{:.3}", a.filtered.mean),
                    format!("{:.3}", a.filtered.max),
                    a.outliers_ms.len().to_string(),
                    "ok".to_string(),
                ]);
                if let Some(dir) = &args.out_dir {
                    match write_pair_csv(dir, run, &hostname, device_index) {
                        Ok(_) => csv_files += 1,
                        Err(e) => eprintln!(
                            "warning: writing CSV for {}->{}: {e}",
                            pair.init_mhz, pair.target_mhz
                        ),
                    }
                }
            }
            PairOutcome::PowerLimited {
                measurements_before,
            } => {
                let mut row = placeholder("power-limited".to_string());
                row[2] = measurements_before.to_string();
                table.row(&row);
            }
            PairOutcome::SkippedIndistinguishable => {
                table.row(&placeholder("indistinguishable".to_string()));
            }
            PairOutcome::RetriesExhausted { attempts, .. } => {
                table.row(&placeholder(format!("unmeasurable ({attempts} attempts)")));
            }
            PairOutcome::Cancelled => {
                table.row(&placeholder("cancelled".to_string()));
            }
        }
    }
    if args.json {
        // The serialisable result is the machine interface; the table stays
        // on stderr so `latest run --json | jq` composes cleanly.
        println!("{}", result.to_json());
        eprintln!("{}", table.render());
    } else {
        println!("{}", table.render());
    }
    if let Some(dir) = &args.out_dir {
        eprintln!("wrote {csv_files} CSV files to {}", dir.display());
    }
    ExitCode::SUCCESS
}

fn run_fleet(spec: FleetSpec, args: &RunArgs) -> ExitCode {
    if args.checkpoint.is_some() {
        eprintln!("error: --checkpoint supports single-campaign specs only");
        return ExitCode::from(2);
    }
    let n_members = spec.members.len();
    let fleet = match spec.into_fleet() {
        Ok(f) => f,
        Err(errors) => {
            eprintln!("error: invalid spec:");
            for e in errors.errors() {
                eprintln!("  - {e}");
            }
            return ExitCode::from(2);
        }
    };
    eprintln!("benchmarking a fleet of {n_members} device(s)");
    let fleet = if args.progress {
        fleet.observe(|slot: usize, e: &CampaignEvent| eprintln!("progress[device {slot}]: {e}"))
    } else {
        fleet
    };
    let result = match fleet.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rows: Vec<CrossDeviceRow> = result.summary_rows().into_iter().map(Into::into).collect();
    let table = cross_device_table(&rows).render();
    if args.json {
        println!("{}", result.to_json());
        eprintln!("{table}");
    } else {
        println!("{table}");
    }
    if let Some(dir) = &args.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: creating {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        let path = dir.join("fleet_summary.csv");
        if let Err(e) = std::fs::write(&path, result.summary_csv()) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote cross-device summary to {}", path.display());
    }
    ExitCode::SUCCESS
}

fn cmd_run(raw: &[String]) -> ExitCode {
    let args = match parse_run_args(raw) {
        Ok(a) => a,
        Err(msg) => return fail(&msg),
    };
    let scenario = match effective_spec(&args) {
        Ok(s) => s,
        Err(msg) => return fail(&msg),
    };
    // No separate validation pass: resolve()/into_fleet() below report the
    // same exhaustive SpecErrors, and run_campaign/run_fleet print them.
    match scenario {
        ScenarioSpec::Campaign(spec) => run_campaign(spec, &args),
        ScenarioSpec::Fleet(spec) => run_fleet(spec, &args),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => fail(""),
        Some("run") => cmd_run(&argv[1..]),
        Some("validate") => cmd_validate(&argv[1..]),
        Some("print-spec") => cmd_print_spec(&argv[1..]),
        Some("list-devices") => cmd_list_devices(),
        Some("list-workloads") => cmd_list_workloads(),
        // Legacy shorthand: `latest [OPTIONS] <freq,freq,...>` is `run`.
        Some(_) => cmd_run(&argv),
    }
}
