//! `latest` — the command-line benchmarking tool of Sec. VI, over the
//! simulated CUDA substrate.
//!
//! Experiments are *data*: a scenario file (JSON [`CampaignSpec`] or
//! [`FleetSpec`]) fully describes a campaign, and the legacy flag interface
//! compiles to exactly the same spec — `print-spec` shows the effective
//! spec for any invocation, and re-running that output reproduces the run
//! bit for bit.
//!
//! ```text
//! latest run scenarios/table2.json --json
//! latest run --model gh200 --rse 0.05 --min 25 --max 150 705,1260,1980
//! latest run big_sweep.json --checkpoint sweep.ckpt.json   # resumes on restart
//! latest validate scenarios/fleet_sweep.json
//! latest print-spec --model a100 --seed 7 705,1410
//! latest list-devices
//! latest 705,1095,1410          # legacy shorthand for `run`
//! ```
//!
//! After each pair, latencies are written to
//! `latest_{init}MHz_{target}MHz_{hostname}_gpu{index}.csv` in the output
//! directory, exactly as the paper describes; fleet runs write a
//! cross-device `fleet_summary.csv` instead.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use latest::core::output::write_pair_csv;
use latest::core::spec::{CampaignSpec, FleetSpec, ScenarioSpec, SpecCheckpoint};
use latest::core::store::{ResultStore, StoreError, StoredRun};
use latest::core::{CampaignEvent, CampaignResult, CampaignSession, FleetResult, PairOutcome};
use latest::governor::{
    make_policy, replay_seed, scorecards_to_json, DaemonConfig, GovernorDaemon, LatencyTable,
    PowerModel, Scorecard, TransitionReplay, ZoneLadder, POLICY_NAMES,
};
use latest::gpu_sim::devices::DeviceRegistry;
use latest::gpu_sim::sm::WorkloadRegistry;
use latest::predict::{
    build_corpora, closed_loop_validate, corpus_for_device, cross_validate, family_matches,
    parse_batch_pairs, serve_batch, PredictModel, PredictedTable,
};
use latest::queue::{
    EventLog, EventTail, JobId, JobQueue, JobState, PoolConfig, ProgressFormatter, QueueEvent,
    SubmitOptions, WorkerPool,
};
use latest::report::{
    campaign_summary_table, cross_device_table, energy_heatmap, missed_rate_heatmap,
    policy_scorecard_table, render_to_string, stage_latency_table, Bundle, CampaignDiff,
    CrossDeviceRow, Format, PolicyScoreRow, TextTable,
};
use latest::telemetry::{ClockSpec, Stage, TelemetrySnapshot};
use latest::traffic::{TrafficRegistry, TrafficSpec};

const USAGE: &str = "\
usage: latest <command> [options]
       latest [OPTIONS] <freq,freq,...>         (legacy shorthand for `run`)

Benchmark the SM frequency switching latency of simulated CUDA GPUs, and
maintain an archive of the results.

commands:
  run [<spec.json>] [options] [<freq,freq,...>]
                       run a campaign (or fleet) described by a scenario
                       file, by flags, or by a file with flag overrides
  report <run-id|spec.json> [--store <dir>] [--out <dir>]
                       render a stored run's complete artefact bundle
                       (figures, tables, EXPERIMENTS.md in all formats)
  diff <a> <b> | diff <a> --against <b>
                       per-pair latency deltas between two stored runs with
                       Mann-Whitney significance; exits 1 on significant
                       regressions
  list-runs [--store <dir>] [--ids] [--family <prefix>] [--prune <n>]
                       enumerate the archive with spec provenance; --family
                       filters to one experiment family; --prune keeps only
                       the latest n runs per family
  queue <submit|serve|status|cancel|watch> [...]
                       the campaign execution service (see `latest queue help`)
  govern <run|list-policies|list-traffic> [...]
                       score governor policies against synthetic traffic
                       using an archived latency table (see `latest govern help`)
  predict <fit|query|validate> [...]
                       fit latency models over the archive and serve pairs
                       nobody measured (see `latest predict help`)
  validate <spec.json> check a scenario file, listing every violation
  print-spec [...]     print the effective spec for any run invocation
  list-devices         enumerate the device registry
  list-workloads       enumerate the workload presets
  help                 print this message

run/print-spec options (flags override scenario-file fields; for fleet
specs, overrides apply to every member):
  --model <name>       gpu model (see `latest list-devices`)
  --device <index>     device unit index                     [0]
  --rse <fraction>     RSE stopping threshold                [0.05]
  --min <count>        measurements before RSE checks begin  [25]
  --max <count>        hard cap on measurements per pair     [150]
  --seed <u64>         simulation seed                       [0]
  --hostname <name>    hostname used in CSV file names       [simnode]
  --sms <count>        simulated SM record streams           [8]
  --workload <name>    workload preset (see list-workloads)  [paper-default]

run-only options:
  --out <dir>          per-pair CSVs (campaign) or fleet_summary.csv (fleet)
  --store <dir>        archive the finished result(s) into this result
                       store (fleet members are stored per slot); when the
                       effective spec's run is already archived, the stored
                       summary is served and execution is skipped
  --force              re-measure even when --store already holds an
                       archived run of the effective spec
  --json               emit the full result as JSON on stdout
  --progress           stream per-pair progress events to stderr
  --checkpoint <path>  persist a resumable checkpoint to this file while
                       running, and resume from it when it already exists
                       (single-campaign specs only)
  --checkpoint-every <n>  pairs between checkpoint writes    [5]
  --shard-pairs <n>    schedule pairs in work units of at most n pairs
                       (shard progress events; results stay bitwise
                       identical to the default pair-granular scheduling)

report/diff/list-runs options:
  --store <dir>        the result store to read               [latest-store]
  --out <dir>          output directory (report: the bundle; diff: the
                       delta heatmap + regression table in all formats)
  --alpha <p>          diff significance level                [0.05]
  --family <prefix>    list-runs: only runs whose experiment family id
                       starts with this prefix (with or without `run-`)

Run targets for report/diff are either archived run ids (`run-<hex>`, any
unambiguous prefix of at least 4 digits) or campaign scenario files, which
resolve to the archived run of that exact spec.
";

// ---------------------------------------------------------------------------
// argument parsing

#[derive(Default)]
struct RunArgs {
    spec_path: Option<PathBuf>,
    frequencies: Option<Vec<u32>>,
    model: Option<String>,
    device_index: Option<usize>,
    rse: Option<f64>,
    min: Option<usize>,
    max: Option<usize>,
    seed: Option<u64>,
    hostname: Option<String>,
    sms: Option<u32>,
    workload: Option<String>,
    out_dir: Option<PathBuf>,
    store: Option<PathBuf>,
    force: bool,
    json: bool,
    progress: bool,
    checkpoint: Option<PathBuf>,
    checkpoint_every: usize,
    shard_pairs: Option<usize>,
}

fn parse_freq_list(text: &str) -> Result<Vec<u32>, String> {
    let mut freqs = Vec::new();
    for part in text.split(',') {
        let mhz: u32 = part
            .trim()
            .parse()
            .map_err(|_| format!("bad frequency {part:?} in list"))?;
        freqs.push(mhz);
    }
    Ok(freqs)
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut out = RunArgs {
        checkpoint_every: 5,
        ..RunArgs::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--model" => out.model = Some(value("--model")?),
            "--device" => {
                out.device_index = Some(
                    value("--device")?
                        .parse()
                        .map_err(|e| format!("--device: {e}"))?,
                )
            }
            "--rse" => out.rse = Some(value("--rse")?.parse().map_err(|e| format!("--rse: {e}"))?),
            "--min" => out.min = Some(value("--min")?.parse().map_err(|e| format!("--min: {e}"))?),
            "--max" => out.max = Some(value("--max")?.parse().map_err(|e| format!("--max: {e}"))?),
            "--seed" => {
                out.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--hostname" => out.hostname = Some(value("--hostname")?),
            "--sms" => out.sms = Some(value("--sms")?.parse().map_err(|e| format!("--sms: {e}"))?),
            "--workload" => out.workload = Some(value("--workload")?),
            "--out" => out.out_dir = Some(PathBuf::from(value("--out")?)),
            "--store" => out.store = Some(PathBuf::from(value("--store")?)),
            "--force" => out.force = true,
            "--json" => out.json = true,
            "--progress" => out.progress = true,
            "--checkpoint" => out.checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
            "--checkpoint-every" => {
                out.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?
            }
            "--shard-pairs" => {
                out.shard_pairs = Some(
                    value("--shard-pairs")?
                        .parse::<usize>()
                        .map_err(|e| format!("--shard-pairs: {e}"))?
                        .max(1),
                )
            }
            other if other.starts_with('-') => return Err(format!("unknown option {other}")),
            positional => {
                // A positional is either the scenario file or the legacy
                // frequency list.
                if positional.ends_with(".json") || Path::new(positional).is_file() {
                    if out.spec_path.is_some() {
                        return Err("multiple scenario files given".to_string());
                    }
                    out.spec_path = Some(PathBuf::from(positional));
                } else {
                    if out.frequencies.is_some() {
                        return Err("multiple frequency lists given".to_string());
                    }
                    out.frequencies = Some(parse_freq_list(positional)?);
                }
            }
        }
    }
    Ok(out)
}

/// Compile the invocation — scenario file plus flag overrides, or flags
/// alone — into the effective spec. This is the single construction path:
/// the legacy interface has no behaviour of its own.
fn effective_spec(args: &RunArgs) -> Result<ScenarioSpec, String> {
    let mut scenario = match &args.spec_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            ScenarioSpec::from_json(&text)
                .map_err(|e| format!("parsing {}: {e}", path.display()))?
        }
        None => ScenarioSpec::Campaign(CampaignSpec::default()),
    };
    let apply = |spec: &mut CampaignSpec| {
        if let Some(freqs) = &args.frequencies {
            spec.frequencies = latest::core::FreqSelection::List(freqs.clone());
        }
        if let Some(model) = &args.model {
            spec.device = model.clone();
        }
        if let Some(index) = args.device_index {
            spec.device_index = index;
        }
        if let Some(rse) = args.rse {
            spec.rse_threshold = rse;
        }
        if let Some(min) = args.min {
            spec.min_measurements = min;
        }
        if let Some(max) = args.max {
            spec.max_measurements = max;
        }
        if let Some(seed) = args.seed {
            spec.seed = seed;
        }
        if let Some(hostname) = &args.hostname {
            spec.hostname = hostname.clone();
        }
        if let Some(sms) = args.sms {
            spec.simulated_sms = Some(sms);
        }
        if let Some(workload) = &args.workload {
            spec.workload = workload.clone();
        }
    };
    match &mut scenario {
        ScenarioSpec::Campaign(spec) => apply(spec),
        ScenarioSpec::Fleet(fleet) => fleet.members.iter_mut().for_each(apply),
    }
    if args.spec_path.is_none() && args.frequencies.is_none() {
        return Err(
            "need a scenario file or a comma-separated frequency list (see `latest help`)"
                .to_string(),
        );
    }
    Ok(scenario)
}

fn fail(msg: &str) -> ExitCode {
    if msg.is_empty() {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

// ---------------------------------------------------------------------------
// subcommands

/// Describe a campaign's frequency plane: `"3 frequencies"` for a
/// core-only sweep, `"2 core x 3 memory frequencies"` for a 2-D one.
fn freq_plane(config: &latest::core::CampaignConfig) -> String {
    if config.mem_frequencies.is_empty() {
        format!("{} frequencies", config.frequencies.len())
    } else {
        format!(
            "{} core x {} memory frequencies",
            config.frequencies.len(),
            config.mem_frequencies.len()
        )
    }
}

fn cmd_validate(args: &[String]) -> ExitCode {
    let [path] = args else {
        return fail("validate takes exactly one scenario file");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let scenario = match ScenarioSpec::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: parsing {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(errors) = scenario.validate() {
        eprintln!("{path}: {} violation(s)", errors.errors().len());
        for e in errors.errors() {
            eprintln!("  - {e}");
        }
        return ExitCode::from(2);
    }
    match &scenario {
        ScenarioSpec::Campaign(c) => {
            let config = c.resolve().expect("validated spec resolves");
            println!(
                "OK: {path}: campaign on {} ({}, {} ordered pairs)",
                config.spec.name,
                freq_plane(&config),
                config.ordered_state_pairs().len()
            );
        }
        ScenarioSpec::Fleet(f) => {
            println!(
                "OK: {path}: fleet of {} member campaign(s)",
                f.members.len()
            );
            for (i, member) in f.members.iter().enumerate() {
                let config = member.resolve().expect("validated member resolves");
                println!(
                    "  member {i}: {} ({}, {} ordered pairs)",
                    config.spec.name,
                    freq_plane(&config),
                    config.ordered_state_pairs().len()
                );
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_print_spec(raw: &[String]) -> ExitCode {
    let args = match parse_run_args(raw) {
        Ok(a) => a,
        Err(msg) => return fail(&msg),
    };
    match effective_spec(&args) {
        Ok(scenario) => {
            println!("{}", scenario.to_json());
            ExitCode::SUCCESS
        }
        Err(msg) => fail(&msg),
    }
}

fn cmd_list_devices() -> ExitCode {
    let registry = DeviceRegistry::builtin();
    let mut table = TextTable::with_header(&[
        "name",
        "device",
        "ladder [MHz]",
        "steps",
        "mem ladder [MHz]",
        "mem steps",
        "units",
        "aliases",
    ]);
    for entry in registry.entries() {
        let spec = entry.make(0);
        table.row(&[
            entry.name().to_string(),
            spec.name.clone(),
            format!("{}-{}", spec.ladder.min().0, spec.ladder.max().0),
            spec.ladder.len().to_string(),
            format!("{}-{}", spec.mem_ladder.min().0, spec.mem_ladder.max().0),
            spec.mem_ladder.len().to_string(),
            entry.units().to_string(),
            entry.aliases().join(", "),
        ]);
    }
    println!("{}", table.render());
    for entry in registry.entries() {
        println!("  {}: {}", entry.name(), entry.description());
    }
    ExitCode::SUCCESS
}

fn cmd_list_workloads() -> ExitCode {
    let registry = WorkloadRegistry::builtin();
    let mut table = TextTable::with_header(&["name", "description"]);
    for entry in registry.entries() {
        table.row(&[entry.name().to_string(), entry.description().to_string()]);
    }
    println!("{}", table.render());
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// run

fn run_campaign(spec: CampaignSpec, args: &RunArgs) -> ExitCode {
    let config = match spec.resolve() {
        Ok(c) => c,
        Err(errors) => {
            eprintln!("error: invalid spec:");
            for e in errors.errors() {
                eprintln!("  - {e}");
            }
            return ExitCode::from(2);
        }
    };
    let hostname = config.hostname.clone();
    let device_index = config.device_index;

    // Result-cache consult: the same semantics as the queue service — an
    // archived run of the identical effective spec is served without
    // recomputation unless --force asks for a re-measurement.
    if let Some(dir) = &args.store {
        if !args.force {
            match ResultStore::open(dir).and_then(|store| store.latest_for(&spec)) {
                Ok(Some(run)) => {
                    eprintln!(
                        "cache hit: serving archived run {} from {} (pass --force to re-measure)",
                        run.run_id,
                        dir.display()
                    );
                    return finish_campaign(&run.result, args, &hostname, device_index);
                }
                Ok(None) => {}
                // A torn or tampered entry is a cache miss, not a dead
                // end: re-measuring re-archives it (same semantics as the
                // queue service's cache consult).
                Err(e @ (StoreError::Parse { .. } | StoreError::Corrupt { .. })) => {
                    eprintln!("warning: archived entry is unreadable, re-measuring: {e}");
                }
                Err(e) => {
                    eprintln!("error: consulting result store: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }

    eprintln!(
        "benchmarking {} (device {}), {}, {} ordered pairs",
        config.spec.name,
        config.device_index,
        freq_plane(&config),
        config.ordered_state_pairs().len()
    );

    let n_shards = args
        .shard_pairs
        .map(|n| config.ordered_state_pairs().len().div_ceil(n));
    let mut session = CampaignSession::new(config);
    if args.progress {
        let fmt = std::sync::Mutex::new(ProgressFormatter::new());
        session = session.observe(move |e: &CampaignEvent| {
            eprintln!("progress: {}", fmt.lock().unwrap().line(e));
        });
    }
    if let Some(path) = &args.checkpoint {
        if path.is_file() {
            let checkpoint = match SpecCheckpoint::load(path) {
                Ok(cp) => cp,
                Err(e) => {
                    eprintln!(
                        "error: checkpoint {} is unreadable ({e}); delete it to start fresh",
                        path.display()
                    );
                    return ExitCode::from(2);
                }
            };
            // The session validates device, seed and pair set itself, but
            // only the stored spec can reveal a knob mismatch (measurement
            // bounds, RSE, workload): refuse to mix configurations.
            if checkpoint.spec != spec {
                eprintln!(
                    "error: checkpoint {} was taken under a different spec; \
                     rerun with the original scenario/flags, or delete the \
                     checkpoint to start fresh",
                    path.display()
                );
                return ExitCode::from(2);
            }
            eprintln!(
                "resuming from checkpoint {} ({} of {} pairs already settled)",
                path.display(),
                checkpoint
                    .result
                    .pairs()
                    .iter()
                    .filter(|p| !p.outcome.is_cancelled())
                    .count(),
                checkpoint.result.pairs().len()
            );
            session = session.resume_from(checkpoint.result);
        }
        let sink_path = path.clone();
        let sink_spec = spec.clone();
        session = session.checkpoint_to(args.checkpoint_every, move |cp: &CampaignResult| {
            let doc = SpecCheckpoint {
                spec: sink_spec.clone(),
                result: cp.clone(),
            };
            if let Err(e) = doc.save(&sink_path) {
                eprintln!("warning: writing checkpoint {}: {e}", sink_path.display());
            }
        });
    }

    let outcome = match n_shards {
        Some(n) => session.run_sharded(n),
        None => session.run(),
    };
    let result = match outcome {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "phase 1: {} valid pairs, {} skipped as indistinguishable",
        result.phase1.valid_pairs.len(),
        result.phase1.skipped_pairs.len()
    );

    if let Some(dir) = &args.store {
        match ResultStore::open(dir).and_then(|store| store.put(&spec, &result)) {
            Ok(id) => eprintln!("archived as {id} in {}", dir.display()),
            Err(e) => {
                eprintln!("error: archiving result: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    finish_campaign(&result, args, &hostname, device_index)
}

/// The common output tail of `latest run` for campaigns, shared between a
/// fresh execution and a result served from the archive: summary table,
/// optional per-pair CSVs, optional JSON on stdout.
fn finish_campaign(
    result: &CampaignResult,
    args: &RunArgs,
    hostname: &str,
    device_index: usize,
) -> ExitCode {
    let table = campaign_summary_table(result);
    let mut csv_files = 0usize;
    if let Some(dir) = &args.out_dir {
        for pair in result.pairs() {
            if let PairOutcome::Completed(run) = &pair.outcome {
                match write_pair_csv(dir, run, hostname, device_index) {
                    Ok(_) => csv_files += 1,
                    Err(e) => eprintln!(
                        "warning: writing CSV for {}->{}: {e}",
                        pair.init, pair.target
                    ),
                }
            }
        }
    }
    if args.json {
        // The serialisable result is the machine interface; the table stays
        // on stderr so `latest run --json | jq` composes cleanly.
        println!("{}", result.to_json());
        eprintln!("{}", table.render());
    } else {
        println!("{}", table.render());
    }
    if let Some(dir) = &args.out_dir {
        eprintln!("wrote {csv_files} CSV files to {}", dir.display());
    }
    ExitCode::SUCCESS
}

fn run_fleet(spec: FleetSpec, args: &RunArgs) -> ExitCode {
    if args.checkpoint.is_some() {
        eprintln!("error: --checkpoint supports single-campaign specs only");
        return ExitCode::from(2);
    }
    let n_members = spec.members.len();
    let member_specs = spec.members.clone();

    // Result-cache consult, same semantics as the single-campaign path
    // and the queue service: archived runs of *every* member satisfy the
    // fleet without recomputation unless --force asks for a re-measure.
    if let Some(dir) = &args.store {
        if !args.force {
            let archived = ResultStore::open(dir).and_then(|store| {
                let mut runs = Vec::new();
                for member in &member_specs {
                    match store.latest_for(member) {
                        Ok(Some(run)) => runs.push(run.result),
                        Ok(None) => return Ok(None),
                        // A torn or tampered member entry is a cache miss
                        // for the whole fleet: re-measuring re-archives it.
                        Err(e @ (StoreError::Parse { .. } | StoreError::Corrupt { .. })) => {
                            eprintln!("warning: archived entry is unreadable, re-measuring: {e}");
                            return Ok(None);
                        }
                        Err(e) => return Err(e),
                    }
                }
                Ok(Some(runs))
            });
            match archived {
                Ok(Some(runs)) => {
                    eprintln!(
                        "cache hit: serving {n_members} archived member run(s) from {} \
                         (pass --force to re-measure)",
                        dir.display()
                    );
                    return finish_fleet(&FleetResult::from_devices(runs), args);
                }
                Ok(None) => {}
                Err(e) => {
                    eprintln!("error: consulting result store: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }

    let fleet = match spec.into_fleet() {
        Ok(f) => f,
        Err(errors) => {
            eprintln!("error: invalid spec:");
            for e in errors.errors() {
                eprintln!("  - {e}");
            }
            return ExitCode::from(2);
        }
    };
    eprintln!("benchmarking a fleet of {n_members} device(s)");
    let fleet = if args.progress {
        let fmts =
            std::sync::Mutex::new(std::collections::HashMap::<usize, ProgressFormatter>::new());
        fleet.observe(move |slot: usize, e: &CampaignEvent| {
            let mut fmts = fmts.lock().unwrap();
            let line = fmts.entry(slot).or_default().line(e);
            eprintln!("progress[device {slot}]: {line}");
        })
    } else {
        fleet
    };
    let fleet = match args.shard_pairs {
        Some(n) => fleet.shard_pairs(n),
        None => fleet,
    };
    let result = match fleet.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = &args.store {
        // Members that were cancelled before starting have no result; the
        // started ones appear in `devices()` in slot order.
        let started: Vec<CampaignSpec> = member_specs
            .iter()
            .enumerate()
            .filter(|(slot, _)| !result.unstarted().contains(slot))
            .map(|(_, m)| m.clone())
            .collect();
        let archive = ResultStore::open(dir).and_then(|store| {
            let fleet_spec = FleetSpec {
                description: String::new(),
                members: started,
            };
            store.put_fleet(&fleet_spec, result.devices())
        });
        match archive {
            Ok(ids) => {
                for (slot, id) in ids.iter().enumerate() {
                    eprintln!("archived member {slot} as {id} in {}", dir.display());
                }
            }
            Err(e) => {
                eprintln!("error: archiving fleet results: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    finish_fleet(&result, args)
}

/// Render a fleet result (fresh or served from the archive): the
/// cross-device table, `--json` output and the `--out` summary CSV.
fn finish_fleet(result: &FleetResult, args: &RunArgs) -> ExitCode {
    let rows: Vec<CrossDeviceRow> = result.summary_rows().into_iter().map(Into::into).collect();
    let table = cross_device_table(&rows).render();
    if args.json {
        println!("{}", result.to_json());
        eprintln!("{table}");
    } else {
        println!("{table}");
    }
    if let Some(dir) = &args.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: creating {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        let path = dir.join("fleet_summary.csv");
        if let Err(e) = std::fs::write(&path, result.summary_csv()) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote cross-device summary to {}", path.display());
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// archive subcommands (report / diff / list-runs)

struct ArchiveArgs {
    targets: Vec<String>,
    store: PathBuf,
    out: Option<PathBuf>,
    alpha: f64,
    against: Option<String>,
    ids_only: bool,
    prune: Option<usize>,
    family: Option<String>,
}

fn parse_archive_args(raw: &[String]) -> Result<ArchiveArgs, String> {
    let mut out = ArchiveArgs {
        targets: Vec::new(),
        store: PathBuf::from("latest-store"),
        out: None,
        alpha: 0.05,
        against: None,
        ids_only: false,
        prune: None,
        family: None,
    };
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--store" => out.store = PathBuf::from(value("--store")?),
            "--out" => out.out = Some(PathBuf::from(value("--out")?)),
            "--against" => out.against = Some(value("--against")?),
            "--alpha" => {
                out.alpha = value("--alpha")?
                    .parse()
                    .map_err(|e| format!("--alpha: {e}"))?;
                if !(out.alpha > 0.0 && out.alpha < 1.0) {
                    return Err(format!("--alpha must be in (0, 1), got {}", out.alpha));
                }
            }
            "--ids" => out.ids_only = true,
            "--family" => out.family = Some(value("--family")?),
            "--prune" => {
                out.prune = Some(
                    value("--prune")?
                        .parse()
                        .map_err(|e| format!("--prune: {e}"))?,
                )
            }
            other if other.starts_with('-') => return Err(format!("unknown option {other}")),
            positional => out.targets.push(positional.to_string()),
        }
    }
    Ok(out)
}

/// Resolve a run target — an archived run id (or unambiguous prefix), or a
/// campaign scenario file whose spec addresses its archived run — to the
/// stored run it names.
fn resolve_stored_run(store: &ResultStore, target: &str) -> Result<StoredRun, String> {
    if target.ends_with(".json") || Path::new(target).is_file() {
        let text = std::fs::read_to_string(target).map_err(|e| format!("reading {target}: {e}"))?;
        let scenario =
            ScenarioSpec::from_json(&text).map_err(|e| format!("parsing {target}: {e}"))?;
        let spec = match scenario {
            ScenarioSpec::Campaign(spec) => spec,
            ScenarioSpec::Fleet(_) => {
                return Err(format!(
                    "{target} is a fleet spec; fleet members are archived per slot — \
                     address one member's campaign spec or its run id"
                ))
            }
        };
        return store
            .latest_for(&spec)
            .map_err(|e| e.to_string())?
            .ok_or_else(|| {
                format!(
                    "no archived run for the spec in {target} (expected {}); \
                     archive one with `latest run {target} --store {}`",
                    latest::core::RunId::of_spec(&spec),
                    store.root().display()
                )
            });
    }
    let id = store.resolve(target).map_err(|e| e.to_string())?;
    store.get(&id).map_err(|e| e.to_string())
}

fn cmd_report(raw: &[String]) -> ExitCode {
    let args = match parse_archive_args(raw) {
        Ok(a) => a,
        Err(msg) => return fail(&msg),
    };
    let [target] = args.targets.as_slice() else {
        return fail("report takes exactly one run id or campaign scenario file");
    };
    let store = match ResultStore::open(&args.store) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: opening store: {e}");
            return ExitCode::from(2);
        }
    };
    let run = match resolve_stored_run(&store, target) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let out_dir = args
        .out
        .unwrap_or_else(|| PathBuf::from(format!("{}-report", run.run_id)));
    let bundle = Bundle::for_campaign(&run.result);
    match bundle.write_to(&out_dir) {
        Ok(written) => {
            eprintln!(
                "rendered {} ({} on {}, seed {}): {} files in {}",
                run.run_id,
                run.spec.device,
                run.provenance.device_name,
                run.provenance.seed,
                written.len(),
                out_dir.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: writing bundle: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_diff(raw: &[String]) -> ExitCode {
    let args = match parse_archive_args(raw) {
        Ok(a) => a,
        Err(msg) => return fail(&msg),
    };
    let (target_a, target_b) = match (args.targets.as_slice(), &args.against) {
        ([a, b], None) => (a.clone(), b.clone()),
        ([a], Some(b)) => (a.clone(), b.clone()),
        _ => return fail("diff takes two run targets (either `diff A B` or `diff A --against B`)"),
    };
    let store = match ResultStore::open(&args.store) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: opening store: {e}");
            return ExitCode::from(2);
        }
    };
    let (run_a, run_b) = match (
        resolve_stored_run(&store, &target_a),
        resolve_stored_run(&store, &target_b),
    ) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(msg), _) | (_, Err(msg)) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let diff = CampaignDiff::between(&run_a.result, &run_b.result, args.alpha);
    eprintln!("A: {} (seed {})", run_a.run_id, run_a.provenance.seed);
    eprintln!("B: {} (seed {})", run_b.run_id, run_b.provenance.seed);
    let table = diff.regression_table();
    let heatmap = diff.delta_heatmap();
    println!("{}", table.render());
    println!("{}", heatmap.render(heatmap.title(), false));
    if let Some(dir) = &args.out {
        let mut bundle = Bundle::new();
        bundle.add("delta_heatmap", heatmap);
        bundle.add("regression_table", table);
        if let Err(e) = bundle.write_to(dir) {
            eprintln!("error: writing diff artifacts: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote diff artifacts to {}", dir.display());
    }
    let regressions = diff.significant_regressions();
    let improvements = diff.improvements().count();
    let lost = diff.lost_pairs().len();
    eprintln!(
        "{} common pair(s): {regressions} significant regression(s), \
         {improvements} significant improvement(s) at family-wise alpha {}",
        diff.deltas.len(),
        args.alpha
    );
    if lost > 0 {
        eprintln!(
            "{lost} pair(s) measured in A have no data in B — \
             losing a measurable transition gates like a regression"
        );
    }
    if regressions > 0 || lost > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_list_runs(raw: &[String]) -> ExitCode {
    let args = match parse_archive_args(raw) {
        Ok(a) => a,
        Err(msg) => return fail(&msg),
    };
    if !args.targets.is_empty() {
        return fail("list-runs takes no positional arguments");
    }
    let store = match ResultStore::open(&args.store) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: opening {}: {e}", args.store.display());
            return ExitCode::from(2);
        }
    };
    if let Some(keep) = args.prune {
        match store.gc(keep) {
            Ok(removed) => {
                for id in &removed {
                    eprintln!("pruned {id}");
                }
                eprintln!(
                    "pruned {} run(s), keeping the latest {keep} per experiment family",
                    removed.len()
                );
            }
            Err(e) => {
                eprintln!("error: pruning {}: {e}", args.store.display());
                return ExitCode::from(2);
            }
        }
    }
    let mut runs = match store.list() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: listing {}: {e}", args.store.display());
            return ExitCode::from(2);
        }
    };
    if let Some(prefix) = &args.family {
        runs.retain(|run| family_matches(&latest::core::RunId::family_of(&run.spec), prefix));
    }
    if args.ids_only {
        for run in &runs {
            println!("{}", run.run_id);
        }
        return ExitCode::SUCCESS;
    }
    let mut table = TextTable::with_header(&[
        "run id",
        "device",
        "seed",
        "pairs",
        "completed",
        "description",
    ]);
    for run in &runs {
        table.row(&[
            run.run_id.to_string(),
            format!("{} [{}]", run.spec.device, run.provenance.device_index),
            run.provenance.seed.to_string(),
            run.provenance.pairs_total.to_string(),
            run.provenance.pairs_completed.to_string(),
            run.provenance.description.clone(),
        ]);
    }
    println!("{}", table.render());
    match &args.family {
        Some(prefix) => eprintln!(
            "{} archived run(s) in {} in experiment family {prefix}*",
            runs.len(),
            args.store.display()
        ),
        None => eprintln!("{} archived run(s) in {}", runs.len(), args.store.display()),
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// queue subcommands (the campaign execution service)

const QUEUE_USAGE: &str = "\
usage: latest queue <command> [options]

The campaign execution service: a persistent job queue, a bounded worker
pool, and a content-addressed result cache. Submissions of the same spec
coalesce onto one execution; archived runs are served without
recomputation; a killed service resumes every in-flight job from its
checkpoint on restart.

commands:
  submit <spec.json> [--priority P] [--force]
                       enqueue a campaign or fleet scenario
  serve [--workers N] [--drain] [--store <dir>] [--checkpoint-every N]
        [--poll-ms M] [--stats-out <file>] [--shard-pairs N]
        [--log-max-bytes B] [--virtual-clock]
                       run the worker pool; --drain exits once the queue
                       is empty, otherwise new submissions are polled for.
                       Claimed jobs shard into work units of --shard-pairs
                       pairs (default: sized so one job spans the pool)
                       that spread across every worker. events.log rotates
                       to events.log.1 at --log-max-bytes (default 8 MiB,
                       0 = unbounded); --virtual-clock times telemetry on
                       a deterministic tick clock (pair with --workers 1
                       for bitwise-reproducible snapshots)
  status [<job-id>]    show job states; exits 0 only when all jobs are
                       done, 1 on failures/cancellations, 3 while pending
  stats [--json|--csv] per-stage service latency (p50/p90/p99/max) from
                       the last drain's telemetry snapshot
  cancel <job-id>      cancel a queued or running job
  watch                stream the multiplexed event feed until the queue
                       settles (follows events.log across rotations)

common options:
  --dir <dir>          the queue directory                    [latest-queue]
";

fn queue_fail(msg: &str) -> ExitCode {
    if msg.is_empty() {
        print!("{QUEUE_USAGE}");
        return ExitCode::SUCCESS;
    }
    eprintln!("error: {msg}\n\n{QUEUE_USAGE}");
    ExitCode::from(2)
}

#[derive(Default)]
struct QueueArgs {
    positionals: Vec<String>,
    dir: Option<PathBuf>,
    workers: Option<usize>,
    drain: bool,
    store: Option<PathBuf>,
    checkpoint_every: Option<usize>,
    poll_ms: Option<u64>,
    stats_out: Option<PathBuf>,
    priority: i32,
    force: bool,
    shard_pairs: Option<usize>,
    log_max_bytes: Option<u64>,
    virtual_clock: bool,
    json: bool,
    csv: bool,
}

impl QueueArgs {
    fn dir(&self) -> PathBuf {
        self.dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("latest-queue"))
    }
}

fn parse_queue_args(raw: &[String]) -> Result<QueueArgs, String> {
    let mut out = QueueArgs::default();
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--dir" => out.dir = Some(PathBuf::from(value("--dir")?)),
            "--workers" => {
                out.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                )
            }
            "--drain" => out.drain = true,
            "--store" => out.store = Some(PathBuf::from(value("--store")?)),
            "--checkpoint-every" => {
                out.checkpoint_every = Some(
                    value("--checkpoint-every")?
                        .parse()
                        .map_err(|e| format!("--checkpoint-every: {e}"))?,
                )
            }
            "--poll-ms" => {
                out.poll_ms = Some(
                    value("--poll-ms")?
                        .parse()
                        .map_err(|e| format!("--poll-ms: {e}"))?,
                )
            }
            "--stats-out" => out.stats_out = Some(PathBuf::from(value("--stats-out")?)),
            "--shard-pairs" => {
                out.shard_pairs = Some(
                    value("--shard-pairs")?
                        .parse::<usize>()
                        .map_err(|e| format!("--shard-pairs: {e}"))?
                        .max(1),
                )
            }
            "--priority" => {
                out.priority = value("--priority")?
                    .parse()
                    .map_err(|e| format!("--priority: {e}"))?
            }
            "--force" => out.force = true,
            "--log-max-bytes" => {
                out.log_max_bytes = Some(
                    value("--log-max-bytes")?
                        .parse()
                        .map_err(|e| format!("--log-max-bytes: {e}"))?,
                )
            }
            "--virtual-clock" => out.virtual_clock = true,
            "--json" => out.json = true,
            "--csv" => out.csv = true,
            other if other.starts_with('-') => return Err(format!("unknown option {other}")),
            positional => out.positionals.push(positional.to_string()),
        }
    }
    Ok(out)
}

fn queue_submit(raw: &[String]) -> ExitCode {
    let args = match parse_queue_args(raw) {
        Ok(a) => a,
        Err(msg) => return queue_fail(&msg),
    };
    let [path] = args.positionals.as_slice() else {
        return queue_fail("submit takes exactly one scenario file");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let spec = match ScenarioSpec::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: parsing {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let submit = JobQueue::open(args.dir()).and_then(|q| {
        q.submit(
            spec,
            SubmitOptions {
                priority: args.priority,
                force: args.force,
            },
        )
    });
    match submit {
        Ok(job) => {
            println!("{}", job.id);
            eprintln!(
                "queued {} ({}, key {}, priority {}{})",
                job.id,
                job.describe(),
                job.key(),
                job.priority,
                if job.force { ", forced" } else { "" }
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn queue_serve(raw: &[String]) -> ExitCode {
    let args = match parse_queue_args(raw) {
        Ok(a) => a,
        Err(msg) => return queue_fail(&msg),
    };
    if !args.positionals.is_empty() {
        return queue_fail("serve takes no positional arguments");
    }
    // --virtual-clock: per-thread deterministic tick clocks in place of
    // monotonic time, so two drains of the same scenario (with
    // --workers 1) persist bitwise-identical telemetry snapshots.
    let clock = if args.virtual_clock {
        ClockSpec::Ticks { tick_ns: 100_000 }
    } else {
        ClockSpec::Monotonic
    };
    let config = PoolConfig {
        workers: args.workers.unwrap_or(2),
        checkpoint_every: args.checkpoint_every.unwrap_or(1),
        poll_interval: std::time::Duration::from_millis(args.poll_ms.unwrap_or(50)),
        store_dir: args.store.clone(),
        shard_pairs: args.shard_pairs.unwrap_or(0),
        clock,
        ..PoolConfig::default()
    };
    let dir = args.dir();
    let pool = match WorkerPool::open(&dir, config) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: opening queue {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "serving {} with {} worker(s); archive at {}",
        dir.display(),
        args.workers.unwrap_or(2),
        pool.store().root().display()
    );

    // Event feed: every line goes to stderr and to the size-capped,
    // rotating events.log that `queue watch` replays, with per-campaign
    // elapsed/ETA progress rendering (the same formatter `latest run
    // --progress` uses).
    let log_path = pool.queue().events_log_path();
    let log = EventLog::open(
        &log_path,
        pool.queue().rotated_events_log_path(),
        args.log_max_bytes.unwrap_or(8 * 1024 * 1024),
    );
    let log = match log {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: opening {}: {e}", log_path.display());
            return ExitCode::from(2);
        }
    };
    // One formatter per *job* (not per member): the `Planned` event seeds
    // the job-wide pair total, so fleet jobs get one done/total counter
    // and ETA spanning every member's shards. Under --virtual-clock the
    // formatters read the same deterministic tick time as the telemetry.
    let formatters =
        std::sync::Mutex::new(std::collections::HashMap::<JobId, ProgressFormatter>::new());
    let pool = pool.observe(move |e: &QueueEvent| {
        let line = match e {
            QueueEvent::Planned { job, pairs, .. } => {
                let mut fmts = formatters.lock().unwrap();
                let fmt = fmts.entry(*job).or_default();
                *fmt = ProgressFormatter::with_clock(clock.clock());
                fmt.seed_totals(*pairs);
                e.to_string()
            }
            QueueEvent::Progress { job, member, event } => {
                let mut fmts = formatters.lock().unwrap();
                let fmt = fmts.entry(*job).or_default();
                format!("{job}[m{member}] {}", fmt.line(event))
            }
            other => other.to_string(),
        };
        eprintln!("{line}");
        let _ = log.append_line(&line);
    });

    let outcome = if args.drain {
        pool.drain()
    } else {
        pool.serve()
    };
    match outcome {
        Ok(stats) => {
            eprintln!("{stats}");
            if let Some(path) = &args.stats_out {
                let json = stats.to_json();
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("error: writing {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn queue_status(raw: &[String]) -> ExitCode {
    let args = match parse_queue_args(raw) {
        Ok(a) => a,
        Err(msg) => return queue_fail(&msg),
    };
    let queue = match JobQueue::open(args.dir()) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("error: opening queue: {e}");
            return ExitCode::from(2);
        }
    };
    let jobs = match args.positionals.as_slice() {
        [] => match queue.jobs() {
            Ok(jobs) => jobs,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
        [id] => {
            let job = JobId::parse(id).and_then(|id| queue.load(id));
            match job {
                Ok(job) => vec![job],
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        _ => return queue_fail("status takes at most one job id"),
    };
    let mut table = TextTable::with_header(&["job", "priority", "state", "work", "detail"]);
    for job in &jobs {
        // A pending job with a journaled shard ledger (running, or
        // requeued mid-flight by a shutdown) shows its progress inline.
        let detail = match &job.ledger {
            Some(ledger) if job.state.is_pending() => {
                format!("{} — {}", job.state, ledger.summary())
            }
            _ => job.state.to_string(),
        };
        table.row(&[
            job.id.to_string(),
            job.priority.to_string(),
            job.state.label().to_string(),
            job.describe(),
            detail,
        ]);
    }
    println!("{}", table.render());
    let pending = jobs.iter().filter(|j| j.state.is_pending()).count();
    let unhappy = jobs
        .iter()
        .filter(|j| matches!(j.state, JobState::Failed { .. } | JobState::Cancelled))
        .count();
    eprintln!(
        "{} job(s): {} settled, {} pending, {} failed/cancelled",
        jobs.len(),
        jobs.len() - pending - unhappy,
        pending,
        unhappy
    );
    // Service latency one-liner from the last drain's persisted
    // telemetry snapshot (queue wait = submit-to-claim, turnaround =
    // claim-to-settled); `queue stats` has the full per-stage table.
    if let Ok(text) = std::fs::read_to_string(queue.telemetry_path()) {
        if let Ok(snapshot) = TelemetrySnapshot::from_json(&text) {
            let wait = snapshot.stage(Stage::QueueWait);
            let turn = snapshot.stage(Stage::SettleLatency);
            eprintln!(
                "last drain: queue-wait n={} p50={} p99={}; turnaround n={} p50={} p99={}",
                wait.count(),
                human_ns(wait.quantile(0.50)),
                human_ns(wait.quantile(0.99)),
                turn.count(),
                human_ns(turn.quantile(0.50)),
                human_ns(turn.quantile(0.99)),
            );
        }
    }
    if unhappy > 0 {
        ExitCode::FAILURE
    } else if pending > 0 {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    }
}

/// Human-readable duration for an optional nanosecond quantile.
fn human_ns(ns: Option<u64>) -> String {
    match ns {
        None => "-".to_string(),
        Some(ns) if ns < 1_000 => format!("{ns}ns"),
        Some(ns) if ns < 1_000_000 => format!("{:.1}us", ns as f64 / 1e3),
        Some(ns) if ns < 1_000_000_000 => format!("{:.2}ms", ns as f64 / 1e6),
        Some(ns) => format!("{:.2}s", ns as f64 / 1e9),
    }
}

fn queue_stats(raw: &[String]) -> ExitCode {
    let args = match parse_queue_args(raw) {
        Ok(a) => a,
        Err(msg) => return queue_fail(&msg),
    };
    if !args.positionals.is_empty() {
        return queue_fail("stats takes no positional arguments");
    }
    let queue = match JobQueue::open(args.dir()) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("error: opening queue: {e}");
            return ExitCode::from(2);
        }
    };
    let path = queue.telemetry_path();
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "error: no telemetry snapshot at {} ({e}); run `latest queue serve` first",
                path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let snapshot = match TelemetrySnapshot::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: parsing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let format = if args.json {
        Format::Json
    } else if args.csv {
        Format::Csv
    } else {
        Format::Text
    };
    match render_to_string(&stage_latency_table(&snapshot), format) {
        Ok(rendered) => {
            print!("{rendered}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: rendering telemetry: {e}");
            ExitCode::from(2)
        }
    }
}

fn queue_cancel(raw: &[String]) -> ExitCode {
    let args = match parse_queue_args(raw) {
        Ok(a) => a,
        Err(msg) => return queue_fail(&msg),
    };
    let [id] = args.positionals.as_slice() else {
        return queue_fail("cancel takes exactly one job id");
    };
    let outcome = JobId::parse(id)
        .and_then(|id| JobQueue::open(args.dir()).map(|q| (q, id)))
        .and_then(|(q, id)| q.request_cancel(id).map(|accepted| (id, accepted)));
    match outcome {
        Ok((id, true)) => {
            eprintln!("cancellation requested for {id}");
            ExitCode::SUCCESS
        }
        Ok((id, false)) => {
            eprintln!("error: {id} has already settled");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn queue_watch(raw: &[String]) -> ExitCode {
    let args = match parse_queue_args(raw) {
        Ok(a) => a,
        Err(msg) => return queue_fail(&msg),
    };
    if !args.positionals.is_empty() {
        return queue_fail("watch takes no positional arguments");
    }
    let queue = match JobQueue::open(args.dir()) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("error: opening queue: {e}");
            return ExitCode::from(2);
        }
    };
    // Tail incrementally, following rotations: the EventTail reads only
    // the bytes appended since the last poll, and when serve rotates
    // events.log to events.log.1 mid-watch it finishes the rotated
    // generation before continuing at the top of the new file.
    let mut tail = EventTail::new(queue.events_log_path(), queue.rotated_events_log_path());
    let poll = std::time::Duration::from_millis(args.poll_ms.unwrap_or(200));
    loop {
        match tail.poll() {
            Ok(lines) => {
                for line in lines {
                    println!("{line}");
                }
            }
            Err(e) => {
                eprintln!("error: tailing event log: {e}");
                return ExitCode::from(2);
            }
        }
        match queue.counts() {
            Ok(counts) if counts.pending() == 0 => {
                eprintln!(
                    "queue settled: {} done, {} failed, {} cancelled",
                    counts.done, counts.failed, counts.cancelled
                );
                return ExitCode::SUCCESS;
            }
            Ok(_) => {}
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
        std::thread::sleep(poll);
    }
}

fn cmd_queue(raw: &[String]) -> ExitCode {
    match raw.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => queue_fail(""),
        Some("submit") => queue_submit(&raw[1..]),
        Some("serve") => queue_serve(&raw[1..]),
        Some("status") => queue_status(&raw[1..]),
        Some("stats") => queue_stats(&raw[1..]),
        Some("cancel") => queue_cancel(&raw[1..]),
        Some("watch") => queue_watch(&raw[1..]),
        Some(other) => queue_fail(&format!("unknown queue command {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// govern subcommands (closed-loop policy scoring)

const GOVERN_USAGE: &str = "\
usage: latest govern <command> [options]

Close the measurement loop: run governor policies over synthetic traffic on
a simulated device whose every frequency switch pays a latency replayed
from a measured, archived campaign. Requests arriving mid-switch stall —
the paper's overhead made end-to-end observable.

commands:
  run <traffic>... (--table <run-id|spec.json> | --predicted <model.json>)
                       score policies over traffic scenarios; each
                       <traffic> is a built-in name (see list-traffic) or
                       a traffic-spec JSON file
  list-policies        enumerate the daemon policies
  list-traffic         enumerate the built-in traffic scenarios
  help                 print this message

run options:
  --table <target>     archived run id (unambiguous prefix) or campaign
                       scenario file whose archived run supplies the
                       latency table
  --predicted <model.json>
                       supply the latency table from a fitted prediction
                       model instead (`latest predict fit`): every grid
                       pair whose confidence interval passes the gate is
                       accepted, the rest stay unknown to the policies
  --gate <fraction>    --predicted: max accepted interval width relative
                       to the estimate                        [0.5]
  --freqs <f,f,...>    --predicted: frequency set to tabulate  [model grid]
  --store <dir>        the result store to read               [latest-store]
  --policy <name>      score this policy; repeatable          [all policies]
  --compare            score every policy (the default when no --policy)
  --seed <u64>         base seed for the latency replay       [0]
  --out <dir>          write the scorecard bundle (comparison table +
                       missed-rate/energy heatmaps, all formats) here
  --json               emit the scorecards as JSON on stdout

Determinism: the same traffic specs, the same table (archived or
predicted) and the same --seed give bitwise-identical scorecards,
independent of cell order.
";

fn govern_fail(msg: &str) -> ExitCode {
    if msg.is_empty() {
        print!("{GOVERN_USAGE}");
        return ExitCode::SUCCESS;
    }
    eprintln!("error: {msg}\n\n{GOVERN_USAGE}");
    ExitCode::from(2)
}

#[derive(Default)]
struct GovernArgs {
    traffics: Vec<String>,
    table: Option<String>,
    predicted: Option<PathBuf>,
    gate: Option<f64>,
    freqs: Option<Vec<u32>>,
    store: Option<PathBuf>,
    policies: Vec<String>,
    compare: bool,
    seed: u64,
    out: Option<PathBuf>,
    json: bool,
}

fn parse_govern_args(raw: &[String]) -> Result<GovernArgs, String> {
    let mut out = GovernArgs::default();
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--table" => out.table = Some(value("--table")?),
            "--predicted" => out.predicted = Some(PathBuf::from(value("--predicted")?)),
            "--gate" => {
                let gate: f64 = value("--gate")?
                    .parse()
                    .map_err(|e| format!("--gate: {e}"))?;
                if gate.is_nan() || gate < 0.0 {
                    return Err(format!("--gate must be non-negative, got {gate}"));
                }
                out.gate = Some(gate);
            }
            "--freqs" => out.freqs = Some(parse_freq_list(&value("--freqs")?)?),
            "--store" => out.store = Some(PathBuf::from(value("--store")?)),
            "--policy" => out.policies.push(value("--policy")?),
            "--compare" => out.compare = true,
            "--seed" => {
                out.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--out" => out.out = Some(PathBuf::from(value("--out")?)),
            "--json" => out.json = true,
            other if other.starts_with('-') => return Err(format!("unknown option {other}")),
            positional => out.traffics.push(positional.to_string()),
        }
    }
    Ok(out)
}

/// Resolve one traffic argument: a built-in scenario name, or a path to a
/// traffic-spec JSON file.
fn resolve_traffic(registry: &TrafficRegistry, target: &str) -> Result<TrafficSpec, String> {
    if let Some(spec) = registry.get(target) {
        return Ok(spec.clone());
    }
    if target.ends_with(".json") || Path::new(target).is_file() {
        let text = std::fs::read_to_string(target).map_err(|e| format!("reading {target}: {e}"))?;
        let spec = TrafficSpec::from_json(&text).map_err(|e| format!("parsing {target}: {e}"))?;
        spec.validate().map_err(|e| format!("{target}: {e}"))?;
        return Ok(spec);
    }
    Err(format!(
        "unknown traffic `{target}`: not a built-in scenario ({}) and not a file",
        registry.names().join(", ")
    ))
}

fn govern_run(raw: &[String]) -> ExitCode {
    let args = match parse_govern_args(raw) {
        Ok(a) => a,
        Err(msg) => return govern_fail(&msg),
    };
    if args.traffics.is_empty() {
        return govern_fail("govern run takes at least one traffic scenario");
    }
    if args.predicted.is_none() && (args.gate.is_some() || args.freqs.is_some()) {
        return govern_fail("--gate and --freqs only apply with --predicted");
    }
    let (table, table_label) = match (&args.table, &args.predicted) {
        (Some(_), Some(_)) => return govern_fail("--table and --predicted are mutually exclusive"),
        (None, None) => {
            return govern_fail(
                "one of --table <run-id|spec.json> or --predicted <model.json> is required",
            )
        }
        (Some(table_target), None) => {
            let store_dir = args
                .store
                .clone()
                .unwrap_or_else(|| PathBuf::from("latest-store"));
            let store = match ResultStore::open(&store_dir) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: opening store: {e}");
                    return ExitCode::from(2);
                }
            };
            let run = match resolve_stored_run(&store, table_target) {
                Ok(r) => r,
                Err(msg) => {
                    eprintln!("error: {msg}");
                    return ExitCode::from(2);
                }
            };
            let (table, skipped) = LatencyTable::from_campaign_counting(&run.result);
            if !skipped.is_empty() {
                eprintln!("note: {} ({})", skipped, run.run_id);
            }
            (table, run.run_id.to_string())
        }
        (None, Some(model_path)) => {
            let text = match std::fs::read_to_string(model_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: reading {}: {e}", model_path.display());
                    return ExitCode::from(2);
                }
            };
            let model = match PredictModel::from_json(&text) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("error: {}: {e}", model_path.display());
                    return ExitCode::from(2);
                }
            };
            let freqs = args
                .freqs
                .clone()
                .unwrap_or_else(|| model.grid_freqs_mhz.clone());
            let gate = args.gate.unwrap_or(0.5);
            let predicted = PredictedTable::over(&model, &freqs, gate);
            let rejected = predicted.rejected_pairs().len();
            if rejected > 0 {
                eprintln!(
                    "note: {rejected} low-confidence pair(s) rejected by the gate ({gate}); \
                     they stay unknown to the policies"
                );
            }
            (
                predicted.to_latency_table(),
                format!("predicted:{}", model_path.display()),
            )
        }
    };
    let Some(ladder) = ZoneLadder::from_table(&table) else {
        eprintln!("error: {table_label} yields an empty latency table");
        return ExitCode::from(2);
    };

    let policy_names: Vec<String> = if args.policies.is_empty() || args.compare {
        POLICY_NAMES.iter().map(|s| s.to_string()).collect()
    } else {
        args.policies.clone()
    };
    let mut policies = Vec::new();
    for name in &policy_names {
        match make_policy(name, &table) {
            Ok(p) => policies.push(p),
            Err(msg) => return govern_fail(&msg),
        }
    }

    let registry = TrafficRegistry::builtin();
    let mut traces = Vec::new();
    for target in &args.traffics {
        let spec = match resolve_traffic(&registry, target) {
            Ok(s) => s,
            Err(msg) => return govern_fail(&msg),
        };
        match spec.generate() {
            Ok(trace) => traces.push(trace),
            Err(e) => return govern_fail(&format!("{target}: {e}")),
        }
    }

    let daemon = GovernorDaemon::new(DaemonConfig::default(), PowerModel::sxm_class(ladder.max()));
    let mut cards: Vec<Scorecard> = Vec::new();
    for trace in &traces {
        for policy in &policies {
            let seed = replay_seed(args.seed, policy.name(), &trace.name);
            let mut replay = TransitionReplay::new(table.clone(), seed);
            cards.push(daemon.run(policy.as_ref(), trace, &mut replay, seed));
        }
    }

    let rows: Vec<PolicyScoreRow> = cards
        .iter()
        .map(|c| PolicyScoreRow {
            policy: c.policy.clone(),
            traffic: c.traffic.clone(),
            requests: c.requests,
            with_deadline: c.with_deadline,
            missed_deadlines: c.missed_deadlines,
            p50_ms: c.p50_latency_ms,
            p99_ms: c.p99_latency_ms,
            energy_j: c.energy_j,
            switches: c.switches,
            time_in_switch_ms: c.time_in_switch_ms,
        })
        .collect();

    if args.json {
        println!("{}", scorecards_to_json(&cards));
    } else {
        println!("{}", policy_scorecard_table(&rows).render());
        eprintln!(
            "scored {} policies x {} traffic scenarios against table {} ({} pairs, device {})",
            policies.len(),
            traces.len(),
            table_label,
            table.len(),
            table.device_name
        );
    }

    if let Some(out_dir) = &args.out {
        let mut bundle = Bundle::new();
        bundle.add("scorecard_table", policy_scorecard_table(&rows));
        bundle.add("missed_rate", missed_rate_heatmap(&rows));
        bundle.add("energy", energy_heatmap(&rows));
        bundle.add_file("scorecards.json", scorecards_to_json(&cards));
        match bundle.write_to(out_dir) {
            Ok(written) => {
                eprintln!("wrote {} files to {}", written.len(), out_dir.display());
            }
            Err(e) => {
                eprintln!("error: writing bundle: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn govern_list_policies() -> ExitCode {
    let mut table = TextTable::with_header(&["policy", "behaviour"]);
    table.row(&[
        "run-at-max".to_string(),
        "pin the ladder ceiling; never switch".to_string(),
    ]);
    table.row(&[
        "latency-oblivious".to_string(),
        "chase the load zone at every change, as if switches were free".to_string(),
    ]);
    table.row(&[
        "latency-aware".to_string(),
        "switch only when the measured cost amortises; detour pathological pairs".to_string(),
    ]);
    println!("{}", table.render());
    ExitCode::SUCCESS
}

fn govern_list_traffic() -> ExitCode {
    let registry = TrafficRegistry::builtin();
    let mut table = TextTable::with_header(&["name", "shape", "duration ms", "description"]);
    for spec in registry.specs() {
        table.row(&[
            spec.name.clone(),
            spec.shape.kind().to_string(),
            format!("{:.0}", spec.duration_ms),
            spec.description.clone(),
        ]);
    }
    println!("{}", table.render());
    ExitCode::SUCCESS
}

fn cmd_govern(raw: &[String]) -> ExitCode {
    match raw.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => govern_fail(""),
        Some("run") => govern_run(&raw[1..]),
        Some("list-policies") => govern_list_policies(),
        Some("list-traffic") => govern_list_traffic(),
        Some(other) => govern_fail(&format!("unknown govern command {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// predict subcommands (the prediction service)

const PREDICT_USAGE: &str = "\
usage: latest predict <command> [options]

The prediction service: fit per-device latency models over the result
archive and serve pairs nobody measured. A model answers from a cascade —
exact lookup on measured grid cells, bilinear interpolation between them,
robust log-space regression beyond the grid — and every answer carries a
confidence interval from the fit residuals. Fitting is deterministic: the
same archive produces bitwise-identical model JSON.

commands:
  fit [options]        fit one model per archived device and write
                       <device>.model.json into the output directory
  query <model.json> [<init,target>...] [options]
                       answer pair queries from a fitted model; with
                       --queue, low-confidence pairs are resubmitted to
                       the measurement service as one follow-up campaign
  validate [options]   k-fold held-out validation over the archive, or
                       closed-loop validation against simulator ground
                       truth with --closed-loop
  help                 print this message

fit options:
  --store <dir>        the result store to read               [latest-store]
  --device <name>      fit only this device
  --family <prefix>    train only on runs in this experiment family
  --out <dir>          model output directory                 [predict-models]

query options:
  --gate <fraction>    max accepted interval width relative to the
                       estimate                               [0.5]
  --batch <file.json>  add pairs from {\"pairs\": [[init, target], ...]}
  --freqs <f,f,...>    predict every ordered pair over this frequency set
                       instead, and print the confidence-gated table
  --queue <dir>        submit low-confidence pairs to this job queue as
                       one follow-up campaign (requires --spec)
  --spec <file.json>   template campaign spec for the follow-up
  --json               emit the batch outcome / table as JSON

validate options:
  --store <dir>        the result store to read               [latest-store]
  --device <name>      validate only this device              [all devices]
  --family <prefix>    restrict to this experiment family
  --folds <k>          cross-validation folds                 [5]
  --closed-loop        replay every grid pair on a fresh simulated device
                       and compare predictions to recorded ground truth
  --reps <n>           closed-loop replays per pair           [3]
  --seed <u64>         closed-loop replay seed                [0]
  --out <dir>          write scatter / error-heatmap artifacts here
  --json               emit the validation report(s) as JSON on stdout
";

fn predict_fail(msg: &str) -> ExitCode {
    if msg.is_empty() {
        print!("{PREDICT_USAGE}");
        return ExitCode::SUCCESS;
    }
    eprintln!("error: {msg}\n\n{PREDICT_USAGE}");
    ExitCode::from(2)
}

struct PredictArgs {
    positionals: Vec<String>,
    store: PathBuf,
    device: Option<String>,
    family: Option<String>,
    out: Option<PathBuf>,
    gate: f64,
    batch: Option<PathBuf>,
    freqs: Option<Vec<u32>>,
    queue: Option<PathBuf>,
    spec: Option<PathBuf>,
    folds: usize,
    closed_loop: bool,
    reps: u32,
    seed: u64,
    json: bool,
}

fn parse_predict_args(raw: &[String]) -> Result<PredictArgs, String> {
    let mut out = PredictArgs {
        positionals: Vec::new(),
        store: PathBuf::from("latest-store"),
        device: None,
        family: None,
        out: None,
        gate: 0.5,
        batch: None,
        freqs: None,
        queue: None,
        spec: None,
        folds: 5,
        closed_loop: false,
        reps: 3,
        seed: 0,
        json: false,
    };
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--store" => out.store = PathBuf::from(value("--store")?),
            "--device" => out.device = Some(value("--device")?),
            "--family" => out.family = Some(value("--family")?),
            "--out" => out.out = Some(PathBuf::from(value("--out")?)),
            "--gate" => {
                out.gate = value("--gate")?
                    .parse()
                    .map_err(|e| format!("--gate: {e}"))?;
                if out.gate.is_nan() || out.gate < 0.0 {
                    return Err(format!("--gate must be non-negative, got {}", out.gate));
                }
            }
            "--batch" => out.batch = Some(PathBuf::from(value("--batch")?)),
            "--freqs" => out.freqs = Some(parse_freq_list(&value("--freqs")?)?),
            "--queue" => out.queue = Some(PathBuf::from(value("--queue")?)),
            "--spec" => out.spec = Some(PathBuf::from(value("--spec")?)),
            "--folds" => {
                out.folds = value("--folds")?
                    .parse()
                    .map_err(|e| format!("--folds: {e}"))?
            }
            "--closed-loop" => out.closed_loop = true,
            "--reps" => {
                out.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?
            }
            "--seed" => {
                out.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--json" => out.json = true,
            other if other.starts_with('-') => return Err(format!("unknown option {other}")),
            positional => out.positionals.push(positional.to_string()),
        }
    }
    Ok(out)
}

/// The per-device corpora selected by the `--device` / `--family` filters.
fn predict_corpora(args: &PredictArgs) -> Result<Vec<latest::predict::Corpus>, String> {
    let store = ResultStore::open(&args.store)
        .map_err(|e| format!("opening {}: {e}", args.store.display()))?;
    match &args.device {
        Some(device) => corpus_for_device(&store, device, args.family.as_deref())
            .map(|c| vec![c])
            .map_err(|e| e.to_string()),
        None => {
            let corpora =
                build_corpora(&store, args.family.as_deref()).map_err(|e| e.to_string())?;
            if corpora.is_empty() {
                return Err(format!(
                    "the archive at {} holds no runs matching the filter",
                    args.store.display()
                ));
            }
            Ok(corpora)
        }
    }
}

fn predict_fit(raw: &[String]) -> ExitCode {
    let args = match parse_predict_args(raw) {
        Ok(a) => a,
        Err(msg) => return predict_fail(&msg),
    };
    if !args.positionals.is_empty() {
        return predict_fail("predict fit takes no positional arguments");
    }
    let corpora = match predict_corpora(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let out_dir = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("predict-models"));
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("error: creating {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    for corpus in &corpora {
        let model = match PredictModel::fit(corpus) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("error: fitting {}: {e}", corpus.device);
                return ExitCode::FAILURE;
            }
        };
        let path = out_dir.join(format!("{}.model.json", corpus.device));
        if let Err(e) = std::fs::write(&path, model.to_json()) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "fitted {}: {} pairs / {} samples from {} run(s), {} features -> {}",
            corpus.device,
            model.trained_pairs,
            model.training_samples,
            corpus.runs,
            model.feature_set,
            path.display()
        );
    }
    ExitCode::SUCCESS
}

/// Render served predictions as an aligned table.
fn predicted_pairs_table(pairs: &[latest::predict::PredictedPair]) -> TextTable {
    let mut table = TextTable::with_header(&[
        "init MHz",
        "target MHz",
        "latency ms",
        "lo ms",
        "hi ms",
        "source",
        "accepted",
    ]);
    for p in pairs {
        table.row(&[
            p.init_mhz.to_string(),
            p.target_mhz.to_string(),
            format!("{:.4}", p.value_ms),
            format!("{:.4}", p.lo_ms),
            format!("{:.4}", p.hi_ms),
            p.source.clone(),
            if p.accepted { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table
}

fn predict_query(raw: &[String]) -> ExitCode {
    let args = match parse_predict_args(raw) {
        Ok(a) => a,
        Err(msg) => return predict_fail(&msg),
    };
    let Some((model_path, pair_args)) = args.positionals.split_first() else {
        return predict_fail("predict query takes a model file first");
    };
    let text = match std::fs::read_to_string(model_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading {model_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let model = match PredictModel::from_json(&text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {model_path}: {e}");
            return ExitCode::from(2);
        }
    };

    // Table mode: every ordered pair over a frequency set.
    if let Some(freqs) = &args.freqs {
        if !pair_args.is_empty() || args.batch.is_some() {
            return predict_fail("--freqs replaces explicit pairs; give one or the other");
        }
        let table = PredictedTable::over(&model, freqs, args.gate);
        if args.json {
            print!("{}", table.to_json());
        } else {
            println!("{}", predicted_pairs_table(&table.entries).render());
            eprintln!(
                "{} of {} pair(s) accepted at gate {} (device {})",
                table.accepted().count(),
                table.entries.len(),
                args.gate,
                table.device
            );
        }
        return ExitCode::SUCCESS;
    }

    // Batch mode: explicit pairs from the command line and/or a batch file.
    let mut pairs = Vec::new();
    for arg in pair_args {
        match parse_freq_list(arg).as_deref() {
            Ok([init, target]) => pairs.push((*init, *target)),
            _ => return predict_fail(&format!("bad pair {arg:?}: expected <init,target>")),
        }
    }
    if let Some(batch_path) = &args.batch {
        let text = match std::fs::read_to_string(batch_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: reading {}: {e}", batch_path.display());
                return ExitCode::from(2);
            }
        };
        match parse_batch_pairs(&text) {
            Ok(batch) => pairs.extend(batch),
            Err(e) => {
                eprintln!("error: {}: {e}", batch_path.display());
                return ExitCode::from(2);
            }
        }
    }
    if pairs.is_empty() {
        return predict_fail("predict query needs pairs (positional <init,target> or --batch)");
    }

    let queue;
    let template;
    let mut follow_up = None;
    match (&args.queue, &args.spec) {
        (Some(queue_dir), Some(spec_path)) => {
            queue = match JobQueue::open(queue_dir) {
                Ok(q) => q,
                Err(e) => {
                    eprintln!("error: opening queue {}: {e}", queue_dir.display());
                    return ExitCode::from(2);
                }
            };
            let text = match std::fs::read_to_string(spec_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: reading {}: {e}", spec_path.display());
                    return ExitCode::from(2);
                }
            };
            template = match ScenarioSpec::from_json(&text) {
                Ok(ScenarioSpec::Campaign(spec)) => spec,
                Ok(ScenarioSpec::Fleet(_)) => {
                    eprintln!(
                        "error: {} is a fleet spec; the follow-up template must be a campaign",
                        spec_path.display()
                    );
                    return ExitCode::from(2);
                }
                Err(e) => {
                    eprintln!("error: parsing {}: {e}", spec_path.display());
                    return ExitCode::from(2);
                }
            };
            follow_up = Some((&queue, &template));
        }
        (None, None) => {}
        _ => return predict_fail("--queue and --spec go together"),
    }
    let outcome = match serve_batch(&model, &pairs, args.gate, follow_up) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if args.json {
        print!("{}", outcome.to_json());
    } else {
        println!("{}", predicted_pairs_table(&outcome.answers).render());
        if !outcome.low_confidence.is_empty() {
            eprintln!(
                "{} low-confidence pair(s) at gate {}",
                outcome.low_confidence.len(),
                args.gate
            );
        }
        if let Some(job) = &outcome.submitted_job {
            eprintln!("submitted follow-up measurement campaign as {job}");
        }
    }
    ExitCode::SUCCESS
}

fn predict_validate(raw: &[String]) -> ExitCode {
    let args = match parse_predict_args(raw) {
        Ok(a) => a,
        Err(msg) => return predict_fail(&msg),
    };
    if !args.positionals.is_empty() {
        return predict_fail("predict validate takes no positional arguments");
    }
    let corpora = match predict_corpora(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };

    if args.closed_loop {
        return predict_validate_closed_loop(&args, &corpora);
    }

    let mut reports = Vec::new();
    for corpus in &corpora {
        match cross_validate(corpus, args.folds) {
            Ok(r) => reports.push(r),
            Err(e) => {
                eprintln!("error: validating {}: {e}", corpus.device);
                return ExitCode::from(2);
            }
        }
    }
    if args.json {
        if let [report] = reports.as_slice() {
            print!("{}", report.to_json());
        } else {
            let mut text = serde_json::to_string_pretty(&reports).expect("reports serialise");
            text.push('\n');
            print!("{text}");
        }
    } else {
        let mut table = TextTable::with_header(&[
            "device", "folds", "pairs", "MAE ms", "MAPE", "RMSE ms", "coverage",
        ]);
        for r in &reports {
            table.row(&[
                r.device.clone(),
                r.folds.to_string(),
                r.rows.len().to_string(),
                format!("{:.4}", r.mae_ms),
                format!("{:.4}", r.mape),
                format!("{:.4}", r.rmse_ms),
                format!("{:.2}", r.coverage),
            ]);
        }
        println!("{}", table.render());
    }
    if let Some(out_dir) = &args.out {
        let mut bundle = Bundle::new();
        for report in &reports {
            bundle.add(
                format!("{}_held_out_scatter", report.device),
                report.scatter(),
            );
            bundle.add(
                format!("{}_held_out_error", report.device),
                report.error_heatmap(),
            );
            bundle.add_file(format!("{}_held_out.json", report.device), report.to_json());
        }
        match bundle.write_to(out_dir) {
            Ok(written) => eprintln!("wrote {} files to {}", written.len(), out_dir.display()),
            Err(e) => {
                eprintln!("error: writing bundle: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn predict_validate_closed_loop(
    args: &PredictArgs,
    corpora: &[latest::predict::Corpus],
) -> ExitCode {
    let registry = DeviceRegistry::builtin();
    let mut reports = Vec::new();
    for corpus in corpora {
        let model = match PredictModel::fit(corpus) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("error: fitting {}: {e}", corpus.device);
                return ExitCode::from(2);
            }
        };
        let Some(device) = registry.get(&corpus.device) else {
            eprintln!(
                "error: device '{}' is not in the registry; closed-loop replay needs a \
                 simulator spec",
                corpus.device
            );
            return ExitCode::from(2);
        };
        match closed_loop_validate(&model, &device, args.reps, args.seed) {
            Ok(r) => reports.push(r),
            Err(e) => {
                eprintln!("error: replaying {}: {e}", corpus.device);
                return ExitCode::from(2);
            }
        }
    }
    if args.json {
        if let [report] = reports.as_slice() {
            print!("{}", report.to_json());
        } else {
            let mut text = serde_json::to_string_pretty(&reports).expect("reports serialise");
            text.push('\n');
            print!("{text}");
        }
    } else {
        let mut table = TextTable::with_header(&["device", "reps", "pairs", "MAE ms", "MAPE"]);
        for r in &reports {
            table.row(&[
                r.device.clone(),
                r.reps.to_string(),
                r.rows.len().to_string(),
                format!("{:.4}", r.mae_ms),
                format!("{:.4}", r.mape),
            ]);
        }
        println!("{}", table.render());
    }
    if let Some(out_dir) = &args.out {
        let mut bundle = Bundle::new();
        for report in &reports {
            bundle.add(
                format!("{}_closed_loop_scatter", report.device),
                report.scatter(),
            );
            bundle.add_file(
                format!("{}_closed_loop.json", report.device),
                report.to_json(),
            );
        }
        match bundle.write_to(out_dir) {
            Ok(written) => eprintln!("wrote {} files to {}", written.len(), out_dir.display()),
            Err(e) => {
                eprintln!("error: writing bundle: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_predict(raw: &[String]) -> ExitCode {
    match raw.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => predict_fail(""),
        Some("fit") => predict_fit(&raw[1..]),
        Some("query") => predict_query(&raw[1..]),
        Some("validate") => predict_validate(&raw[1..]),
        Some(other) => predict_fail(&format!("unknown predict command {other:?}")),
    }
}

fn cmd_run(raw: &[String]) -> ExitCode {
    let args = match parse_run_args(raw) {
        Ok(a) => a,
        Err(msg) => return fail(&msg),
    };
    let scenario = match effective_spec(&args) {
        Ok(s) => s,
        Err(msg) => return fail(&msg),
    };
    // No separate validation pass: resolve()/into_fleet() below report the
    // same exhaustive SpecErrors, and run_campaign/run_fleet print them.
    match scenario {
        ScenarioSpec::Campaign(spec) => run_campaign(spec, &args),
        ScenarioSpec::Fleet(spec) => run_fleet(spec, &args),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => fail(""),
        Some("run") => cmd_run(&argv[1..]),
        Some("report") => cmd_report(&argv[1..]),
        Some("diff") => cmd_diff(&argv[1..]),
        Some("list-runs") => cmd_list_runs(&argv[1..]),
        Some("queue") => cmd_queue(&argv[1..]),
        Some("govern") => cmd_govern(&argv[1..]),
        Some("predict") => cmd_predict(&argv[1..]),
        Some("validate") => cmd_validate(&argv[1..]),
        Some("print-spec") => cmd_print_spec(&argv[1..]),
        Some("list-devices") => cmd_list_devices(),
        Some("list-workloads") => cmd_list_workloads(),
        // Legacy shorthand: `latest [OPTIONS] <freq,freq,...>` is `run`.
        Some(_) => cmd_run(&argv),
    }
}
