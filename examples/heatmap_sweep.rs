//! Full-device heatmap sweep, reproducing the Fig. 3 workflow of the paper:
//! measure every ordered pair of a frequency subset, filter outliers, and
//! render minimum (best-case) and maximum (worst-case) switching-latency
//! heatmaps with initial frequency in rows and target frequency in columns.
//!
//! ```text
//! cargo run --release --example heatmap_sweep [gh200|a100|quadro] [n_freqs]
//! ```
//!
//! The paper's key structural observation — the **target** frequency
//! dominates the latency (visible column pattern), the initial frequency is
//! second-order — is quantified at the end by comparing the variance of
//! column means against the variance of row means.

use latest::core::view::{LatencyView, PairStat};
use latest::core::{CampaignConfig, Latest};
use latest::gpu_sim::devices::{self, DeviceSpec};
use latest::report::Heatmap;

fn device_by_name(name: &str) -> DeviceSpec {
    match name {
        "gh200" => devices::gh200(),
        "a100" => devices::a100_sxm4(),
        "quadro" => devices::rtx_quadro_6000(),
        other => {
            eprintln!("unknown device '{other}' (expected gh200|a100|quadro)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let spec = device_by_name(&args.next().unwrap_or_else(|| "gh200".into()));
    let n_freqs: usize = args
        .next()
        .map(|s| s.parse().expect("n_freqs"))
        .unwrap_or(10);

    println!(
        "sweeping {} over a {}-frequency ladder subset...",
        spec.name, n_freqs
    );
    let config = CampaignConfig::builder(spec)
        .frequency_subset(n_freqs)
        .measurements(25, 60)
        .simulated_sms(Some(6))
        .seed(0xF163)
        .build();
    let freqs: Vec<u32> = config.frequencies.iter().map(|f| f.0).collect();
    let device_name = config.spec.name.clone();

    let result = Latest::new(config).run().expect("sweep failed");

    let view = LatencyView::of(&result).completed();
    for (title, stat) in [
        ("minimum (best-case)", PairStat::Min),
        ("maximum (worst-case)", PairStat::Max),
    ] {
        let hm = Heatmap::from_view(&view, &freqs, stat);
        println!(
            "\n{}",
            hm.render(
                &format!("{device_name}: {title} switching latencies [ms]"),
                true
            )
        );

        // Quantify the paper's "row pattern": target frequency dominates.
        let spread = |means: Vec<Option<f64>>| {
            let vals: Vec<f64> = means.into_iter().flatten().collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64).sqrt()
        };
        let col_spread = spread(hm.col_means()); // per-target variation
        let row_spread = spread(hm.row_means()); // per-initial variation
        println!(
            "structure: spread of per-target means {:.2} ms vs per-initial means {:.2} ms ({}x)",
            col_spread,
            row_spread,
            (col_spread / row_spread).round()
        );
    }
}
