//! The paper's motivating application, end to end: measure a GPU's
//! switching-latency table with the LATEST methodology, hand it to a DVFS
//! governor, and show what the knowledge is worth on phase-structured
//! workloads (Secs. I and VIII).
//!
//! ```text
//! cargo run --release --example dvfs_governor
//! ```
//!
//! Four policies are compared on three synthetic workload classes:
//!
//! * `run-at-max` — no DVFS (the runtime/energy reference),
//! * `static-oracle` — the best single frequency (static tuning, Sec. III),
//! * `latency-oblivious` — per-phase DVFS assuming switches are free (a
//!   CPU-derived runtime system transplanted to a GPU),
//! * `latency-aware` — per-phase DVFS that amortises the *measured*
//!   latencies and detours around pathological pairs.

use latest::core::{CampaignConfig, Latest};
use latest::governor::simulate::TransitionReplay;
use latest::governor::{
    simulate_policy, GovernorPolicy, LatencyAware, LatencyOblivious, LatencyTable, PowerModel,
    RunAtMax, StaticOracle, TraceGenerator,
};
use latest::gpu_sim::devices;
use latest::gpu_sim::freq::FreqMhz;

fn main() {
    // Step 1 — run a LATEST campaign on the simulated GH200 (the GPU with
    // pathological target columns, where latency awareness matters most).
    let spec = devices::gh200();
    let (f_min, f_max) = (spec.ladder.min(), spec.ladder.max());
    println!(
        "measuring switching latencies on {} (LATEST campaign)...",
        spec.name
    );
    let config = CampaignConfig::builder(spec)
        .frequency_subset(8)
        .measurements(25, 50)
        .simulated_sms(Some(4))
        .seed(0x60F)
        .build();
    let result = Latest::new(config).run().expect("campaign");
    let table = LatencyTable::from_campaign(&result);
    println!(
        "table: {} pairs, typical latency {:.1} ms, {} pathological pairs (>5x typical)\n",
        table.len(),
        table.typical_ms().unwrap_or(f64::NAN),
        table.avoid_list(5.0).len()
    );

    // Step 2 — the workloads the introduction motivates.
    let mut generator = TraceGenerator::new(0xBEEF);
    let traces = [
        generator.llm_training(12, 900.0),
        generator.iterative_solver(40, 120.0),
        generator.streaming_bursts(80, 25.0),
    ];

    // Step 3 — policies.
    let power = PowerModel::sxm_class(f_max);
    let candidates: Vec<FreqMhz> = table.known_targets();

    for trace in &traces {
        println!("workload: {} ({} phases)", trace.name, trace.phases.len());
        println!(
            "  {:<20} {:>12} {:>11} {:>9} {:>10} {:>12} {:>10}",
            "policy", "runtime[ms]", "energy[J]", "switches", "skipped", "saving[%]", "slower[%]"
        );

        let baseline = {
            let mut replay = TransitionReplay::new(table.clone(), 1);
            simulate_policy(&RunAtMax { f_max }, trace, &power, &mut replay, f_max)
        };
        let oracle = StaticOracle::plan(trace, &candidates, f_max, &power, 0.05);
        let policies: Vec<Box<dyn GovernorPolicy>> = vec![
            Box::new(RunAtMax { f_max }),
            Box::new(oracle),
            Box::new(LatencyOblivious { f_min, f_max }),
            Box::new(LatencyAware::new(table.clone(), f_min, f_max)),
        ];

        for policy in &policies {
            let mut replay = TransitionReplay::new(table.clone(), 1);
            let r = simulate_policy(policy.as_ref(), trace, &power, &mut replay, f_max);
            println!(
                "  {:<20} {:>12.0} {:>11.0} {:>9} {:>10} {:>12.1} {:>10.1}",
                r.policy,
                r.runtime_ms,
                r.energy_j,
                r.switches,
                r.suppressed,
                100.0 * r.energy_saving_vs(&baseline),
                100.0 * r.runtime_extension_vs(&baseline),
            );
        }
        println!();
    }

    println!("reading: dynamic DVFS beats static tuning when phases are long enough to");
    println!("amortise the measured latency; when they are not, the latency-aware governor");
    println!("suppresses the switch and avoids the oblivious policy's transition churn.");
}
