//! The Sec. VII scale comparison: CPU cores complete DVFS transitions in
//! microseconds to low milliseconds, GPUs need tens to hundreds of
//! milliseconds. Runs the FTaLaT methodology (Sec. IV) on two simulated CPU
//! models and the LATEST methodology (Sec. V) on the three simulated GPUs,
//! then prints the measured scale gap.
//!
//! ```text
//! cargo run --release --example cpu_vs_gpu
//! ```

use latest::core::{CampaignConfig, Latest};
use latest::ftalat::{
    ftalat_phase1, intel_skylake_sp, measure_transition, slow_governor_cpu, SimCpuCore,
};
use latest::gpu_sim::devices;
use latest::gpu_sim::freq::FreqMhz;
use latest::sim_clock::SharedClock;

/// FTaLaT-style tiny iteration (~1-2.5 us) so the detection granularity
/// stays far below the measured latency.
const CPU_WORK_CYCLES: f64 = 3_000.0;

fn cpu_latency_ms(spec_name: &str, spec: latest::ftalat::CpuSpec, seed: u64) -> f64 {
    let freqs: Vec<FreqMhz> = vec![spec.ladder.min(), spec.ladder.max()];
    let mut core = SimCpuCore::new(spec, seed, SharedClock::new());
    let stats = ftalat_phase1(&mut core, &freqs, 400, CPU_WORK_CYCLES);

    let mut worst_ns: u64 = 0;
    for (init, target) in [(freqs[0], freqs[1]), (freqs[1], freqs[0])] {
        let m = measure_transition(&mut core, init, target, &stats, CPU_WORK_CYCLES, 30)
            .unwrap_or_else(|| panic!("{spec_name}: {init:?}->{target:?} unmeasurable"));
        worst_ns = worst_ns.max(m.latency_ns);
    }
    worst_ns as f64 / 1e6
}

fn gpu_worst_mean_ms(spec: latest::gpu_sim::devices::DeviceSpec, seed: u64) -> (String, f64, f64) {
    let name = spec.name.clone();
    let config = CampaignConfig::builder(spec)
        .frequency_subset(6)
        .measurements(25, 50)
        .simulated_sms(Some(4))
        .seed(seed)
        .build();
    let result = Latest::new(config).run().expect("gpu campaign");
    let maxima: Vec<f64> = result
        .completed()
        .filter_map(|p| p.analysis.as_ref())
        .filter(|a| !a.inliers_ms.is_empty())
        .map(|a| a.filtered.max)
        .collect();
    let mean = maxima.iter().sum::<f64>() / maxima.len() as f64;
    let max = maxima.iter().cloned().fold(f64::MIN, f64::max);
    (name, mean, max)
}

fn main() {
    println!("measuring CPU transition latencies with FTaLaT (Sec. IV)...");
    let skylake_ms = cpu_latency_ms("skylake", intel_skylake_sp(), 11);
    let governor_ms = cpu_latency_ms("slow-governor", slow_governor_cpu(), 12);

    println!("measuring GPU switching latencies with LATEST (Sec. V)...\n");
    let gpus = [
        gpu_worst_mean_ms(devices::rtx_quadro_6000(), 21),
        gpu_worst_mean_ms(devices::a100_sxm4(), 22),
        gpu_worst_mean_ms(devices::gh200(), 23),
    ];

    println!(
        "{:<28} {:>16} {:>16}",
        "platform", "worst mean [ms]", "worst max [ms]"
    );
    println!(
        "{:<28} {:>16.3} {:>16}",
        "Intel Skylake SP (CPU)", skylake_ms, "-"
    );
    println!(
        "{:<28} {:>16.3} {:>16}",
        "slow-governor CPU", governor_ms, "-"
    );
    for (name, mean, max) in &gpus {
        println!("{:<28} {:>16.3} {:>16.3}", name, mean, max);
    }

    let fastest_gpu = gpus.iter().map(|g| g.1).fold(f64::MAX, f64::min);
    let slowest_cpu = skylake_ms.max(governor_ms);
    println!(
        "\neven the fastest GPU adjusts its clocks {:.0}x slower than the slowest CPU model",
        fastest_gpu / slowest_cpu
    );
    println!(
        "(the paper: CPUs finish in microseconds or units of ms, GPUs need tens to hundreds of ms)"
    );
}
