//! Quickstart: measure the SM frequency-switching latency of a simulated
//! NVIDIA A100-SXM4 between three frequencies, print per-pair summaries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the one-screen version of what the LATEST tool does:
//!
//! 1. **Phase 1** characterises the microbenchmark iteration time under each
//!    frequency and validates every ordered pair with a confidence-interval
//!    test on the difference of means (Algorithm 1 in the paper).
//! 2. **Phase 2** runs the kernel at the initial frequency, synchronises the
//!    host and device timers (IEEE 1588), sleeps through the delay period and
//!    issues the frequency change, stamping `t_s`.
//! 3. **Phase 3** finds, per SM, the first iteration inside the 2σ band of
//!    the target frequency, confirms the remaining iterations match the
//!    target mean, and takes `max(t_e − t_s)` over SMs.
//! 4. The repetition controller re-runs phases 2–3 until the relative
//!    standard error of the collected latencies drops below 5 %, then the
//!    adaptive DBSCAN filter (Algorithm 3) removes outliers.
//!
//! The campaign runs through the streaming `CampaignSession` API: pairs are
//! scheduled individually and every start/finish is observable as a typed
//! event while the campaign is still running. (The old one-liner
//! `Latest::new(config).run()` still works and gives identical results.)

use latest::core::{CampaignConfig, CampaignEvent, CampaignSession};
use latest::gpu_sim::devices;

fn main() {
    // A simulated A100-SXM4: 108 SMs, the 210–1410 MHz ladder of Table I,
    // and a transition model calibrated to the paper's measured shape.
    let spec = devices::a100_sxm4();
    println!(
        "device: {} ({} SMs, {} ladder steps)",
        spec.name,
        spec.sm_count,
        spec.ladder.len()
    );

    let config = CampaignConfig::builder(spec)
        .frequencies_mhz(&[705, 1095, 1410]) // min-ish / nominal / max
        .measurements(25, 60) // stop on 5 % RSE within [25, 60]
        .seed(42)
        .build();

    // Watch the campaign happen: phase-1 validation, the probe bound, then
    // one started/finished event per frequency pair.
    let session = CampaignSession::new(config).observe(|e: &CampaignEvent| println!(".. {e}"));
    let result = session.run().expect("campaign failed");

    println!(
        "phase 1: {} frequencies characterised, {} of {} ordered pairs valid\n",
        result.phase1.freqs.len(),
        result.phase1.valid_pairs.len(),
        result.pairs().len(),
    );

    println!(
        "{:>6} {:>6}  {:>5}  {:>9} {:>9} {:>9}  {:>8}",
        "init", "target", "n", "min[ms]", "mean[ms]", "max[ms]", "outliers"
    );
    for pair in result.completed() {
        let analysis = pair
            .analysis
            .as_ref()
            .expect("completed pairs are analysed");
        let s = analysis.filtered;
        println!(
            "{:>6} {:>6}  {:>5}  {:>9.3} {:>9.3} {:>9.3}  {:>8}",
            pair.init_mhz(),
            pair.target_mhz(),
            analysis.inliers_ms.len(),
            s.min,
            s.mean,
            s.max,
            analysis.outliers_ms.len(),
        );
    }

    // The paper's headline observation (Sec. VII): the A100 completes its
    // transitions in a narrow band well below 25 ms worst case.
    let worst = result
        .completed()
        .filter_map(|p| p.analysis.as_ref().map(|a| a.filtered.max))
        .fold(f64::MIN, f64::max);
    println!("\nworst-case switching latency over all pairs: {worst:.3} ms");
}
