//! Manufacturing-variability study across four simulated A100-SXM4 units,
//! reproducing the Sec. VII-C workflow (Figs. 7–9): benchmark the same
//! frequency subset on four units of the same SKU and report the per-pair
//! spread of best- and worst-case switching latencies.
//!
//! ```text
//! cargo run --release --example multi_gpu_variability
//! ```
//!
//! Each unit is the device registry's `a100` at a different `device_index`
//! — the same architecture model with a per-unit manufacturing perturbation
//! of the transition engine, as the four front-row GPUs of a Karolina node
//! would show. The whole experiment is a declarative [`FleetSpec`]: four
//! member [`CampaignSpec`]s, each an independent device slot with its own
//! seed, resolved through the registries and executed in parallel
//! (`fleet_spec.to_json()` is the equivalent `latest run` scenario file).

use latest::core::spec::{CampaignSpec, FleetSpec};
use latest::gpu_sim::devices;
use latest::gpu_sim::freq::FreqMhz;
use latest::report::{cross_device_table, BoxStats, CrossDeviceRow, Heatmap};

const UNITS: usize = 4;
const N_FREQS: usize = 8;

fn main() {
    println!("benchmarking {UNITS} A100-SXM4 units over {N_FREQS} frequencies each...");

    let mut fleet_spec =
        FleetSpec::new().description("four A100-SXM4 units of one Karolina node (Sec. VII-C)");
    for unit in 0..UNITS {
        fleet_spec = fleet_spec.member(
            CampaignSpec::builder("a100")
                .frequency_subset(N_FREQS)
                .measurements(25, 50)
                .simulated_sms(Some(4))
                .device_index(unit)
                .seed(0xA100 + unit as u64)
                .build()
                .expect("valid member spec"),
        );
    }
    let fleet_result = fleet_spec
        .into_fleet()
        .expect("specs resolve")
        .run()
        .expect("fleet campaign");
    let results = fleet_result.devices();

    // The fleet's own aggregation: one summary row per unit.
    let rows: Vec<CrossDeviceRow> = fleet_result
        .summary_rows()
        .into_iter()
        .map(Into::into)
        .collect();
    println!("\n{}", cross_device_table(&rows).render());
    let freqs: Vec<u32> = devices::a100_sxm4()
        .ladder
        .subset(N_FREQS)
        .iter()
        .map(|f| f.0)
        .collect();

    // Figs. 7/8: range (max unit − min unit) of the per-pair best-case and
    // worst-case latencies across the four units.
    for (title, pick_min) in [("minimum (Fig. 7)", true), ("maximum (Fig. 8)", false)] {
        let hm = Heatmap::build(&freqs, &freqs, |init, target| {
            if init == target {
                return None;
            }
            let per_unit: Vec<f64> = results
                .iter()
                .filter_map(|r| {
                    r.pair(FreqMhz(init), FreqMhz(target))
                        .and_then(|p| p.analysis.as_ref())
                        .filter(|a| !a.inliers_ms.is_empty())
                        .map(|a| {
                            if pick_min {
                                a.filtered.min
                            } else {
                                a.filtered.max
                            }
                        })
                })
                .collect();
            if per_unit.len() < 2 {
                return None;
            }
            let lo = per_unit.iter().cloned().fold(f64::MAX, f64::min);
            let hi = per_unit.iter().cloned().fold(f64::MIN, f64::max);
            Some(hi - lo)
        });
        println!(
            "\n{}",
            hm.render(
                &format!("Range of {title} switching latencies across {UNITS} units [ms]"),
                true
            )
        );
    }

    // Fig. 9: per-unit boxplots for the pairs with the widest spread.
    let mut spreads: Vec<(u32, u32, f64)> = Vec::new();
    for &init in &freqs {
        for &target in &freqs {
            if init == target {
                continue;
            }
            let maxes: Vec<f64> = results
                .iter()
                .filter_map(|r| {
                    r.pair(FreqMhz(init), FreqMhz(target))
                        .and_then(|p| p.analysis.as_ref())
                        .map(|a| a.filtered.max)
                })
                .collect();
            if maxes.len() == UNITS {
                let lo = maxes.iter().cloned().fold(f64::MAX, f64::min);
                let hi = maxes.iter().cloned().fold(f64::MIN, f64::max);
                spreads.push((init, target, hi - lo));
            }
        }
    }
    spreads.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());

    println!("\nper-unit latency boxplots for the 3 widest-spread pairs (Fig. 9):");
    for &(init, target, spread) in spreads.iter().take(3) {
        println!("\n  {init} -> {target} MHz (unit spread {spread:.2} ms):");
        for (unit, r) in results.iter().enumerate() {
            let pair = r
                .pair(FreqMhz(init), FreqMhz(target))
                .expect("pair present");
            if let Some(a) = &pair.analysis {
                if let Some(bs) = BoxStats::of(&a.inliers_ms) {
                    println!("    {}", bs.render_line(&format!("unit {unit}")));
                }
            }
        }
    }

    // Paper conclusion: no single unit is consistently the slowest.
    let mut slowest_counts = [0usize; UNITS];
    for &init in &freqs {
        for &target in &freqs {
            if init == target {
                continue;
            }
            let per_unit: Vec<(usize, f64)> = results
                .iter()
                .enumerate()
                .filter_map(|(u, r)| {
                    r.pair(FreqMhz(init), FreqMhz(target))
                        .and_then(|p| p.analysis.as_ref())
                        .map(|a| (u, a.filtered.max))
                })
                .collect();
            if let Some(&(u, _)) = per_unit
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            {
                slowest_counts[u] += 1;
            }
        }
    }
    println!("\nhow often each unit was the slowest for a pair: {slowest_counts:?}");
    println!("(the paper finds no unit consistently worse than the others)");
}
