//! NVML-façade error types, mirroring the `nvmlReturn_t` failures LATEST
//! must handle.

use std::fmt;

/// Result alias for NVML-façade operations.
pub type NvmlResult<T> = Result<T, NvmlError>;

/// Errors surfaced by the NVML façade.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NvmlError {
    /// `NVML_ERROR_INVALID_ARGUMENT`: no device at that index.
    InvalidDeviceIndex {
        /// The requested index.
        index: usize,
        /// The number of devices present.
        count: usize,
    },
    /// `NVML_ERROR_INVALID_ARGUMENT`: clock outside the supported range.
    InvalidClock {
        /// Requested frequency (MHz).
        requested: u32,
        /// Lowest supported frequency (MHz).
        min: u32,
        /// Highest supported frequency (MHz).
        max: u32,
    },
}

impl fmt::Display for NvmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvmlError::InvalidDeviceIndex { index, count } => {
                write!(f, "invalid device index {index} (have {count} devices)")
            }
            NvmlError::InvalidClock {
                requested,
                min,
                max,
            } => {
                write!(
                    f,
                    "clock {requested} MHz outside supported range [{min}, {max}] MHz"
                )
            }
        }
    }
}

impl std::error::Error for NvmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NvmlError::InvalidDeviceIndex { index: 5, count: 2 };
        assert!(e.to_string().contains("index 5"));
        let e = NvmlError::InvalidClock {
            requested: 99,
            min: 210,
            max: 1410,
        };
        assert!(e.to_string().contains("99 MHz"));
        assert!(e.to_string().contains("[210, 1410]"));
    }
}
