//! An NVML-shaped driver façade over the simulated GPU.
//!
//! The LATEST tool controls the GPU exclusively through NVML: device
//! enumeration, `nvmlDeviceSetGpuLockedClocks`, clock queries and the
//! throttle-reason bitmask. This crate reproduces those call-site semantics
//! on top of `latest-gpu-sim`, including the part the paper is explicitly
//! about (Fig. 2): *the frequency-change call has a different target device
//! from its originator* — the host-side call blocks briefly and returns
//! before the device has applied anything; the request then travels the bus
//! and is processed asynchronously.
//!
//! Timing model per control call (all sampled from the device's
//! [`DriverProfile`](latest_gpu_sim::devices::DriverProfile), seeded):
//!
//! ```text
//! host:   |--- call blocking (~100 µs) ---| (returns)
//! bus:        |--- request travel (~10-60 µs) ---|
//! device:                                        |-> transition model ...
//! ```
//!
//! A small probability of a *driver stall* (lock contention with monitoring
//! daemons etc.) adds tens of milliseconds to the travel time; these stalls
//! are the dominant source of the outlier measurements the paper's DBSCAN
//! stage removes.

pub mod error;

use std::sync::Arc;

use latest_gpu_sim::devices::DeviceSpec;
use latest_gpu_sim::freq::FreqMhz;
use latest_gpu_sim::noise::LogNormal;
use latest_gpu_sim::{GpuDevice, ThrottleReasons};
use latest_sim_clock::{SharedClock, SimDuration, SimTime};
use parking_lot::Mutex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

pub use error::{NvmlError, NvmlResult};

/// A record of one driver control call, for Fig. 2-style timelines.
#[derive(Clone, Copy, Debug)]
pub struct DriverCallTrace {
    /// What the call was.
    pub kind: DriverCallKind,
    /// Host time at call entry.
    pub call: SimTime,
    /// Host time at call return.
    pub ret: SimTime,
    /// When the request reached the device (clock-setting calls only).
    pub device_arrival: Option<SimTime>,
}

/// Kinds of traced driver calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriverCallKind {
    /// `nvmlDeviceSetGpuLockedClocks`.
    SetLockedClocks,
    /// `nvmlDeviceSetMemoryLockedClocks`.
    SetLockedMemClocks,
    /// `nvmlDeviceGetClockInfo`.
    GetClockInfo,
    /// `nvmlDeviceGetClockInfo(NVML_CLOCK_MEM)`.
    GetMemClockInfo,
    /// `nvmlDeviceGetCurrentClocksThrottleReasons`.
    GetThrottleReasons,
    /// `nvmlDeviceGetTemperature`.
    GetTemperature,
}

/// The NVML library handle: owns the device table.
pub struct Nvml {
    clock: SharedClock,
    devices: Vec<Arc<Mutex<GpuDevice>>>,
}

impl Nvml {
    /// `nvmlInit` + device discovery: build the library over already-created
    /// devices sharing `clock`.
    pub fn init(clock: SharedClock, devices: Vec<Arc<Mutex<GpuDevice>>>) -> Self {
        Nvml { clock, devices }
    }

    /// Convenience: create `specs.len()` devices from specs on a fresh clock.
    /// Device `i` is seeded with `base_seed + i`.
    pub fn with_devices(specs: Vec<DeviceSpec>, base_seed: u64) -> (Self, SharedClock) {
        let clock = SharedClock::new();
        let devices = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                Arc::new(Mutex::new(GpuDevice::new(
                    spec,
                    base_seed.wrapping_add(i as u64),
                    clock.clone(),
                )))
            })
            .collect();
        (Nvml::init(clock.clone(), devices), clock)
    }

    /// `nvmlDeviceGetCount`.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// `nvmlDeviceGetHandleByIndex`.
    pub fn device(&self, index: usize) -> NvmlResult<NvmlDevice> {
        let device = self
            .devices
            .get(index)
            .ok_or(NvmlError::InvalidDeviceIndex {
                index,
                count: self.devices.len(),
            })?
            .clone();
        let seed = {
            let d = device.lock();
            d.spec().name.len() as u64 ^ (index as u64) << 8
        };
        Ok(NvmlDevice {
            clock: self.clock.clone(),
            device,
            index,
            rng: ChaCha8Rng::seed_from_u64(0xD215EED ^ seed),
            trace: Vec::new(),
        })
    }

    /// The shared virtual clock (for composing with the CUDA façade).
    pub fn shared_clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Raw access to a device for composing façades over the same silicon.
    pub fn raw_device(&self, index: usize) -> NvmlResult<Arc<Mutex<GpuDevice>>> {
        self.devices
            .get(index)
            .cloned()
            .ok_or(NvmlError::InvalidDeviceIndex {
                index,
                count: self.devices.len(),
            })
    }
}

/// A device handle (`nvmlDevice_t`).
pub struct NvmlDevice {
    clock: SharedClock,
    device: Arc<Mutex<GpuDevice>>,
    index: usize,
    rng: ChaCha8Rng,
    trace: Vec<DriverCallTrace>,
}

impl NvmlDevice {
    /// Device index within the library.
    pub fn index(&self) -> usize {
        self.index
    }

    /// `nvmlDeviceGetName`.
    pub fn name(&self) -> String {
        self.device.lock().spec().name.clone()
    }

    /// `nvmlSystemGetDriverVersion` (reported per device here).
    pub fn driver_version(&self) -> &'static str {
        self.device.lock().spec().driver_version
    }

    /// The device's frequency ladder
    /// (`nvmlDeviceGetSupportedGraphicsClocks`).
    pub fn supported_graphics_clocks(&self) -> Vec<FreqMhz> {
        self.device.lock().spec().ladder.steps().to_vec()
    }

    /// Memory clock at the default memory P-state.
    pub fn memory_clock_mhz(&self) -> u32 {
        self.device.lock().spec().mem_freq_mhz
    }

    /// The device's memory-clock ladder
    /// (`nvmlDeviceGetSupportedMemoryClocks`).
    pub fn supported_memory_clocks(&self) -> Vec<FreqMhz> {
        self.device.lock().spec().mem_ladder.steps().to_vec()
    }

    /// Number of streaming multiprocessors.
    pub fn sm_count(&self) -> u32 {
        self.device.lock().spec().sm_count
    }

    /// `nvmlDeviceSetGpuLockedClocks(min = max = target)` — the call LATEST
    /// issues for every frequency change. Returns the ladder-snapped target.
    ///
    /// The host blocks for the sampled call time; the request reaches the
    /// device asynchronously afterwards. Rejects frequencies outside the
    /// ladder range, mirroring `NVML_ERROR_INVALID_ARGUMENT`.
    pub fn set_gpu_locked_clocks(&mut self, target: FreqMhz) -> NvmlResult<FreqMhz> {
        let (min, max) = {
            let d = self.device.lock();
            (d.spec().ladder.min(), d.spec().ladder.max())
        };
        if target < min || target > max {
            return Err(NvmlError::InvalidClock {
                requested: target.0,
                min: min.0,
                max: max.0,
            });
        }

        let profile = self.device.lock().spec().driver.clone();
        let call = self.clock.now();
        let blocking_us =
            LogNormal::from_median(profile.call_blocking_us, profile.call_blocking_sigma_ln)
                .sample(&mut self.rng);
        let mut travel_us =
            LogNormal::from_median(profile.request_travel_us, profile.request_travel_sigma_ln)
                .sample(&mut self.rng);
        if self.rng.gen::<f64>() < profile.stall_prob {
            travel_us += profile.stall.sample_ms(&mut self.rng) * 1e3;
        }
        let arrival = call + SimDuration::from_nanos((travel_us * 1e3).round() as u64);
        let snapped = self
            .device
            .lock()
            .apply_locked_clocks(call, arrival, target);
        let ret = self
            .clock
            .advance(SimDuration::from_nanos((blocking_us * 1e3).round() as u64));
        self.trace.push(DriverCallTrace {
            kind: DriverCallKind::SetLockedClocks,
            call,
            ret,
            device_arrival: Some(arrival),
        });
        Ok(snapped)
    }

    /// `nvmlDeviceResetGpuLockedClocks`: return to the nominal clock.
    pub fn reset_gpu_locked_clocks(&mut self) -> NvmlResult<FreqMhz> {
        let nominal = self.device.lock().spec().nominal_mhz;
        self.set_gpu_locked_clocks(nominal)
    }

    /// `nvmlDeviceSetMemoryLockedClocks(min = max = target)` — the memory
    /// domain's twin of [`NvmlDevice::set_gpu_locked_clocks`]: the host
    /// blocks for the sampled call time, the request travels the bus, the
    /// device retrains DRAM asynchronously. Returns the ladder-snapped
    /// target; rejects clocks outside the memory ladder range.
    pub fn set_memory_locked_clocks(&mut self, target: FreqMhz) -> NvmlResult<FreqMhz> {
        let (min, max) = {
            let d = self.device.lock();
            (d.spec().mem_ladder.min(), d.spec().mem_ladder.max())
        };
        if target < min || target > max {
            return Err(NvmlError::InvalidClock {
                requested: target.0,
                min: min.0,
                max: max.0,
            });
        }

        let profile = self.device.lock().spec().driver.clone();
        let call = self.clock.now();
        let blocking_us =
            LogNormal::from_median(profile.call_blocking_us, profile.call_blocking_sigma_ln)
                .sample(&mut self.rng);
        let mut travel_us =
            LogNormal::from_median(profile.request_travel_us, profile.request_travel_sigma_ln)
                .sample(&mut self.rng);
        if self.rng.gen::<f64>() < profile.stall_prob {
            travel_us += profile.stall.sample_ms(&mut self.rng) * 1e3;
        }
        let arrival = call + SimDuration::from_nanos((travel_us * 1e3).round() as u64);
        let snapped = self
            .device
            .lock()
            .apply_locked_mem_clocks(call, arrival, target);
        let ret = self
            .clock
            .advance(SimDuration::from_nanos((blocking_us * 1e3).round() as u64));
        self.trace.push(DriverCallTrace {
            kind: DriverCallKind::SetLockedMemClocks,
            call,
            ret,
            device_arrival: Some(arrival),
        });
        Ok(snapped)
    }

    /// `nvmlDeviceResetMemoryLockedClocks`: return to the default memory
    /// P-state.
    pub fn reset_memory_locked_clocks(&mut self) -> NvmlResult<FreqMhz> {
        let default = self.device.lock().spec().mem_default();
        self.set_memory_locked_clocks(default)
    }

    /// `nvmlDeviceGetClockInfo(NVML_CLOCK_MEM)`.
    pub fn mem_clock_info(&mut self) -> FreqMhz {
        let call = self.clock.now();
        let f = self.device.lock().current_mem_clock(call);
        let ret = self.query_cost();
        self.trace.push(DriverCallTrace {
            kind: DriverCallKind::GetMemClockInfo,
            call,
            ret,
            device_arrival: None,
        });
        f
    }

    /// `nvmlDeviceGetClockInfo(NVML_CLOCK_SM)`.
    pub fn clock_info(&mut self) -> FreqMhz {
        let call = self.clock.now();
        let f = self.device.lock().current_sm_clock(call);
        let ret = self.query_cost();
        self.trace.push(DriverCallTrace {
            kind: DriverCallKind::GetClockInfo,
            call,
            ret,
            device_arrival: None,
        });
        f
    }

    /// `nvmlDeviceGetCurrentClocksThrottleReasons`.
    pub fn throttle_reasons(&mut self) -> ThrottleReasons {
        let call = self.clock.now();
        let r = self.device.lock().throttle_reasons(call);
        let ret = self.query_cost();
        self.trace.push(DriverCallTrace {
            kind: DriverCallKind::GetThrottleReasons,
            call,
            ret,
            device_arrival: None,
        });
        r
    }

    /// `nvmlDeviceGetTemperature(NVML_TEMPERATURE_GPU)`.
    pub fn temperature_c(&mut self) -> f64 {
        let call = self.clock.now();
        let t = self.device.lock().temperature(call);
        let ret = self.query_cost();
        self.trace.push(DriverCallTrace {
            kind: DriverCallKind::GetTemperature,
            call,
            ret,
            device_arrival: None,
        });
        t
    }

    /// Drain the driver-call trace (for Fig. 2-style timelines).
    pub fn take_trace(&mut self) -> Vec<DriverCallTrace> {
        std::mem::take(&mut self.trace)
    }

    /// The underlying simulated device (closed-loop tests read ground truth
    /// through this; a real NVML backend has no equivalent).
    pub fn raw(&self) -> Arc<Mutex<GpuDevice>> {
        self.device.clone()
    }

    fn query_cost(&mut self) -> SimTime {
        // Queries are cheap but not free: ~20-60 us.
        let us: f64 = self.rng.gen_range(20.0..60.0);
        self.clock
            .advance(SimDuration::from_nanos((us * 1e3) as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latest_gpu_sim::devices;

    fn nvml_one_a100() -> (Nvml, SharedClock) {
        Nvml::with_devices(vec![devices::a100_sxm4()], 42)
    }

    #[test]
    fn enumeration_and_metadata() {
        let (nvml, _) = Nvml::with_devices(devices::paper_devices(), 1);
        assert_eq!(nvml.device_count(), 3);
        let a100 = nvml.device(1).unwrap();
        assert!(a100.name().contains("A100"));
        assert_eq!(a100.sm_count(), 108);
        assert_eq!(a100.memory_clock_mhz(), 1215);
        assert_eq!(a100.driver_version(), "550.54.15");
        assert_eq!(a100.supported_graphics_clocks().len(), 81);
        assert!(matches!(
            nvml.device(3),
            Err(NvmlError::InvalidDeviceIndex { index: 3, count: 3 })
        ));
    }

    #[test]
    fn set_locked_clocks_blocks_host_and_snaps() {
        let (nvml, clock) = nvml_one_a100();
        let mut dev = nvml.device(0).unwrap();
        let before = clock.now();
        let snapped = dev.set_gpu_locked_clocks(FreqMhz(1001)).unwrap();
        let after = clock.now();
        // 1001 snaps to 1005 (ladder 210 + 15k).
        assert_eq!(snapped, FreqMhz(1005));
        let blocked = after.saturating_since(before);
        assert!(
            blocked >= SimDuration::from_micros(20) && blocked <= SimDuration::from_millis(5),
            "blocking {blocked}"
        );
    }

    #[test]
    fn request_applies_asynchronously_after_return() {
        let (nvml, _clock) = nvml_one_a100();
        let mut dev = nvml.device(0).unwrap();
        dev.set_gpu_locked_clocks(FreqMhz(705)).unwrap();
        let trace = dev.take_trace();
        assert_eq!(trace.len(), 1);
        let t = &trace[0];
        assert_eq!(t.kind, DriverCallKind::SetLockedClocks);
        let arrival = t.device_arrival.unwrap();
        assert!(arrival > t.call, "arrival must be after the call");
        // Ground truth: the device recorded the transition with our call time.
        let raw = dev.raw();
        let gt = raw.lock().last_transition().cloned().unwrap();
        assert_eq!(gt.host_call, t.call);
        assert_eq!(gt.device_arrival, arrival);
        assert_eq!(gt.to, FreqMhz(705));
        assert!(gt.settled > arrival);
    }

    #[test]
    fn invalid_clock_rejected() {
        let (nvml, _) = nvml_one_a100();
        let mut dev = nvml.device(0).unwrap();
        assert!(matches!(
            dev.set_gpu_locked_clocks(FreqMhz(100)),
            Err(NvmlError::InvalidClock {
                requested: 100,
                min: 210,
                max: 1410
            })
        ));
        assert!(dev.set_gpu_locked_clocks(FreqMhz(5000)).is_err());
    }

    #[test]
    fn queries_advance_time_and_trace() {
        let (nvml, clock) = nvml_one_a100();
        let mut dev = nvml.device(0).unwrap();
        let t0 = clock.now();
        let _ = dev.clock_info();
        let _ = dev.throttle_reasons();
        let temp = dev.temperature_c();
        assert!(clock.now() > t0);
        assert!(temp > 0.0 && temp < 100.0);
        let trace = dev.take_trace();
        assert_eq!(trace.len(), 3);
        assert!(dev.take_trace().is_empty());
    }

    #[test]
    fn reset_returns_to_nominal() {
        let (nvml, clock) = nvml_one_a100();
        let mut dev = nvml.device(0).unwrap();
        dev.set_gpu_locked_clocks(FreqMhz(300)).unwrap();
        let snapped = dev.reset_gpu_locked_clocks().unwrap();
        assert_eq!(snapped, FreqMhz(1095));
        // After the transition settles, the requested plan is nominal.
        clock.advance(SimDuration::from_secs(1));
        let raw = dev.raw();
        let gt = raw.lock().last_transition().cloned().unwrap();
        assert_eq!(gt.to, FreqMhz(1095));
    }

    #[test]
    fn stall_probability_produces_late_arrivals() {
        // Crank the stall probability and watch arrivals spread out.
        let mut spec = devices::a100_sxm4();
        spec.driver.stall_prob = 1.0;
        let (nvml, _) = Nvml::with_devices(vec![spec], 7);
        let mut dev = nvml.device(0).unwrap();
        dev.set_gpu_locked_clocks(FreqMhz(705)).unwrap();
        let t = dev.take_trace().pop().unwrap();
        let travel = t.device_arrival.unwrap().saturating_since(t.call);
        assert!(
            travel >= SimDuration::from_millis(2),
            "stalled travel only {travel}"
        );
    }

    #[test]
    fn memory_locked_clocks_roundtrip() {
        let (nvml, clock) = nvml_one_a100();
        let mut dev = nvml.device(0).unwrap();
        assert_eq!(dev.supported_memory_clocks().len(), 3);
        // Out-of-ladder memory clocks are rejected like core clocks.
        assert!(matches!(
            dev.set_memory_locked_clocks(FreqMhz(100)),
            Err(NvmlError::InvalidClock {
                requested: 100,
                min: 810,
                max: 1215
            })
        ));
        let snapped = dev.set_memory_locked_clocks(FreqMhz(820)).unwrap();
        assert_eq!(snapped, FreqMhz(810));
        let trace = dev.take_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].kind, DriverCallKind::SetLockedMemClocks);
        assert!(trace[0].device_arrival.unwrap() > trace[0].call);
        // Ground truth lands in the memory-domain ledger, not the core one.
        let raw = dev.raw();
        {
            let d = raw.lock();
            assert!(d.last_transition().is_none());
            let gt = d.last_mem_transition().cloned().unwrap();
            assert_eq!(gt.to, FreqMhz(810));
        }
        // After settling, the reported memory clock is the locked state and
        // reset returns to the documented default.
        clock.advance(SimDuration::from_secs(1));
        assert_eq!(dev.mem_clock_info(), FreqMhz(810));
        assert_eq!(dev.reset_memory_locked_clocks().unwrap(), FreqMhz(1215));
    }

    #[test]
    fn multi_gpu_independent_units() {
        let specs: Vec<_> = (0..4).map(devices::a100_sxm4_unit).collect();
        let (nvml, _) = Nvml::with_devices(specs, 99);
        assert_eq!(nvml.device_count(), 4);
        for i in 0..4 {
            let mut dev = nvml.device(i).unwrap();
            assert_eq!(
                dev.set_gpu_locked_clocks(FreqMhz(1095)).unwrap(),
                FreqMhz(1095)
            );
        }
    }
}
