//! The governor daemon: a closed control loop over synthetic traffic.
//!
//! [`simulate_policy`](crate::simulate::simulate_policy) scores policies on
//! *phase traces* — offline plans with known boundaries. A deployed governor
//! has no such plan: it polls utilisation, classifies the load into zones,
//! debounces the classification with stability counters, and only then
//! switches — paying, each time, a latency drawn from the *measured*
//! [`LatencyTable`]. This module is that loop, in the control-loop shape of
//! production GPU governors (multi-level zones, hysteresis, idle slow-poll,
//! aggressive down-clocking), run in virtual time against an open-loop
//! [`TrafficTrace`].
//!
//! The paper's effect is made end-to-end observable: while a switch is in
//! flight the device stalls, arrivals pile up, and deadlines blow. A policy
//! that consults the table before switching ([`LatencyAwareDaemon`]) avoids
//! exactly those stalls; one that assumes switches are free pays them at
//! every debounced zone change.

use std::collections::VecDeque;
use std::fmt;

use latest_gpu_sim::freq::FreqMhz;
use latest_traffic::TrafficTrace;
use serde::{Deserialize, Serialize};

use crate::phase::PhaseKind;
use crate::power::PowerModel;
use crate::simulate::TransitionReplay;
use crate::table::LatencyTable;

/// Debounced load classification, coarsest to hottest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LoadZone {
    /// No work and no arrivals: the daemon slow-polls.
    Idle,
    /// Utilisation below the low watermark.
    Low,
    /// Utilisation between the low and medium watermarks.
    Medium,
    /// Utilisation between the medium and high watermarks.
    High,
    /// Utilisation above the high watermark, or the queue past the
    /// saturation depth.
    Saturated,
}

impl LoadZone {
    /// Ordering rank (Idle = 0 … Saturated = 4).
    pub fn rank(self) -> u8 {
        match self {
            LoadZone::Idle => 0,
            LoadZone::Low => 1,
            LoadZone::Medium => 2,
            LoadZone::High => 3,
            LoadZone::Saturated => 4,
        }
    }

    /// Display label.
    pub fn as_str(self) -> &'static str {
        match self {
            LoadZone::Idle => "idle",
            LoadZone::Low => "low",
            LoadZone::Medium => "medium",
            LoadZone::High => "high",
            LoadZone::Saturated => "saturated",
        }
    }
}

impl fmt::Display for LoadZone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Control-loop tuning: poll cadence, utilisation watermarks, stability
/// (debounce) counters.
#[derive(Clone, Copy, Debug)]
pub struct DaemonConfig {
    /// Control-loop period (ms of virtual time).
    pub poll_ms: f64,
    /// Relaxed period while idle (the idle slow-poll).
    pub idle_poll_ms: f64,
    /// Consecutive polls a *hotter* zone must persist before it is applied.
    pub up_stability: u32,
    /// Consecutive polls a *cooler* zone must persist before it is applied.
    pub down_stability: u32,
    /// Apply a drop to [`LoadZone::Idle`] after a single poll (aggressive
    /// down-clocking: idle is unambiguous).
    pub aggressive_down: bool,
    /// Utilisation below this is [`LoadZone::Low`].
    pub low_util: f64,
    /// Utilisation below this (and ≥ `low_util`) is [`LoadZone::Medium`].
    pub medium_util: f64,
    /// Utilisation below this (and ≥ `medium_util`) is [`LoadZone::High`].
    pub high_util: f64,
    /// Queue depth at or above which the zone is [`LoadZone::Saturated`]
    /// regardless of utilisation.
    pub saturation_queue: usize,
    /// Hard stop on virtual time (guards against a runaway backlog).
    pub max_virtual_ms: f64,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            poll_ms: 10.0,
            idle_poll_ms: 50.0,
            up_stability: 2,
            down_stability: 4,
            aggressive_down: true,
            low_util: 0.15,
            medium_util: 0.45,
            high_util: 0.80,
            saturation_queue: 4,
            max_virtual_ms: 600_000.0,
        }
    }
}

impl DaemonConfig {
    /// Classify one poll window's observation into a zone.
    pub fn classify(&self, utilisation: f64, queue_depth: usize) -> LoadZone {
        if queue_depth >= self.saturation_queue {
            return LoadZone::Saturated;
        }
        if utilisation <= 1e-9 && queue_depth == 0 {
            return LoadZone::Idle;
        }
        if utilisation < self.low_util {
            LoadZone::Low
        } else if utilisation < self.medium_util {
            LoadZone::Medium
        } else if utilisation < self.high_util {
            LoadZone::High
        } else {
            LoadZone::Saturated
        }
    }

    /// Debounce threshold for moving from `applied` to `pending`.
    fn stability_needed(&self, applied: LoadZone, pending: LoadZone) -> u32 {
        if pending.rank() > applied.rank() {
            self.up_stability
        } else if self.aggressive_down && pending == LoadZone::Idle {
            1
        } else {
            self.down_stability
        }
    }
}

/// Maps zones onto the table's measured target frequencies: the only
/// frequencies a table-driven governor can reason about.
#[derive(Clone, Debug)]
pub struct ZoneLadder {
    rungs: Vec<FreqMhz>,
}

impl ZoneLadder {
    /// Build from a table's known targets (ascending). Returns `None` when
    /// the table has no targets at all.
    pub fn from_table(table: &LatencyTable) -> Option<Self> {
        let rungs = table.known_targets();
        if rungs.is_empty() {
            None
        } else {
            Some(ZoneLadder { rungs })
        }
    }

    /// The rung a zone maps to: idle at the bottom, saturated at the top,
    /// the middle zones spread across the ladder.
    pub fn target(&self, zone: LoadZone) -> FreqMhz {
        let fraction = match zone {
            LoadZone::Idle => 0.0,
            LoadZone::Low => 0.25,
            LoadZone::Medium => 0.5,
            LoadZone::High => 0.75,
            LoadZone::Saturated => 1.0,
        };
        let idx = ((self.rungs.len() - 1) as f64 * fraction).round() as usize;
        self.rungs[idx]
    }

    /// The ladder ceiling.
    pub fn max(&self) -> FreqMhz {
        *self.rungs.last().expect("ladder is non-empty")
    }

    /// All rungs, ascending.
    pub fn rungs(&self) -> &[FreqMhz] {
        &self.rungs
    }
}

/// An online frequency policy for the daemon: sees only the debounced zone,
/// the current frequency and a dwell-time hint — no future knowledge.
pub trait DaemonPolicy {
    /// Policy name for scorecards.
    fn name(&self) -> &str;

    /// Frequency applied before the run starts (free, like a boot clock).
    fn initial_frequency(&self, ladder: &ZoneLadder) -> FreqMhz;

    /// Called when the debounced zone changes. `dwell_hint_ms` is the
    /// daemon's running estimate of how long a zone persists. Return the
    /// frequency to switch to, or `None` to stay.
    fn decide(
        &self,
        zone: LoadZone,
        current: FreqMhz,
        ladder: &ZoneLadder,
        dwell_hint_ms: f64,
    ) -> Option<FreqMhz>;
}

/// Never switch: pin the ladder ceiling.
#[derive(Clone, Debug, Default)]
pub struct RunAtMaxDaemon;

impl DaemonPolicy for RunAtMaxDaemon {
    fn name(&self) -> &str {
        "run-at-max"
    }

    fn initial_frequency(&self, ladder: &ZoneLadder) -> FreqMhz {
        ladder.max()
    }

    fn decide(
        &self,
        _zone: LoadZone,
        _current: FreqMhz,
        _ladder: &ZoneLadder,
        _dwell_hint_ms: f64,
    ) -> Option<FreqMhz> {
        None
    }
}

/// Chase the ladder at every zone change, assuming switches are free — the
/// CPU-governor reflex transplanted to a GPU.
#[derive(Clone, Debug, Default)]
pub struct LatencyObliviousDaemon;

impl DaemonPolicy for LatencyObliviousDaemon {
    fn name(&self) -> &str {
        "latency-oblivious"
    }

    fn initial_frequency(&self, ladder: &ZoneLadder) -> FreqMhz {
        ladder.max()
    }

    fn decide(
        &self,
        zone: LoadZone,
        current: FreqMhz,
        ladder: &ZoneLadder,
        _dwell_hint_ms: f64,
    ) -> Option<FreqMhz> {
        let want = ladder.target(zone);
        (want != current).then_some(want)
    }
}

/// Consult the measured table before every switch: unknown pairs are
/// unaffordable, pathological pairs are detoured, and a switch must
/// amortise against the expected zone dwell time.
#[derive(Clone, Debug)]
pub struct LatencyAwareDaemon {
    table: LatencyTable,
    /// A switch must cost at most this fraction of the dwell hint.
    pub amortise_fraction: f64,
    /// Detour window (MHz) around a pathological target.
    pub detour_window_mhz: u32,
    /// A pair is pathological above `factor ×` the table's typical latency.
    pub pathological_factor: f64,
}

impl LatencyAwareDaemon {
    /// Default thresholds: 10 % amortisation, 200 MHz detours, 2× typical.
    pub fn new(table: LatencyTable) -> Self {
        LatencyAwareDaemon {
            table,
            amortise_fraction: 0.1,
            detour_window_mhz: 200,
            pathological_factor: 2.0,
        }
    }
}

impl DaemonPolicy for LatencyAwareDaemon {
    fn name(&self) -> &str {
        "latency-aware"
    }

    fn initial_frequency(&self, ladder: &ZoneLadder) -> FreqMhz {
        ladder.max()
    }

    fn decide(
        &self,
        zone: LoadZone,
        current: FreqMhz,
        ladder: &ZoneLadder,
        dwell_hint_ms: f64,
    ) -> Option<FreqMhz> {
        let want = ladder.target(zone);
        if want == current {
            return None;
        }
        // Unknown pairs are unaffordable, not free.
        let straight = self.table.expected_ms(current, want)?;
        let (target, expected_ms) =
            if self
                .table
                .is_pathological(current, want, self.pathological_factor)
            {
                match self
                    .table
                    .cheapest_near(current, want, self.detour_window_mhz)
                {
                    Some((alt, alt_ms)) if alt_ms < straight => (alt, alt_ms),
                    _ => (want, straight),
                }
            } else {
                (want, straight)
            };
        if target == current || expected_ms > self.amortise_fraction * dwell_hint_ms {
            return None;
        }
        Some(target)
    }
}

/// The daemon policy names, in canonical scorecard order.
pub const POLICY_NAMES: &[&str] = &["run-at-max", "latency-oblivious", "latency-aware"];

/// Build a daemon policy by name (the CLI entry point).
pub fn make_policy(name: &str, table: &LatencyTable) -> Result<Box<dyn DaemonPolicy>, String> {
    match name {
        "run-at-max" => Ok(Box::new(RunAtMaxDaemon)),
        "latency-oblivious" => Ok(Box::new(LatencyObliviousDaemon)),
        "latency-aware" => Ok(Box::new(LatencyAwareDaemon::new(table.clone()))),
        other => Err(format!(
            "unknown policy `{other}` (known policies: {})",
            POLICY_NAMES.join(", ")
        )),
    }
}

/// Derive the replay seed for one (policy × traffic) cell from a base seed,
/// so every cell draws an independent but reproducible latency stream
/// regardless of evaluation order. FNV-1a over the labels.
pub fn replay_seed(base: u64, policy: &str, traffic: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
    };
    eat(&base.to_le_bytes());
    eat(policy.as_bytes());
    eat(b"\x00");
    eat(traffic.as_bytes());
    hash
}

/// Closed-loop outcome of one (policy × traffic) cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scorecard {
    /// Policy name.
    pub policy: String,
    /// Traffic scenario name.
    pub traffic: String,
    /// Replay seed the switch latencies were drawn under.
    pub seed: u64,
    /// Requests offered.
    pub requests: usize,
    /// Requests completed (always all of them; the run drains the queue).
    pub completed: usize,
    /// Requests that carried a deadline.
    pub with_deadline: usize,
    /// Deadline-carrying requests that completed late.
    pub missed_deadlines: usize,
    /// Mean request latency, arrival to completion (ms).
    pub mean_latency_ms: f64,
    /// Median request latency (ms, nearest rank).
    pub p50_latency_ms: f64,
    /// 99th-percentile request latency (ms, nearest rank).
    pub p99_latency_ms: f64,
    /// Virtual time to drain the scenario (ms).
    pub runtime_ms: f64,
    /// Energy over the run (J), via the [`PowerModel`].
    pub energy_j: f64,
    /// Frequency switches issued.
    pub switches: usize,
    /// Zone changes where the policy chose not to switch.
    pub suppressed: usize,
    /// Requests that arrived while a switch was in flight (stalled).
    pub stalled_arrivals: usize,
    /// Total time with a switch in flight (ms).
    pub time_in_switch_ms: f64,
    /// Longest single switch paid (ms).
    pub worst_switch_ms: f64,
    /// Control polls taken at the idle slow-poll cadence.
    pub idle_polls: usize,
}

impl Scorecard {
    /// Missed-deadline rate over deadline-carrying requests (0 when the
    /// scenario has none).
    pub fn missed_rate(&self) -> f64 {
        if self.with_deadline == 0 {
            0.0
        } else {
            self.missed_deadlines as f64 / self.with_deadline as f64
        }
    }

    /// Serialise to pretty JSON with a fixed field order (bitwise
    /// deterministic for identical runs).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scorecard serialises")
    }
}

/// Serialise a batch of scorecards to pretty JSON with fixed field order
/// (the `govern run --json` output; bitwise deterministic for identical
/// runs).
pub fn scorecards_to_json(cards: &[Scorecard]) -> String {
    serde_json::to_string_pretty(&cards.to_vec()).expect("scorecards serialise")
}

/// One queued request during the run.
struct Job {
    arrival_ms: f64,
    remaining_ref_ms: f64,
    deadline_ms: Option<f64>,
}

/// The control loop itself: steps a simulated device in virtual time under
/// a [`DaemonPolicy`], paying measured latency for every switch.
#[derive(Clone, Debug)]
pub struct GovernorDaemon {
    config: DaemonConfig,
    power: PowerModel,
}

impl GovernorDaemon {
    /// A daemon with `config` over a device modelled by `power` (whose
    /// `f_max` is the reference frequency work amounts are normalised to).
    pub fn new(config: DaemonConfig, power: PowerModel) -> Self {
        GovernorDaemon { config, power }
    }

    /// Run `policy` over `trace`, drawing switch latencies from `replay`.
    ///
    /// The device serves the queue FIFO at a rate proportional to its
    /// current frequency; while a switch is in flight it serves nothing
    /// (the paper's stall, end to end). The run ends when the queue drains
    /// after the last arrival.
    pub fn run(
        &self,
        policy: &dyn DaemonPolicy,
        trace: &TrafficTrace,
        replay: &mut TransitionReplay,
        seed: u64,
    ) -> Scorecard {
        let ladder = ZoneLadder::from_table(replay.table()).expect("latency table has targets");
        let f_ref = self.power.f_max;
        let cfg = &self.config;

        let mut now = 0.0f64;
        let mut current = policy.initial_frequency(&ladder);
        let mut queue: VecDeque<Job> = VecDeque::new();
        let mut next_arrival = 0usize;
        // (landing instant, landing frequency)
        let mut in_switch: Option<(f64, FreqMhz)> = None;
        let mut next_poll = cfg.poll_ms;
        let mut busy_in_window = 0.0f64;
        let mut window_start = 0.0f64;

        // Debounce state.
        let mut applied_zone = LoadZone::Idle;
        let mut pending_zone = LoadZone::Idle;
        let mut pending_count = 0u32;
        let mut zone_since = 0.0f64;
        let mut dwell_ema = 8.0 * cfg.poll_ms;

        // Accounting.
        let mut latencies: Vec<f64> = Vec::with_capacity(trace.len());
        let mut missed = 0usize;
        let mut with_deadline = 0usize;
        let mut energy_j = 0.0f64;
        let mut switches = 0usize;
        let mut suppressed = 0usize;
        let mut stalled_arrivals = 0usize;
        let mut time_in_switch = 0.0f64;
        let mut worst_switch = 0.0f64;
        let mut idle_polls = 0usize;

        loop {
            let serving = !queue.is_empty() && in_switch.is_none();
            let speed = current.as_f64() / f_ref.as_f64();

            // Next event: arrival, head-of-queue completion, switch landing
            // or control poll — whichever is soonest.
            let mut next = next_poll;
            if let Some(r) = trace.requests.get(next_arrival) {
                next = next.min(r.arrival_ms);
            }
            if serving && speed > 0.0 {
                let head = queue.front().expect("serving implies non-empty");
                next = next.min(now + head.remaining_ref_ms / speed);
            }
            if let Some((land, _)) = in_switch {
                next = next.min(land);
            }
            let dt = (next - now).max(0.0);

            // Advance: drain work, integrate energy.
            if dt > 0.0 {
                if serving {
                    if let Some(head) = queue.front_mut() {
                        head.remaining_ref_ms = (head.remaining_ref_ms - dt * speed).max(0.0);
                    }
                    busy_in_window += dt;
                    energy_j += self.power.energy_j(current, PhaseKind::ComputeBound, dt);
                } else {
                    // Idle or stalled mid-switch: near-static draw.
                    energy_j += self.power.energy_j(current, PhaseKind::Communication, dt);
                }
            }
            now = next;

            // Switch lands.
            if let Some((land, target)) = in_switch {
                if now >= land {
                    current = target;
                    in_switch = None;
                }
            }

            // Head-of-queue completion.
            while let Some(head) = queue.front() {
                if head.remaining_ref_ms > 1e-9 {
                    break;
                }
                let job = queue.pop_front().expect("front exists");
                latencies.push(now - job.arrival_ms);
                if let Some(d) = job.deadline_ms {
                    with_deadline += 1;
                    if now > d {
                        missed += 1;
                    }
                }
            }

            // Arrivals at this instant.
            while let Some(r) = trace.requests.get(next_arrival) {
                if r.arrival_ms > now {
                    break;
                }
                if in_switch.is_some() {
                    stalled_arrivals += 1;
                }
                queue.push_back(Job {
                    arrival_ms: r.arrival_ms,
                    remaining_ref_ms: r.work_ms,
                    deadline_ms: r.deadline_ms,
                });
                next_arrival += 1;
            }

            // Control poll.
            if now >= next_poll {
                let window = (now - window_start).max(1e-9);
                let utilisation = (busy_in_window / window).clamp(0.0, 1.0);
                let observed = cfg.classify(utilisation, queue.len());
                if observed == pending_zone {
                    pending_count += 1;
                } else {
                    pending_zone = observed;
                    pending_count = 1;
                }
                if pending_zone != applied_zone
                    && pending_count >= cfg.stability_needed(applied_zone, pending_zone)
                {
                    // Debounced zone change: update the dwell estimate and
                    // consult the policy.
                    let dwell = now - zone_since;
                    dwell_ema = 0.7 * dwell_ema + 0.3 * dwell;
                    applied_zone = pending_zone;
                    zone_since = now;
                    // While a switch is in flight the clock is undefined;
                    // decisions resume once it lands.
                    if in_switch.is_none() {
                        match policy.decide(applied_zone, current, &ladder, dwell_ema) {
                            Some(target) if target != current => {
                                let latency = replay.draw_ms(current, target);
                                in_switch = Some((now + latency, target));
                                switches += 1;
                                time_in_switch += latency;
                                worst_switch = worst_switch.max(latency);
                            }
                            _ => suppressed += 1,
                        }
                    }
                }
                busy_in_window = 0.0;
                window_start = now;
                let idle = applied_zone == LoadZone::Idle && queue.is_empty();
                if idle {
                    idle_polls += 1;
                    next_poll = now + cfg.idle_poll_ms;
                } else {
                    next_poll = now + cfg.poll_ms;
                }
            }

            let drained = next_arrival >= trace.len() && queue.is_empty() && in_switch.is_none();
            if drained || now >= cfg.max_virtual_ms {
                break;
            }
        }

        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let quantile = |q: f64| -> f64 {
            if latencies.is_empty() {
                return 0.0;
            }
            let idx = (q * (latencies.len() - 1) as f64).round() as usize;
            latencies[idx]
        };
        let mean = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };

        Scorecard {
            policy: policy.name().to_string(),
            traffic: trace.name.clone(),
            seed,
            requests: trace.len(),
            completed: latencies.len(),
            with_deadline,
            missed_deadlines: missed,
            mean_latency_ms: mean,
            p50_latency_ms: quantile(0.5),
            p99_latency_ms: quantile(0.99),
            runtime_ms: now,
            energy_j,
            switches,
            suppressed,
            stalled_arrivals,
            time_in_switch_ms: time_in_switch,
            worst_switch_ms: worst_switch,
            idle_polls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::PairLatency;
    use latest_traffic::{TrafficRegistry, TrafficShape, TrafficSpec};

    /// Dense table over four rungs with a flat `ms` latency everywhere.
    fn flat_table(ms: f64) -> LatencyTable {
        let freqs = [735u32, 930, 990, 1440];
        let mut t = LatencyTable::new("flat");
        for &a in &freqs {
            for &b in &freqs {
                if a != b {
                    t.insert(PairLatency::new(a, b, vec![ms, ms]));
                }
            }
        }
        t
    }

    /// Like the measured Quadro table: cheap pairs except pathologically
    /// slow transitions into the two middle rungs.
    fn pathological_table() -> LatencyTable {
        let freqs = [735u32, 930, 990, 1440];
        let mut t = LatencyTable::new("quadro-like");
        for &a in &freqs {
            for &b in &freqs {
                if a == b {
                    continue;
                }
                let ms = if b == 930 || b == 990 { 237.0 } else { 20.0 };
                t.insert(PairLatency::new(a, b, vec![ms, ms + 1.0]));
            }
        }
        t
    }

    fn daemon() -> GovernorDaemon {
        GovernorDaemon::new(
            DaemonConfig::default(),
            PowerModel::sxm_class(FreqMhz(1440)),
        )
    }

    fn bursty_trace() -> TrafficTrace {
        TrafficRegistry::builtin()
            .get("bursty")
            .unwrap()
            .generate()
            .unwrap()
    }

    #[test]
    fn zones_classify_and_rank() {
        let cfg = DaemonConfig::default();
        assert_eq!(cfg.classify(0.0, 0), LoadZone::Idle);
        assert_eq!(cfg.classify(0.05, 1), LoadZone::Low);
        assert_eq!(cfg.classify(0.3, 1), LoadZone::Medium);
        assert_eq!(cfg.classify(0.6, 1), LoadZone::High);
        assert_eq!(cfg.classify(0.95, 1), LoadZone::Saturated);
        assert_eq!(
            cfg.classify(0.0, 10),
            LoadZone::Saturated,
            "deep queue saturates"
        );
        assert!(LoadZone::Idle < LoadZone::Saturated);
    }

    #[test]
    fn ladder_spreads_zones_over_known_targets() {
        let ladder = ZoneLadder::from_table(&flat_table(5.0)).unwrap();
        assert_eq!(ladder.target(LoadZone::Idle), FreqMhz(735));
        assert_eq!(ladder.target(LoadZone::Low), FreqMhz(930));
        assert_eq!(ladder.target(LoadZone::Medium), FreqMhz(990));
        assert_eq!(ladder.target(LoadZone::High), FreqMhz(990));
        assert_eq!(ladder.target(LoadZone::Saturated), FreqMhz(1440));
        assert_eq!(ladder.max(), FreqMhz(1440));
        assert!(ZoneLadder::from_table(&LatencyTable::new("empty")).is_none());
    }

    #[test]
    fn run_at_max_never_switches_and_completes_everything() {
        let table = flat_table(5.0);
        let trace = bursty_trace();
        let mut replay = TransitionReplay::new(table, 1);
        let card = daemon().run(&RunAtMaxDaemon, &trace, &mut replay, 1);
        assert_eq!(card.switches, 0);
        assert_eq!(card.completed, card.requests);
        assert_eq!(card.time_in_switch_ms, 0.0);
        assert!(card.runtime_ms >= trace.last_arrival_ms());
    }

    #[test]
    fn oblivious_switches_and_stalls_under_bursts() {
        let trace = bursty_trace();
        let mut replay = TransitionReplay::new(pathological_table(), 2);
        let card = daemon().run(&LatencyObliviousDaemon, &trace, &mut replay, 2);
        assert!(card.switches > 0, "bursty load must trigger zone changes");
        assert!(card.time_in_switch_ms > 0.0);
        assert!(card.stalled_arrivals > 0, "bursts arrive mid-switch");
    }

    #[test]
    fn aware_strictly_beats_oblivious_on_missed_deadlines() {
        let trace = bursty_trace();
        let table = pathological_table();
        let mut replay_o = TransitionReplay::new(table.clone(), 3);
        let oblivious = daemon().run(&LatencyObliviousDaemon, &trace, &mut replay_o, 3);
        let mut replay_a = TransitionReplay::new(table.clone(), 3);
        let aware = daemon().run(&LatencyAwareDaemon::new(table), &trace, &mut replay_a, 3);
        assert!(
            aware.missed_deadlines < oblivious.missed_deadlines,
            "aware {} vs oblivious {}",
            aware.missed_deadlines,
            oblivious.missed_deadlines
        );
        assert!(aware.suppressed > 0, "awareness means declining switches");
    }

    #[test]
    fn same_seed_same_scorecard_bitwise() {
        let trace = bursty_trace();
        let table = pathological_table();
        let run = |seed| {
            let mut replay = TransitionReplay::new(table.clone(), seed);
            daemon()
                .run(&LatencyObliviousDaemon, &trace, &mut replay, seed)
                .to_json()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "the seed must matter");
    }

    #[test]
    fn idle_traffic_slow_polls() {
        let spec = TrafficSpec {
            name: "sparse".into(),
            shape: TrafficShape::Steady { rate_hz: 2.0 },
            duration_ms: 4_000.0,
            seed: 5,
            ..TrafficSpec::default()
        };
        let trace = spec.generate().unwrap();
        let mut replay = TransitionReplay::new(flat_table(5.0), 5);
        let card = daemon().run(&RunAtMaxDaemon, &trace, &mut replay, 5);
        assert!(card.idle_polls > 0, "sparse load must hit the idle path");
    }

    #[test]
    fn scorecard_round_trips_and_rates() {
        let trace = bursty_trace();
        let mut replay = TransitionReplay::new(flat_table(5.0), 9);
        let card = daemon().run(&RunAtMaxDaemon, &trace, &mut replay, 9);
        let parsed: Scorecard = serde_json::from_str(&card.to_json()).unwrap();
        assert_eq!(parsed, card);
        assert!(card.missed_rate() >= 0.0 && card.missed_rate() <= 1.0);
        let none = Scorecard {
            with_deadline: 0,
            missed_deadlines: 0,
            ..card
        };
        assert_eq!(none.missed_rate(), 0.0);
    }

    #[test]
    fn replay_seed_is_order_free_and_label_sensitive() {
        let a = replay_seed(42, "latency-aware", "bursty");
        assert_eq!(a, replay_seed(42, "latency-aware", "bursty"));
        assert_ne!(a, replay_seed(42, "latency-oblivious", "bursty"));
        assert_ne!(a, replay_seed(42, "latency-aware", "steady"));
        assert_ne!(a, replay_seed(43, "latency-aware", "bursty"));
        // The separator prevents (policy, traffic) concatenation collisions.
        assert_ne!(replay_seed(1, "ab", "c"), replay_seed(1, "a", "bc"),);
    }

    #[test]
    fn make_policy_knows_every_name() {
        let table = flat_table(5.0);
        for name in POLICY_NAMES {
            assert_eq!(make_policy(name, &table).unwrap().name(), *name);
        }
        assert!(make_policy("cargo-cult", &table).is_err());
    }
}
