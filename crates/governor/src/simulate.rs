//! Execute a governor policy over a phase trace and account runtime and
//! energy, replaying transition latencies from the measured distribution.
//!
//! The simulation applies the cost model the paper describes: while a
//! frequency change is in flight the device keeps executing at the *old*
//! frequency (the workload does not stop), and a change requested while a
//! previous transition is still in flight leaves the clock undefined — here
//! modelled, conservatively, as the new transition starting only after the
//! in-flight one completes, which is the back-to-back behaviour that makes
//! over-eager DVFS lose (cf. the COUNTDOWN discussion in Sec. III).

use latest_gpu_sim::freq::FreqMhz;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::phase::PhaseTrace;
use crate::policy::GovernorPolicy;
use crate::power::PowerModel;
use crate::table::LatencyTable;

/// Replayed transition cost: draw a latency from the measured sample of the
/// pair (uniformly, seeded), falling back to the table's typical latency
/// for pairs the campaign never measured.
#[derive(Clone, Debug)]
pub struct TransitionReplay {
    table: LatencyTable,
    rng: ChaCha8Rng,
    fallback_ms: f64,
}

impl TransitionReplay {
    /// Build a replay source from a measured table.
    pub fn new(table: LatencyTable, seed: u64) -> Self {
        let fallback_ms = table.typical_ms().unwrap_or(10.0);
        TransitionReplay {
            table,
            rng: ChaCha8Rng::seed_from_u64(seed),
            fallback_ms,
        }
    }

    /// The table latencies are drawn from.
    pub fn table(&self) -> &LatencyTable {
        &self.table
    }

    /// Draw the latency of one `init → target` transition (ms).
    pub fn draw_ms(&mut self, init: FreqMhz, target: FreqMhz) -> f64 {
        match self.table.pair(init, target) {
            Some(p) if !p.latencies_ms.is_empty() => {
                let idx = self.rng.gen_range(0..p.latencies_ms.len());
                p.latencies_ms[idx]
            }
            _ => self.fallback_ms,
        }
    }
}

/// Outcome of running one policy over one trace.
#[derive(Clone, Debug)]
pub struct GovernorReport {
    /// Policy name.
    pub policy: String,
    /// Trace name.
    pub trace: String,
    /// Total wall-clock runtime (ms), transitions included.
    pub runtime_ms: f64,
    /// Total energy (J).
    pub energy_j: f64,
    /// Frequency switches actually issued.
    pub switches: usize,
    /// Switch decisions suppressed (stayed although the kind changed).
    pub suppressed: usize,
    /// Total time spent with a transition in flight (ms).
    pub transition_ms: f64,
    /// Longest single transition paid (ms).
    pub worst_transition_ms: f64,
}

impl GovernorReport {
    /// Energy saving of `self` relative to `baseline` (fraction; positive
    /// is better).
    pub fn energy_saving_vs(&self, baseline: &GovernorReport) -> f64 {
        1.0 - self.energy_j / baseline.energy_j
    }

    /// Runtime extension relative to `baseline` (fraction; positive means
    /// slower).
    pub fn runtime_extension_vs(&self, baseline: &GovernorReport) -> f64 {
        self.runtime_ms / baseline.runtime_ms - 1.0
    }

    /// Energy-delay product (J·s) — the combined figure of merit.
    pub fn edp(&self) -> f64 {
        self.energy_j * self.runtime_ms / 1e3
    }
}

/// Run `policy` over `trace` on a device whose transitions replay from
/// `replay`, and account runtime/energy with `power`.
///
/// `reference` is the frequency the trace's phase durations are normalised
/// to (the device maximum).
pub fn simulate_policy(
    policy: &dyn GovernorPolicy,
    trace: &PhaseTrace,
    power: &PowerModel,
    replay: &mut TransitionReplay,
    reference: FreqMhz,
) -> GovernorReport {
    let mut current = policy.initial_frequency(trace);
    let mut runtime_ms = 0.0;
    let mut energy_j = 0.0;
    let mut switches = 0usize;
    let mut suppressed = 0usize;
    let mut transition_ms = 0.0;
    let mut worst_transition_ms: f64 = 0.0;
    // Time left on an in-flight transition and its landing frequency.
    let mut in_flight: Option<(f64, FreqMhz)> = None;

    for (index, phase) in trace.phases.iter().enumerate() {
        // Governor decision at the boundary (index 0 uses the initial
        // frequency, already applied for free before launch).
        if index > 0 {
            let decision = policy.decide(trace, index, in_flight.map_or(current, |(_, f)| f));
            match decision.set_frequency {
                Some(target) if target != current => {
                    // Requesting while a transition is in flight: the
                    // pending one must land first (undefined-clock guard),
                    // so its remaining time is paid on top and the device
                    // stays at the old clock throughout.
                    let queue_ms = in_flight.take().map_or(0.0, |(left, _)| left);
                    let latency = replay.draw_ms(current, target) + queue_ms;
                    in_flight = Some((latency, target));
                    switches += 1;
                    worst_transition_ms = worst_transition_ms.max(latency);
                }
                Some(_) => {}
                None => {
                    let want_changed =
                        index > 0 && trace.phases[index].kind != trace.phases[index - 1].kind;
                    if want_changed {
                        suppressed += 1;
                    }
                }
            }
        }

        // Execute the phase; a transition may land mid-phase.
        let mut remaining_work_ms = phase.ref_duration_ms; // in reference time
        while remaining_work_ms > 1e-12 {
            let (span_ref_ms, freq_now) = match in_flight {
                Some((left_ms, landing)) => {
                    // The device runs at `current` until the transition
                    // lands `left_ms` from now (wall time).
                    let wall_per_ref =
                        phase.duration_at_ms(current, reference) / phase.ref_duration_ms;
                    let ref_until_landing = left_ms / wall_per_ref;
                    if ref_until_landing >= remaining_work_ms {
                        // Lands after this phase ends.
                        let wall = remaining_work_ms * wall_per_ref;
                        in_flight = Some((left_ms - wall, landing));
                        transition_ms += wall;
                        (remaining_work_ms, current)
                    } else {
                        in_flight = None;
                        transition_ms += left_ms;
                        let f = current;
                        current = landing;
                        (ref_until_landing.max(0.0), f)
                    }
                }
                None => (remaining_work_ms, current),
            };
            let span_ref_ms = span_ref_ms.min(remaining_work_ms).max(0.0);
            if span_ref_ms <= 1e-12 {
                continue;
            }
            let wall_ms =
                span_ref_ms * phase.duration_at_ms(freq_now, reference) / phase.ref_duration_ms;
            runtime_ms += wall_ms;
            energy_j += power.energy_j(freq_now, phase.kind, wall_ms);
            remaining_work_ms -= span_ref_ms;
        }
    }

    // A transition still in flight at the end of the run: the clocks settle
    // after the last kernel; no extra runtime is charged.
    GovernorReport {
        policy: policy.name().to_string(),
        trace: trace.name.clone(),
        runtime_ms,
        energy_j,
        switches,
        suppressed,
        transition_ms,
        worst_transition_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::{Phase, PhaseKind, TraceGenerator};
    use crate::policy::{LatencyAware, LatencyOblivious, RunAtMax};
    use crate::table::PairLatency;

    const MIN: FreqMhz = FreqMhz(210);
    const MAX: FreqMhz = FreqMhz(1410);

    fn flat_table(ms: f64) -> LatencyTable {
        let freqs = [210u32, 1058, 1410];
        let mut t = LatencyTable::new("flat");
        for &a in &freqs {
            for &b in &freqs {
                if a != b {
                    t.insert(PairLatency::new(a, b, vec![ms]));
                }
            }
        }
        t
    }

    fn power() -> PowerModel {
        PowerModel::sxm_class(MAX)
    }

    #[test]
    fn run_at_max_runtime_equals_trace_reference_runtime() {
        let trace = TraceGenerator::new(5).llm_training(4, 100.0);
        let mut replay = TransitionReplay::new(flat_table(5.0), 1);
        let r = simulate_policy(&RunAtMax { f_max: MAX }, &trace, &power(), &mut replay, MAX);
        let expected = trace.runtime_at_ms(MAX, MAX);
        assert!((r.runtime_ms - expected).abs() < 1e-6);
        assert_eq!(r.switches, 0);
        assert_eq!(r.transition_ms, 0.0);
    }

    #[test]
    fn oblivious_pays_transition_time() {
        let trace = TraceGenerator::new(5).iterative_solver(5, 100.0);
        let table = flat_table(20.0);
        let mut replay = TransitionReplay::new(table, 2);
        let r = simulate_policy(
            &LatencyOblivious {
                f_min: MIN,
                f_max: MAX,
            },
            &trace,
            &power(),
            &mut replay,
            MAX,
        );
        assert_eq!(r.switches, trace.n_boundaries());
        assert!(r.transition_ms > 0.0);
        assert!(r.worst_transition_ms >= 20.0);
    }

    #[test]
    fn aware_beats_oblivious_on_short_phases_with_slow_transitions() {
        // Phases of ~30/18 ms against 100 ms transitions: the oblivious
        // governor churns, the aware one locks a frequency and stays.
        let trace = TraceGenerator::new(5).streaming_bursts(30, 30.0);
        let table = flat_table(100.0);
        let power = power();
        let oblivious = {
            let mut replay = TransitionReplay::new(table.clone(), 3);
            simulate_policy(
                &LatencyOblivious {
                    f_min: MIN,
                    f_max: MAX,
                },
                &trace,
                &power,
                &mut replay,
                MAX,
            )
        };
        let aware = {
            let mut replay = TransitionReplay::new(table.clone(), 3);
            simulate_policy(
                &LatencyAware::new(table, MIN, MAX),
                &trace,
                &power,
                &mut replay,
                MAX,
            )
        };
        assert!(aware.switches < oblivious.switches);
        assert!(aware.suppressed > 0);
        assert!(
            aware.edp() < oblivious.edp(),
            "aware EDP {} vs oblivious {}",
            aware.edp(),
            oblivious.edp()
        );
    }

    #[test]
    fn transition_lands_mid_phase_and_splits_accounting() {
        // One compute phase at max, then a long communication phase with a
        // 50 ms transition to the floor landing inside it.
        let trace = PhaseTrace {
            name: "two-phase".into(),
            phases: vec![
                Phase {
                    kind: PhaseKind::ComputeBound,
                    ref_duration_ms: 100.0,
                },
                Phase {
                    kind: PhaseKind::Communication,
                    ref_duration_ms: 1_000.0,
                },
            ],
        };
        let mut table = LatencyTable::new("one");
        table.insert(PairLatency::new(1410, 210, vec![50.0]));
        let mut replay = TransitionReplay::new(table.clone(), 4);
        let r = simulate_policy(
            &LatencyAware::new(table, MIN, MAX),
            &trace,
            &power(),
            &mut replay,
            MAX,
        );
        assert_eq!(r.switches, 1);
        assert!((r.transition_ms - 50.0).abs() < 1e-6);
        // Communication is frequency-invariant, so runtime is unchanged,
        // but 50 ms of it ran at the old (max) clock: energy must sit
        // between all-floor and all-max for that phase.
        let e_floor = power().energy_j(MIN, PhaseKind::Communication, 1_000.0);
        let e_max = power().energy_j(MAX, PhaseKind::Communication, 1_000.0);
        let e_phase0 = power().energy_j(MAX, PhaseKind::ComputeBound, 100.0);
        let e_comm = r.energy_j - e_phase0;
        assert!(
            e_comm > e_floor && e_comm < e_max,
            "{e_comm} vs [{e_floor}, {e_max}]"
        );
    }

    #[test]
    fn replay_draws_from_the_measured_sample() {
        let mut table = LatencyTable::new("x");
        table.insert(PairLatency::new(1000, 2000, vec![3.0, 7.0, 11.0]));
        let mut replay = TransitionReplay::new(table, 5);
        for _ in 0..50 {
            let d = replay.draw_ms(FreqMhz(1000), FreqMhz(2000));
            assert!([3.0, 7.0, 11.0].contains(&d));
        }
        // Unmeasured pair: fall back to the typical latency (median of
        // means = 7.0).
        let d = replay.draw_ms(FreqMhz(2000), FreqMhz(1000));
        assert!((d - 7.0).abs() < 1e-9);
    }

    #[test]
    fn replay_is_deterministic_per_seed_and_differs_across_seeds() {
        let mut table = LatencyTable::new("x");
        table.insert(PairLatency::new(
            1000,
            2000,
            (0..64).map(f64::from).collect(),
        ));
        let draw = |seed: u64| -> Vec<f64> {
            let mut replay = TransitionReplay::new(table.clone(), seed);
            (0..32)
                .map(|_| replay.draw_ms(FreqMhz(1000), FreqMhz(2000)))
                .collect()
        };
        assert_eq!(draw(11), draw(11), "same seed must replay identically");
        assert_ne!(draw(11), draw(12), "reseeding must change the stream");
    }

    #[test]
    fn absent_pair_always_falls_back_without_consuming_randomness() {
        let mut table = LatencyTable::new("x");
        table.insert(PairLatency::new(1000, 2000, vec![3.0, 7.0, 11.0]));
        // Interleave absent-pair draws between measured draws: the measured
        // stream must be unchanged versus drawing them back to back,
        // because fallback draws consume no RNG state.
        let plain: Vec<f64> = {
            let mut r = TransitionReplay::new(table.clone(), 6);
            (0..16)
                .map(|_| r.draw_ms(FreqMhz(1000), FreqMhz(2000)))
                .collect()
        };
        let interleaved: Vec<f64> = {
            let mut r = TransitionReplay::new(table.clone(), 6);
            (0..16)
                .map(|_| {
                    let absent = r.draw_ms(FreqMhz(9999), FreqMhz(1));
                    assert!((absent - 7.0).abs() < 1e-9, "fallback is typical_ms");
                    r.draw_ms(FreqMhz(1000), FreqMhz(2000))
                })
                .collect()
        };
        assert_eq!(plain, interleaved);
        // Empty table: the fallback falls back again, to a fixed constant.
        let mut empty = TransitionReplay::new(LatencyTable::new("none"), 6);
        assert!((empty.draw_ms(FreqMhz(1), FreqMhz(2)) - 10.0).abs() < 1e-9);
    }
}
