//! Phase-structured workload model.
//!
//! Complex applications "usually have different hardware requirements in
//! time, their performance is bounded by a different subsystem (compute,
//! memory, IO, etc.)" (Sec. III). A [`PhaseTrace`] is the sequence of such
//! regions; the governor decides at each boundary whether changing the
//! frequency pays for its switching latency — the COUNTDOWN-style boundary
//! classification the paper cites, but with *measured* GPU latencies in
//! place of the 500 µs CPU rule of thumb.

use latest_gpu_sim::freq::FreqMhz;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// What bounds a phase's performance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Arithmetic-throughput bound: runtime scales ~1/f. Wants max clocks.
    ComputeBound,
    /// HBM-bandwidth bound: runtime barely improves with SM clock. Wants
    /// the knee frequency (the ~75 % sweet spot of the paper's ref. 9).
    MemoryBound,
    /// Host/device transfer or communication wait: runtime independent of
    /// the SM clock. Wants the floor frequency.
    Communication,
}

impl PhaseKind {
    /// Fraction of the phase's work that scales with SM frequency.
    pub fn frequency_sensitivity(self) -> f64 {
        match self {
            PhaseKind::ComputeBound => 0.95,
            PhaseKind::MemoryBound => 0.25,
            PhaseKind::Communication => 0.0,
        }
    }

    /// The frequency a per-phase oracle picks from `ladder_min..=ladder_max`
    /// under a "no meaningful slowdown" constraint.
    pub fn preferred_frequency(self, min: FreqMhz, max: FreqMhz) -> FreqMhz {
        match self {
            PhaseKind::ComputeBound => max,
            // ~75 % of max: the energy/performance balance point the paper
            // cites from the hipBone/Stream study.
            PhaseKind::MemoryBound => FreqMhz((max.0 as f64 * 0.75) as u32),
            PhaseKind::Communication => min,
        }
    }
}

/// One application region.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Phase {
    /// What bounds it.
    pub kind: PhaseKind,
    /// Duration in ms when executed at the reference (max) frequency.
    pub ref_duration_ms: f64,
}

impl Phase {
    /// Runtime of this phase at `freq`, given the reference (max) frequency.
    ///
    /// The classic frequency-scaling model: the sensitive fraction scales
    /// inversely with frequency, the rest is invariant.
    pub fn duration_at_ms(&self, freq: FreqMhz, reference: FreqMhz) -> f64 {
        let s = self.kind.frequency_sensitivity();
        let ratio = reference.as_f64() / freq.as_f64();
        self.ref_duration_ms * ((1.0 - s) + s * ratio)
    }
}

/// A sequence of phases — one application execution.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PhaseTrace {
    /// Human-readable workload name.
    pub name: String,
    /// The phases in execution order.
    pub phases: Vec<Phase>,
}

impl PhaseTrace {
    /// Total runtime at a fixed frequency (no switches).
    pub fn runtime_at_ms(&self, freq: FreqMhz, reference: FreqMhz) -> f64 {
        self.phases
            .iter()
            .map(|p| p.duration_at_ms(freq, reference))
            .sum()
    }

    /// Number of phase boundaries (switch opportunities).
    pub fn n_boundaries(&self) -> usize {
        self.phases.len().saturating_sub(1)
    }
}

/// Seeded generator of synthetic phase traces for the workload classes the
/// paper's introduction motivates.
#[derive(Clone, Debug)]
pub struct TraceGenerator {
    rng: ChaCha8Rng,
}

impl TraceGenerator {
    /// Deterministic generator from a seed.
    pub fn new(seed: u64) -> Self {
        TraceGenerator {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    fn jitter(&mut self, base_ms: f64, rel: f64) -> f64 {
        let f: f64 = self.rng.gen_range(-rel..=rel);
        (base_ms * (1.0 + f)).max(0.1)
    }

    /// LLM-training-like trace: long compute-bound steps separated by
    /// short memory-bound optimizer/allreduce regions. Long phases amortise
    /// almost any switching latency.
    pub fn llm_training(&mut self, steps: usize, step_ms: f64) -> PhaseTrace {
        let mut phases = Vec::with_capacity(steps * 2);
        for _ in 0..steps {
            phases.push(Phase {
                kind: PhaseKind::ComputeBound,
                ref_duration_ms: self.jitter(step_ms, 0.15),
            });
            phases.push(Phase {
                kind: PhaseKind::MemoryBound,
                ref_duration_ms: self.jitter(step_ms * 0.35, 0.25),
            });
        }
        PhaseTrace {
            name: format!("llm-training-{steps}x{step_ms}ms"),
            phases,
        }
    }

    /// Iterative-solver-like trace: medium compute phases with communication
    /// waits between halo exchanges. Phase lengths sit near the GPU
    /// switching-latency scale, which is exactly where latency-oblivious
    /// DVFS loses.
    pub fn iterative_solver(&mut self, iterations: usize, compute_ms: f64) -> PhaseTrace {
        let mut phases = Vec::with_capacity(iterations * 2);
        for _ in 0..iterations {
            phases.push(Phase {
                kind: PhaseKind::ComputeBound,
                ref_duration_ms: self.jitter(compute_ms, 0.2),
            });
            phases.push(Phase {
                kind: PhaseKind::Communication,
                ref_duration_ms: self.jitter(compute_ms * 0.4, 0.4),
            });
        }
        PhaseTrace {
            name: format!("iterative-solver-{iterations}x{compute_ms}ms"),
            phases,
        }
    }

    /// Streaming-analytics-like trace: alternating short memory-bound bursts
    /// and short communication gaps — the hostile case where most switches
    /// cannot be amortised at all.
    pub fn streaming_bursts(&mut self, bursts: usize, burst_ms: f64) -> PhaseTrace {
        let mut phases = Vec::with_capacity(bursts * 2);
        for _ in 0..bursts {
            phases.push(Phase {
                kind: PhaseKind::MemoryBound,
                ref_duration_ms: self.jitter(burst_ms, 0.3),
            });
            phases.push(Phase {
                kind: PhaseKind::Communication,
                ref_duration_ms: self.jitter(burst_ms * 0.6, 0.3),
            });
        }
        PhaseTrace {
            name: format!("streaming-{bursts}x{burst_ms}ms"),
            phases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REF: FreqMhz = FreqMhz(1410);

    #[test]
    fn compute_phase_scales_with_frequency() {
        let p = Phase {
            kind: PhaseKind::ComputeBound,
            ref_duration_ms: 100.0,
        };
        let at_half = p.duration_at_ms(FreqMhz(705), REF);
        // 95 % sensitive: 100 * (0.05 + 0.95 * 2) = 195 ms.
        assert!((at_half - 195.0).abs() < 1e-9, "{at_half}");
        assert_eq!(p.duration_at_ms(REF, REF), 100.0);
    }

    #[test]
    fn communication_phase_is_frequency_invariant() {
        let p = Phase {
            kind: PhaseKind::Communication,
            ref_duration_ms: 50.0,
        };
        assert_eq!(p.duration_at_ms(FreqMhz(210), REF), 50.0);
        assert_eq!(p.duration_at_ms(REF, REF), 50.0);
    }

    #[test]
    fn preferred_frequencies_are_ordered() {
        let (min, max) = (FreqMhz(210), FreqMhz(1410));
        let comm = PhaseKind::Communication.preferred_frequency(min, max);
        let mem = PhaseKind::MemoryBound.preferred_frequency(min, max);
        let comp = PhaseKind::ComputeBound.preferred_frequency(min, max);
        assert!(comm < mem && mem < comp);
        assert_eq!(comp, max);
        assert_eq!(comm, min);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = TraceGenerator::new(9).llm_training(5, 300.0);
        let b = TraceGenerator::new(9).llm_training(5, 300.0);
        let c = TraceGenerator::new(10).llm_training(5, 300.0);
        let durs = |t: &PhaseTrace| {
            t.phases
                .iter()
                .map(|p| p.ref_duration_ms)
                .collect::<Vec<_>>()
        };
        assert_eq!(durs(&a), durs(&b));
        assert_ne!(durs(&a), durs(&c));
    }

    #[test]
    fn trace_runtime_sums_phases() {
        let t = TraceGenerator::new(1).iterative_solver(10, 40.0);
        assert_eq!(t.phases.len(), 20);
        assert_eq!(t.n_boundaries(), 19);
        let total = t.runtime_at_ms(REF, REF);
        let by_hand: f64 = t.phases.iter().map(|p| p.ref_duration_ms).sum();
        assert!((total - by_hand).abs() < 1e-9);
    }
}
