//! Frequency-to-power model and energy accounting.
//!
//! The governor's objective is energy, so executions need a power model.
//! We use the standard decomposition `P(f) = P_static + P_dyn·(f/f_max)³`
//! (dynamic CMOS power scales with `f·V²` and voltage tracks frequency on
//! the DVFS curve, giving the cubic), scaled by how hard the phase drives
//! the SMs. The absolute watts are nominal per device; the governor
//! comparison only needs the *relative* shape, which the cubic preserves.

use latest_gpu_sim::freq::FreqMhz;
use serde::{Deserialize, Serialize};

use crate::phase::PhaseKind;

/// Cubic DVFS power model for one device.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PowerModel {
    /// Static/idle power (W): leakage, HBM refresh, fans.
    pub static_w: f64,
    /// Dynamic power at `f_max` under full compute load (W).
    pub dynamic_max_w: f64,
    /// The frequency the dynamic term is normalised to.
    pub f_max: FreqMhz,
}

impl PowerModel {
    /// A400 W-class SXM accelerator (A100-like nominal numbers).
    pub fn sxm_class(f_max: FreqMhz) -> Self {
        PowerModel {
            static_w: 90.0,
            dynamic_max_w: 310.0,
            f_max,
        }
    }

    /// How hard each phase kind drives the dynamic part.
    fn activity(kind: PhaseKind) -> f64 {
        match kind {
            PhaseKind::ComputeBound => 1.0,
            PhaseKind::MemoryBound => 0.55,
            PhaseKind::Communication => 0.12,
        }
    }

    /// Power draw (W) at `freq` while executing a phase of `kind`.
    pub fn power_w(&self, freq: FreqMhz, kind: PhaseKind) -> f64 {
        let ratio = freq.as_f64() / self.f_max.as_f64();
        self.static_w + self.dynamic_max_w * Self::activity(kind) * ratio.powi(3)
    }

    /// Energy (J) of executing a phase of `kind` for `duration_ms` at `freq`.
    pub fn energy_j(&self, freq: FreqMhz, kind: PhaseKind, duration_ms: f64) -> f64 {
        self.power_w(freq, kind) * duration_ms / 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAX: FreqMhz = FreqMhz(1410);

    #[test]
    fn power_is_monotone_in_frequency() {
        let m = PowerModel::sxm_class(MAX);
        let mut last = 0.0;
        for mhz in [210u32, 705, 1095, 1410] {
            let p = m.power_w(FreqMhz(mhz), PhaseKind::ComputeBound);
            assert!(p > last, "{mhz} MHz: {p} W");
            last = p;
        }
        // Full load at f_max is static + dynamic.
        assert!((last - 400.0).abs() < 1e-9);
    }

    #[test]
    fn communication_draws_mostly_static_power() {
        let m = PowerModel::sxm_class(MAX);
        let comm = m.power_w(MAX, PhaseKind::Communication);
        let comp = m.power_w(MAX, PhaseKind::ComputeBound);
        assert!(comm < 0.4 * comp, "comm {comm} W vs compute {comp} W");
        assert!(comm > m.static_w);
    }

    #[test]
    fn cubic_scaling_halves_to_an_eighth() {
        let m = PowerModel {
            static_w: 0.0,
            dynamic_max_w: 320.0,
            f_max: MAX,
        };
        let full = m.power_w(MAX, PhaseKind::ComputeBound);
        let half = m.power_w(FreqMhz(705), PhaseKind::ComputeBound);
        assert!((full / half - 8.0).abs() < 0.01, "ratio {}", full / half);
    }

    #[test]
    fn energy_integrates_power_over_time() {
        let m = PowerModel::sxm_class(MAX);
        let e = m.energy_j(MAX, PhaseKind::ComputeBound, 2_000.0);
        assert!((e - 800.0).abs() < 1e-9); // 400 W * 2 s
    }
}
