//! The switching-latency knowledge base a runtime system deploys.
//!
//! A [`LatencyTable`] holds, per ordered frequency pair, the outlier-filtered
//! latency sample measured by a LATEST campaign. The governor queries it for
//! expected and tail latencies, and for the *avoid list* — pairs whose
//! overhead is pathological compared to their neighbours (Sec. VIII: "the
//! runtime system may avoid some frequency transitions, which show overhead
//! higher than other frequency pairs").

use std::collections::BTreeMap;
use std::fmt;

use latest_core::{CampaignResult, OutcomeKind};
use latest_gpu_sim::freq::FreqMhz;
use latest_stats::Summary;
use serde::{Deserialize, Serialize};

/// Why pairs of a campaign did *not* make it into a [`LatencyTable`].
///
/// `from_campaign` used to drop these silently; a governor deployed from a
/// partial campaign should know how partial its knowledge base is.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SkippedPairs {
    /// Abandoned on a power event.
    pub power_limited: usize,
    /// Statistically indistinguishable in phase 1 (no latency to tabulate).
    pub indistinguishable: usize,
    /// Every measurement attempt failed evaluation.
    pub retries_exhausted: usize,
    /// Never scheduled before the session was cancelled.
    pub cancelled: usize,
    /// Completed, but outlier filtering left no sample.
    pub empty_filtered: usize,
}

impl SkippedPairs {
    /// Total pairs skipped.
    pub fn total(&self) -> usize {
        self.power_limited
            + self.indistinguishable
            + self.retries_exhausted
            + self.cancelled
            + self.empty_filtered
    }

    /// Whether nothing was skipped (the table covers the whole campaign).
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }
}

impl fmt::Display for SkippedPairs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} pairs skipped ({} power-limited, {} indistinguishable, \
             {} retries-exhausted, {} cancelled, {} empty after filtering)",
            self.total(),
            self.power_limited,
            self.indistinguishable,
            self.retries_exhausted,
            self.cancelled,
            self.empty_filtered
        )
    }
}

/// Measured switching-latency record for one ordered frequency pair.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PairLatency {
    /// Initial frequency (MHz).
    pub init_mhz: u32,
    /// Target frequency (MHz).
    pub target_mhz: u32,
    /// Outlier-filtered latencies (ms), sorted ascending.
    pub latencies_ms: Vec<f64>,
}

impl PairLatency {
    /// Build from an unsorted sample.
    pub fn new(init_mhz: u32, target_mhz: u32, mut latencies_ms: Vec<f64>) -> Self {
        latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        PairLatency {
            init_mhz,
            target_mhz,
            latencies_ms,
        }
    }

    /// Mean latency (ms).
    pub fn mean_ms(&self) -> f64 {
        if self.latencies_ms.is_empty() {
            return f64::NAN;
        }
        self.latencies_ms.iter().sum::<f64>() / self.latencies_ms.len() as f64
    }

    /// Latency at quantile `q` in `[0, 1]` (nearest-rank on the sorted
    /// sample).
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return f64::NAN;
        }
        let idx = ((q.clamp(0.0, 1.0)) * (self.latencies_ms.len() - 1) as f64).round() as usize;
        self.latencies_ms[idx]
    }

    /// Summary statistics of the sample.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.latencies_ms)
    }
}

/// Per-device table of measured switching latencies.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
#[serde(from = "LatencyTableRepr", into = "LatencyTableRepr")]
pub struct LatencyTable {
    /// Device the table was measured on.
    pub device_name: String,
    entries: BTreeMap<(u32, u32), PairLatency>,
}

/// JSON shape of a [`LatencyTable`]: a flat pair list (JSON map keys must be
/// strings, so the tuple-keyed map cannot serialise directly).
#[derive(Serialize, Deserialize)]
struct LatencyTableRepr {
    device_name: String,
    pairs: Vec<PairLatency>,
}

impl From<LatencyTableRepr> for LatencyTable {
    fn from(repr: LatencyTableRepr) -> Self {
        let mut table = LatencyTable::new(repr.device_name);
        for pair in repr.pairs {
            table.insert(pair);
        }
        table
    }
}

impl From<LatencyTable> for LatencyTableRepr {
    fn from(table: LatencyTable) -> Self {
        LatencyTableRepr {
            device_name: table.device_name,
            pairs: table.entries.into_values().collect(),
        }
    }
}

impl LatencyTable {
    /// Empty table for `device_name`.
    pub fn new(device_name: impl Into<String>) -> Self {
        LatencyTable {
            device_name: device_name.into(),
            entries: BTreeMap::new(),
        }
    }

    /// Build from a completed LATEST campaign, taking each pair's
    /// outlier-filtered latencies (selected through
    /// [`latest_core::view::LatencyView`]). Non-completed pairs are
    /// dropped; use [`LatencyTable::from_campaign_counting`] to see how
    /// many, and why.
    pub fn from_campaign(result: &CampaignResult) -> Self {
        Self::from_campaign_counting(result).0
    }

    /// Like [`LatencyTable::from_campaign`], but also reports every pair
    /// that did *not* make it into the table, classified by cause.
    pub fn from_campaign_counting(result: &CampaignResult) -> (Self, SkippedPairs) {
        let mut table = LatencyTable::new(result.device_name.clone());
        let mut skipped = SkippedPairs::default();
        for pair in result.pairs() {
            match pair.outcome.kind() {
                OutcomeKind::Completed => {
                    match pair.analysis.as_ref().filter(|a| !a.inliers_ms.is_empty()) {
                        Some(a) => table.insert(PairLatency::new(
                            pair.init_mhz(),
                            pair.target_mhz(),
                            a.inliers_ms.clone(),
                        )),
                        None => skipped.empty_filtered += 1,
                    }
                }
                OutcomeKind::PowerLimited => skipped.power_limited += 1,
                OutcomeKind::Indistinguishable => skipped.indistinguishable += 1,
                OutcomeKind::RetriesExhausted => skipped.retries_exhausted += 1,
                OutcomeKind::Cancelled => skipped.cancelled += 1,
            }
        }
        (table, skipped)
    }

    /// Insert or replace one pair's record.
    pub fn insert(&mut self, pair: PairLatency) {
        self.entries.insert((pair.init_mhz, pair.target_mhz), pair);
    }

    /// Number of pairs with data.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The record for `init → target`, if measured.
    pub fn pair(&self, init: FreqMhz, target: FreqMhz) -> Option<&PairLatency> {
        self.entries.get(&(init.0, target.0))
    }

    /// All measured pairs.
    pub fn pairs(&self) -> impl Iterator<Item = &PairLatency> {
        self.entries.values()
    }

    /// Expected (mean) latency of `init → target` in ms. `None` when the
    /// pair was never measured (a governor must then treat it as unknown,
    /// not as free).
    pub fn expected_ms(&self, init: FreqMhz, target: FreqMhz) -> Option<f64> {
        self.pair(init, target).map(PairLatency::mean_ms)
    }

    /// Tail (quantile-`q`) latency of `init → target` in ms.
    pub fn tail_ms(&self, init: FreqMhz, target: FreqMhz, q: f64) -> Option<f64> {
        self.pair(init, target).map(|p| p.quantile_ms(q))
    }

    /// Median of all pair mean latencies — the table's "typical" cost.
    pub fn typical_ms(&self) -> Option<f64> {
        let mut means: Vec<f64> = self.entries.values().map(PairLatency::mean_ms).collect();
        if means.is_empty() {
            return None;
        }
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Some(means[means.len() / 2])
    }

    /// Whether `init → target` is *pathological*: its mean latency exceeds
    /// `factor` times the table's typical latency. These are the pairs the
    /// paper recommends a runtime system avoid.
    pub fn is_pathological(&self, init: FreqMhz, target: FreqMhz, factor: f64) -> bool {
        match (self.expected_ms(init, target), self.typical_ms()) {
            (Some(mean), Some(typical)) => mean > factor * typical,
            _ => false,
        }
    }

    /// All pathological pairs under `factor` (the avoid list).
    pub fn avoid_list(&self, factor: f64) -> Vec<(u32, u32)> {
        let Some(typical) = self.typical_ms() else {
            return Vec::new();
        };
        self.entries
            .values()
            .filter(|p| p.mean_ms() > factor * typical)
            .map(|p| (p.init_mhz, p.target_mhz))
            .collect()
    }

    /// Frequencies appearing as a target anywhere in the table, ascending.
    pub fn known_targets(&self) -> Vec<FreqMhz> {
        let mut targets: Vec<u32> = self.entries.keys().map(|&(_, t)| t).collect();
        targets.sort_unstable();
        targets.dedup();
        targets.into_iter().map(FreqMhz).collect()
    }

    /// The cheapest measured alternative to `init → target` among targets
    /// within `±window_mhz` of the desired target (the desired pair
    /// included). Returns the chosen target and its expected latency.
    ///
    /// This is the table-driven detour a latency-aware governor takes when
    /// the straight transition is pathological: a neighbouring frequency
    /// with near-identical power/performance but an order of magnitude
    /// cheaper transition.
    pub fn cheapest_near(
        &self,
        init: FreqMhz,
        target: FreqMhz,
        window_mhz: u32,
    ) -> Option<(FreqMhz, f64)> {
        self.known_targets()
            .into_iter()
            .filter(|t| t.0.abs_diff(target.0) <= window_mhz)
            .filter_map(|t| self.expected_ms(init, t).map(|ms| (t, ms)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
    }

    /// Serialise to JSON (the deployment artefact a runtime system ships).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serialises")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> LatencyTable {
        let mut t = LatencyTable::new("TestGPU");
        t.insert(PairLatency::new(1000, 1500, vec![5.0, 5.5, 6.0, 5.2]));
        t.insert(PairLatency::new(1500, 1000, vec![4.0, 4.2, 4.1]));
        t.insert(PairLatency::new(1000, 1200, vec![200.0, 210.0, 190.0]));
        t.insert(PairLatency::new(1500, 1200, vec![150.0, 160.0]));
        t.insert(PairLatency::new(1200, 1000, vec![5.0, 5.1]));
        t
    }

    #[test]
    fn mean_and_quantiles_on_sorted_sample() {
        let p = PairLatency::new(1000, 1500, vec![6.0, 5.0, 7.0, 8.0]);
        assert_eq!(p.latencies_ms, vec![5.0, 6.0, 7.0, 8.0]);
        assert!((p.mean_ms() - 6.5).abs() < 1e-12);
        assert_eq!(p.quantile_ms(0.0), 5.0);
        assert_eq!(p.quantile_ms(1.0), 8.0);
        assert_eq!(p.quantile_ms(0.5), 7.0); // nearest rank on 4 samples
    }

    #[test]
    fn pathological_pairs_detected_against_typical() {
        let t = sample_table();
        // typical (median of means) is ~5.05; the 1000->1200 pair at 200 ms
        // is pathological under any reasonable factor.
        assert!(t.is_pathological(FreqMhz(1000), FreqMhz(1200), 10.0));
        assert!(!t.is_pathological(FreqMhz(1000), FreqMhz(1500), 10.0));
        let avoid = t.avoid_list(10.0);
        assert!(avoid.contains(&(1000, 1200)));
        assert!(avoid.contains(&(1500, 1200)));
        assert_eq!(avoid.len(), 2);
    }

    #[test]
    fn unknown_pair_is_none_not_zero() {
        let t = sample_table();
        assert_eq!(t.expected_ms(FreqMhz(1200), FreqMhz(1500)), None);
    }

    #[test]
    fn cheapest_near_takes_the_detour() {
        let t = sample_table();
        // Straight 1000->1200 costs ~200 ms; the 1500 target is outside a
        // 100 MHz window, so the detour is not available...
        let (choice, ms) = t.cheapest_near(FreqMhz(1000), FreqMhz(1200), 100).unwrap();
        assert_eq!(choice, FreqMhz(1200));
        assert!(ms > 100.0);
        // ...but a 300 MHz window admits 1500 at ~5.4 ms.
        let (choice, ms) = t.cheapest_near(FreqMhz(1000), FreqMhz(1200), 300).unwrap();
        assert_eq!(choice, FreqMhz(1500));
        assert!(ms < 10.0);
    }

    #[test]
    fn json_round_trip() {
        let t = sample_table();
        let parsed = LatencyTable::from_json(&t.to_json()).unwrap();
        assert_eq!(parsed.len(), t.len());
        assert_eq!(
            parsed.expected_ms(FreqMhz(1000), FreqMhz(1500)),
            t.expected_ms(FreqMhz(1000), FreqMhz(1500))
        );
        assert_eq!(parsed.device_name, "TestGPU");
    }

    #[test]
    fn empty_table_has_no_typical_or_avoid_list() {
        let t = LatencyTable::new("empty");
        assert!(t.is_empty());
        assert_eq!(t.typical_ms(), None);
        assert!(t.avoid_list(2.0).is_empty());
        assert!(!t.is_pathological(FreqMhz(1), FreqMhz(2), 2.0));
    }
}
