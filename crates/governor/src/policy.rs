//! Governor policies: how a runtime system picks the frequency at each
//! phase boundary.
//!
//! Four policies bracket the design space:
//!
//! * [`RunAtMax`] — the reference: no DVFS, maximum performance and energy.
//! * [`StaticOracle`] — static tuning (Sec. III): the single best frequency
//!   applied for the whole execution, chosen with full knowledge of the
//!   trace. The ceiling of what static tuning can save.
//! * [`LatencyOblivious`] — per-phase DVFS that switches to every phase's
//!   preferred frequency at every boundary, assuming switches are free.
//!   This is what a CPU-derived runtime system does when transplanted to a
//!   GPU without switching-latency knowledge.
//! * [`LatencyAware`] — consumes the measured [`LatencyTable`]: it switches
//!   only when the upcoming phase amortises the expected latency, and it
//!   detours around pathological pairs via [`LatencyTable::cheapest_near`].

use latest_gpu_sim::freq::FreqMhz;

use crate::phase::{Phase, PhaseTrace};
use crate::power::PowerModel;
use crate::table::LatencyTable;

/// A frequency decision for one phase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Decision {
    /// Frequency to run the phase at. `None` = stay at the current one.
    pub set_frequency: Option<FreqMhz>,
}

impl Decision {
    /// Keep the current frequency.
    pub fn stay() -> Self {
        Decision {
            set_frequency: None,
        }
    }

    /// Request `f` before the phase starts.
    pub fn switch_to(f: FreqMhz) -> Self {
        Decision {
            set_frequency: Some(f),
        }
    }
}

/// A DVFS governor: decides the frequency for each upcoming phase.
pub trait GovernorPolicy {
    /// Human-readable policy name for reports.
    fn name(&self) -> &str;

    /// Frequency to start the execution at.
    fn initial_frequency(&self, trace: &PhaseTrace) -> FreqMhz;

    /// Decide for the phase at `index` (current device frequency given).
    fn decide(&self, trace: &PhaseTrace, index: usize, current: FreqMhz) -> Decision;
}

/// No DVFS: lock the maximum frequency for the whole run.
#[derive(Clone, Debug)]
pub struct RunAtMax {
    /// The device's maximum frequency.
    pub f_max: FreqMhz,
}

impl GovernorPolicy for RunAtMax {
    fn name(&self) -> &str {
        "run-at-max"
    }

    fn initial_frequency(&self, _trace: &PhaseTrace) -> FreqMhz {
        self.f_max
    }

    fn decide(&self, _trace: &PhaseTrace, _index: usize, _current: FreqMhz) -> Decision {
        Decision::stay()
    }
}

/// Static tuning: one frequency for the whole run, chosen offline by
/// minimising modelled energy subject to a runtime-extension budget.
#[derive(Clone, Debug)]
pub struct StaticOracle {
    chosen: FreqMhz,
}

impl StaticOracle {
    /// Evaluate every candidate frequency over the whole trace and keep the
    /// one with the lowest energy whose runtime stays within
    /// `(1 + slack) ×` the run-at-max runtime.
    pub fn plan(
        trace: &PhaseTrace,
        candidates: &[FreqMhz],
        reference: FreqMhz,
        power: &PowerModel,
        slack: f64,
    ) -> Self {
        let budget_ms = trace.runtime_at_ms(reference, reference) * (1.0 + slack);
        let mut best = (reference, f64::MAX);
        for &f in candidates {
            let runtime: f64 = trace.runtime_at_ms(f, reference);
            if runtime > budget_ms {
                continue;
            }
            let energy: f64 = trace
                .phases
                .iter()
                .map(|p| power.energy_j(f, p.kind, p.duration_at_ms(f, reference)))
                .sum();
            if energy < best.1 {
                best = (f, energy);
            }
        }
        StaticOracle { chosen: best.0 }
    }

    /// The frequency the oracle picked.
    pub fn frequency(&self) -> FreqMhz {
        self.chosen
    }
}

impl GovernorPolicy for StaticOracle {
    fn name(&self) -> &str {
        "static-oracle"
    }

    fn initial_frequency(&self, _trace: &PhaseTrace) -> FreqMhz {
        self.chosen
    }

    fn decide(&self, _trace: &PhaseTrace, _index: usize, _current: FreqMhz) -> Decision {
        Decision::stay()
    }
}

/// Per-phase DVFS with no latency knowledge: always switch to the phase's
/// preferred frequency.
#[derive(Clone, Debug)]
pub struct LatencyOblivious {
    /// Ladder floor (communication phases run here).
    pub f_min: FreqMhz,
    /// Ladder ceiling (compute phases run here).
    pub f_max: FreqMhz,
}

impl GovernorPolicy for LatencyOblivious {
    fn name(&self) -> &str {
        "latency-oblivious"
    }

    fn initial_frequency(&self, trace: &PhaseTrace) -> FreqMhz {
        trace
            .phases
            .first()
            .map(|p| p.kind.preferred_frequency(self.f_min, self.f_max))
            .unwrap_or(self.f_max)
    }

    fn decide(&self, trace: &PhaseTrace, index: usize, current: FreqMhz) -> Decision {
        let want = trace.phases[index]
            .kind
            .preferred_frequency(self.f_min, self.f_max);
        if want == current {
            Decision::stay()
        } else {
            Decision::switch_to(want)
        }
    }
}

/// The latency-aware governor: switch only when the phase amortises the
/// measured expected latency, and route around pathological pairs.
#[derive(Clone, Debug)]
pub struct LatencyAware {
    /// Measured switching-latency table for the device.
    pub table: LatencyTable,
    /// Ladder floor.
    pub f_min: FreqMhz,
    /// Ladder ceiling.
    pub f_max: FreqMhz,
    /// A switch must cost less than this fraction of the phase duration
    /// (e.g. 0.1: the phase must be ≥ 10× the expected latency).
    pub amortise_fraction: f64,
    /// Detour window: alternative targets within this many MHz are eligible
    /// when the straight pair is pathological.
    pub detour_window_mhz: u32,
    /// A pair is pathological above `factor ×` the table's typical latency.
    pub pathological_factor: f64,
}

impl LatencyAware {
    /// Default thresholds: 5× amortisation, 150 MHz detours, 5× typical.
    pub fn new(table: LatencyTable, f_min: FreqMhz, f_max: FreqMhz) -> Self {
        LatencyAware {
            table,
            f_min,
            f_max,
            amortise_fraction: 0.2,
            detour_window_mhz: 150,
            pathological_factor: 5.0,
        }
    }

    /// Snap a desired frequency to the nearest target the table has data
    /// for. A campaign measures a frequency subset; the governor can only
    /// reason about transitions it has latencies for.
    fn nearest_known_target(&self, want: FreqMhz) -> Option<FreqMhz> {
        self.table
            .known_targets()
            .into_iter()
            .min_by_key(|t| t.0.abs_diff(want.0))
    }

    /// Pick the effective target for a desired switch, taking the detour
    /// when the straight pair is pathological and a cheaper neighbour
    /// exists. Returns the target and its expected latency (ms).
    fn effective_target(&self, current: FreqMhz, want: FreqMhz) -> Option<(FreqMhz, f64)> {
        let straight = self.table.expected_ms(current, want)?;
        if !self
            .table
            .is_pathological(current, want, self.pathological_factor)
        {
            return Some((want, straight));
        }
        match self
            .table
            .cheapest_near(current, want, self.detour_window_mhz)
        {
            Some((alt, alt_ms)) if alt_ms < straight => Some((alt, alt_ms)),
            _ => Some((want, straight)),
        }
    }

    /// Whether a switch of `latency_ms` pays off before a phase of
    /// `phase_ms`.
    fn amortised(&self, latency_ms: f64, phase_ms: f64) -> bool {
        latency_ms <= self.amortise_fraction * phase_ms
    }

    fn phase_duration_hint(&self, phase: &Phase) -> f64 {
        // Planning uses the reference duration; the simulator applies the
        // true frequency-scaled duration.
        phase.ref_duration_ms
    }
}

impl GovernorPolicy for LatencyAware {
    fn name(&self) -> &str {
        "latency-aware"
    }

    fn initial_frequency(&self, trace: &PhaseTrace) -> FreqMhz {
        // Starting frequency is applied before the run; no latency paid
        // mid-execution, so take the first phase's preference directly
        // (even off-table: switching *away* from it later is a measured
        // question only when the table covers that origin).
        trace
            .phases
            .first()
            .map(|p| p.kind.preferred_frequency(self.f_min, self.f_max))
            .unwrap_or(self.f_max)
    }

    fn decide(&self, trace: &PhaseTrace, index: usize, current: FreqMhz) -> Decision {
        let phase = &trace.phases[index];
        let preferred = phase.kind.preferred_frequency(self.f_min, self.f_max);
        let want = self.nearest_known_target(preferred).unwrap_or(preferred);
        if want == current {
            return Decision::stay();
        }
        // Unknown pairs are treated as unaffordable, not free: a runtime
        // system must not gamble on transitions it has no data for.
        let Some((target, expected_ms)) = self.effective_target(current, want) else {
            return Decision::stay();
        };
        if target == current || !self.amortised(expected_ms, self.phase_duration_hint(phase)) {
            return Decision::stay();
        }
        Decision::switch_to(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::{PhaseKind, TraceGenerator};
    use crate::table::PairLatency;

    const MIN: FreqMhz = FreqMhz(210);
    const MAX: FreqMhz = FreqMhz(1410);

    fn flat_table(ms: f64) -> LatencyTable {
        let freqs = [210u32, 1058, 1410];
        let mut t = LatencyTable::new("flat");
        for &a in &freqs {
            for &b in &freqs {
                if a != b {
                    t.insert(PairLatency::new(a, b, vec![ms, ms, ms]));
                }
            }
        }
        t
    }

    fn solver_trace() -> PhaseTrace {
        TraceGenerator::new(3).iterative_solver(6, 200.0)
    }

    #[test]
    fn run_at_max_never_switches() {
        let p = RunAtMax { f_max: MAX };
        let t = solver_trace();
        assert_eq!(p.initial_frequency(&t), MAX);
        for i in 0..t.phases.len() {
            assert_eq!(p.decide(&t, i, MAX), Decision::stay());
        }
    }

    #[test]
    fn static_oracle_respects_runtime_budget() {
        let power = PowerModel::sxm_class(MAX);
        let t = solver_trace();
        let candidates = [MIN, FreqMhz(705), FreqMhz(1058), FreqMhz(1350), MAX];
        // With 5 % slack only a near-max frequency fits the runtime budget
        // (compute phases are 95 % frequency-sensitive), but its cubic power
        // saving already beats running at max.
        let oracle = StaticOracle::plan(&t, &candidates, MAX, &power, 0.05);
        assert_eq!(oracle.frequency(), FreqMhz(1350));
        // With a huge budget the oracle drops to a frequency whose energy is
        // minimal; runtime no longer binds.
        let greedy = StaticOracle::plan(&t, &candidates, MAX, &power, 100.0);
        assert!(greedy.frequency() <= oracle.frequency());
    }

    #[test]
    fn oblivious_switches_at_every_kind_change() {
        let p = LatencyOblivious {
            f_min: MIN,
            f_max: MAX,
        };
        let t = solver_trace(); // alternating compute / communication
        let mut current = p.initial_frequency(&t);
        let mut switches = 0;
        for i in 0..t.phases.len() {
            if let Decision {
                set_frequency: Some(f),
            } = p.decide(&t, i, current)
            {
                current = f;
                switches += 1;
            }
        }
        // Every boundary changes kind, so every boundary switches.
        assert_eq!(switches, t.n_boundaries());
    }

    #[test]
    fn aware_skips_unamortised_switches() {
        // 300 ms flat latency vs 200 ms phases at 10 % amortisation: no
        // switch ever pays off.
        let p = LatencyAware::new(flat_table(300.0), MIN, MAX);
        let t = solver_trace();
        let current = p.initial_frequency(&t);
        for i in 1..t.phases.len() {
            assert_eq!(p.decide(&t, i, current), Decision::stay(), "phase {i}");
        }
    }

    #[test]
    fn aware_switches_when_cheap() {
        // 1 ms flat latency: every kind change amortises instantly.
        let p = LatencyAware::new(flat_table(1.0), MIN, MAX);
        let t = solver_trace();
        let current = FreqMhz(1410);
        // Phase 1 is a communication phase wanting the floor.
        let d = p.decide(&t, 1, current);
        assert_eq!(d, Decision::switch_to(MIN));
    }

    #[test]
    fn aware_treats_unknown_pairs_as_unaffordable() {
        let p = LatencyAware::new(LatencyTable::new("empty"), MIN, MAX);
        let t = solver_trace();
        assert_eq!(p.decide(&t, 1, MAX), Decision::stay());
    }

    #[test]
    fn aware_detours_around_pathological_pairs() {
        // Straight 1410->210 is pathological (500 ms); 260 is a cheap
        // neighbour of 210 within the 150 MHz window.
        let mut table = flat_table(5.0);
        table.insert(PairLatency::new(1410, 210, vec![500.0, 505.0]));
        table.insert(PairLatency::new(1410, 260, vec![6.0, 6.2]));
        let p = LatencyAware::new(table, MIN, MAX);
        let t = PhaseTrace {
            name: "one-comm".into(),
            phases: vec![
                Phase {
                    kind: PhaseKind::ComputeBound,
                    ref_duration_ms: 500.0,
                },
                Phase {
                    kind: PhaseKind::Communication,
                    ref_duration_ms: 500.0,
                },
            ],
        };
        let d = p.decide(&t, 1, FreqMhz(1410));
        assert_eq!(d, Decision::switch_to(FreqMhz(260)));
    }
}
