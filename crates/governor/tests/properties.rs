//! Property-based tests for the governor: table queries, phase scaling and
//! the accounting identities of the policy simulator.

use latest_governor::simulate::TransitionReplay;
use latest_governor::{
    simulate_policy, GovernorPolicy, LatencyAware, LatencyOblivious, LatencyTable, PairLatency,
    Phase, PhaseKind, PhaseTrace, PowerModel, RunAtMax,
};
use latest_gpu_sim::freq::FreqMhz;
use proptest::prelude::*;

const F_MIN: FreqMhz = FreqMhz(210);
const F_MAX: FreqMhz = FreqMhz(1410);

fn kinds() -> impl Strategy<Value = PhaseKind> {
    prop_oneof![
        Just(PhaseKind::ComputeBound),
        Just(PhaseKind::MemoryBound),
        Just(PhaseKind::Communication),
    ]
}

fn traces() -> impl Strategy<Value = PhaseTrace> {
    prop::collection::vec((kinds(), 1.0..500.0f64), 1..25).prop_map(|phases| PhaseTrace {
        name: "prop".into(),
        phases: phases
            .into_iter()
            .map(|(kind, ref_duration_ms)| Phase {
                kind,
                ref_duration_ms,
            })
            .collect(),
    })
}

fn tables() -> impl Strategy<Value = LatencyTable> {
    prop::collection::vec(1.0..100.0f64, 1..6).prop_map(|ms| {
        let freqs = [210u32, 1058, 1410];
        let mut t = LatencyTable::new("prop");
        for &a in &freqs {
            for &b in &freqs {
                if a != b {
                    t.insert(PairLatency::new(a, b, ms.clone()));
                }
            }
        }
        t
    })
}

proptest! {
    // --- PairLatency / LatencyTable ------------------------------------------

    #[test]
    fn quantile_is_monotone(ms in prop::collection::vec(0.1..1000.0f64, 1..100), p in 0.0..1.0f64, q in 0.0..1.0f64) {
        let pair = PairLatency::new(1, 2, ms);
        let (lo, hi) = (p.min(q), p.max(q));
        prop_assert!(pair.quantile_ms(lo) <= pair.quantile_ms(hi));
        prop_assert!(pair.mean_ms() >= pair.quantile_ms(0.0));
        prop_assert!(pair.mean_ms() <= pair.quantile_ms(1.0));
    }

    #[test]
    fn avoid_list_entries_are_pathological(table in tables(), factor in 1.5..10.0f64) {
        for (i, t) in table.avoid_list(factor) {
            prop_assert!(table.is_pathological(FreqMhz(i), FreqMhz(t), factor));
        }
    }

    #[test]
    fn json_round_trip_preserves_every_pair(table in tables()) {
        let restored = LatencyTable::from_json(&table.to_json()).unwrap();
        prop_assert_eq!(restored.len(), table.len());
        for p in table.pairs() {
            let r = restored.pair(FreqMhz(p.init_mhz), FreqMhz(p.target_mhz)).unwrap();
            prop_assert_eq!(&r.latencies_ms, &p.latencies_ms);
        }
    }

    #[test]
    fn cheapest_near_never_exceeds_straight_cost(table in tables(), window in 0u32..500) {
        // If the straight pair is measured, the detour can only improve it.
        let (init, target) = (FreqMhz(1410), FreqMhz(210));
        if let (Some(straight), Some((_, detour_ms))) = (
            table.expected_ms(init, target),
            table.cheapest_near(init, target, window),
        ) {
            prop_assert!(detour_ms <= straight + 1e-12);
        }
    }

    #[test]
    fn replay_draws_stay_within_the_observed_sample_range(
        ms in prop::collection::vec(0.1..1000.0f64, 1..40),
        seed in 0u64..1000,
        draws in 1usize..50,
    ) {
        let pair = PairLatency::new(1000, 1500, ms);
        let (lo, hi) = (pair.quantile_ms(0.0), pair.quantile_ms(1.0));
        let mut table = LatencyTable::new("prop");
        table.insert(pair);
        let mut replay = TransitionReplay::new(table, seed);
        for _ in 0..draws {
            let d = replay.draw_ms(FreqMhz(1000), FreqMhz(1500));
            prop_assert!((lo..=hi).contains(&d), "{d} outside [{lo}, {hi}]");
        }
    }

    // --- phases -----------------------------------------------------------------

    #[test]
    fn lower_frequency_never_shortens_a_phase(kind in kinds(), dur in 1.0..1000.0f64, f in 210u32..1410) {
        let phase = Phase { kind, ref_duration_ms: dur };
        let slow = phase.duration_at_ms(FreqMhz(f), F_MAX);
        let fast = phase.duration_at_ms(F_MAX, F_MAX);
        prop_assert!(slow >= fast - 1e-12);
        prop_assert!((fast - dur).abs() < 1e-9);
    }

    // --- simulator accounting ------------------------------------------------------

    #[test]
    fn run_at_max_reproduces_reference_runtime(trace in traces(), table in tables(), seed in 0u64..100) {
        let power = PowerModel::sxm_class(F_MAX);
        let mut replay = TransitionReplay::new(table, seed);
        let r = simulate_policy(&RunAtMax { f_max: F_MAX }, &trace, &power, &mut replay, F_MAX);
        let expected = trace.runtime_at_ms(F_MAX, F_MAX);
        prop_assert!((r.runtime_ms - expected).abs() <= 1e-6 * (1.0 + expected));
        prop_assert_eq!(r.switches, 0);
        prop_assert!(r.energy_j > 0.0);
    }

    #[test]
    fn energy_is_bounded_by_power_extremes(trace in traces(), table in tables(), seed in 0u64..100) {
        let power = PowerModel::sxm_class(F_MAX);
        let mut replay = TransitionReplay::new(table.clone(), seed);
        let policy = LatencyOblivious { f_min: F_MIN, f_max: F_MAX };
        let r = simulate_policy(&policy, &trace, &power, &mut replay, F_MAX);
        // Energy must lie between idle-power and max-power integrals of the
        // actual runtime.
        let p_floor = power.power_w(F_MIN, PhaseKind::Communication);
        let p_ceil = power.power_w(F_MAX, PhaseKind::ComputeBound);
        prop_assert!(r.energy_j >= p_floor * r.runtime_ms / 1e3 - 1e-6);
        prop_assert!(r.energy_j <= p_ceil * r.runtime_ms / 1e3 + 1e-6);
    }

    #[test]
    fn decisions_are_bounded_by_boundaries(trace in traces(), table in tables(), seed in 0u64..100) {
        let power = PowerModel::sxm_class(F_MAX);
        for policy in [
            Box::new(LatencyOblivious { f_min: F_MIN, f_max: F_MAX }) as Box<dyn GovernorPolicy>,
            Box::new(LatencyAware::new(table.clone(), F_MIN, F_MAX)),
        ] {
            let mut replay = TransitionReplay::new(table.clone(), seed);
            let r = simulate_policy(policy.as_ref(), &trace, &power, &mut replay, F_MAX);
            prop_assert!(r.switches + r.suppressed <= trace.n_boundaries());
            prop_assert!(r.runtime_ms >= trace.runtime_at_ms(F_MAX, F_MAX) - 1e-6);
            prop_assert!(r.worst_transition_ms >= 0.0);
            prop_assert!(r.transition_ms >= 0.0);
        }
    }

    #[test]
    // On uniform tables (all pairs equally expensive) the detour logic never
    // fires, so the aware governor is a strict filter over the oblivious
    // one's switch decisions.
    fn aware_never_switches_more_than_oblivious(trace in traces(), table in tables(), seed in 0u64..100) {
        let power = PowerModel::sxm_class(F_MAX);
        let oblivious = {
            let mut replay = TransitionReplay::new(table.clone(), seed);
            simulate_policy(&LatencyOblivious { f_min: F_MIN, f_max: F_MAX }, &trace, &power, &mut replay, F_MAX)
        };
        let aware = {
            let mut replay = TransitionReplay::new(table.clone(), seed);
            simulate_policy(&LatencyAware::new(table.clone(), F_MIN, F_MAX), &trace, &power, &mut replay, F_MAX)
        };
        prop_assert!(aware.switches <= oblivious.switches);
    }
}
