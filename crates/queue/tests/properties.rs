//! Property-based tests for the job journal: persistence must never
//! reorder the queue, and scheduling must be exactly priority-then-FIFO.

use std::sync::atomic::{AtomicU64, Ordering};

use latest_core::spec::{CampaignSpec, ScenarioSpec};
use latest_queue::{CompletionVia, JobQueue, JobState, SubmitOptions};
use proptest::prelude::*;

fn tiny(seed: u64) -> ScenarioSpec {
    ScenarioSpec::Campaign(
        CampaignSpec::builder("a100")
            .frequencies_mhz(&[705, 1410])
            .measurements(3, 6)
            .simulated_sms(Some(2))
            .seed(seed)
            .build()
            .unwrap(),
    )
}

/// A fresh queue directory per proptest case (cases run within one
/// process, so the process id alone would collide).
fn temp_queue() -> JobQueue {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "latest_queue_prop_{}_{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    JobQueue::open(dir).unwrap()
}

proptest! {
    /// Submitting under arbitrary priorities, restarting (reopening the
    /// directory), and popping must (a) reload every job bit-identically
    /// and (b) schedule priority-first, FIFO within a priority class.
    #[test]
    fn journal_round_trips_preserve_order_and_priority(
        priorities in prop::collection::vec(-3i64..4, 1..10)
    ) {
        let q = temp_queue();
        let mut submitted = Vec::new();
        for (i, &p) in priorities.iter().enumerate() {
            // Distinct seeds keep the keys distinct, so dedupe never
            // interferes with the pure scheduling property.
            let job = q
                .submit(tiny(10_000 + i as u64), SubmitOptions { priority: p as i32, force: false })
                .unwrap();
            submitted.push(job);
        }

        // "Restart": a fresh handle over the same directory sees the same
        // journal, byte-faithfully.
        let q = JobQueue::open(q.dir()).unwrap();
        let reloaded = q.jobs().unwrap();
        prop_assert_eq!(&reloaded, &submitted);

        // Pop everything; the claim order must be priority descending,
        // submission (id) ascending within a priority.
        let mut expected: Vec<(i32, u64)> = submitted
            .iter()
            .map(|j| (j.priority, j.id.0))
            .collect();
        expected.sort_by_key(|&(p, id)| (std::cmp::Reverse(p), id));
        let mut claimed = Vec::new();
        while let Some(mut job) = q.take_next().unwrap() {
            claimed.push((job.priority, job.id.0));
            job.state = JobState::Done {
                run_ids: job.run_ids(),
                via: CompletionVia::Executed,
            };
            q.save(&job).unwrap();
        }
        prop_assert_eq!(claimed, expected);
        std::fs::remove_dir_all(q.dir()).ok();
    }
}
