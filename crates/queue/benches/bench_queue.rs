//! Criterion benchmarks for the campaign execution service: journal
//! throughput (submit + claim cycles) and end-to-end service throughput
//! (jobs/sec on tiny specs through a two-worker pool, result cache cold
//! and warm) — the queue figures fed into `BENCH_latest.json`.

use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};
use latest_core::spec::{CampaignSpec, ScenarioSpec};
use latest_queue::{CompletionVia, JobQueue, JobState, PoolConfig, SubmitOptions, WorkerPool};
use std::hint::black_box;

fn tiny(seed: u64) -> ScenarioSpec {
    ScenarioSpec::Campaign(
        CampaignSpec::builder("a100")
            .frequencies_mhz(&[705, 1410])
            .measurements(2, 4)
            .simulated_sms(Some(1))
            .seed(seed)
            .build()
            .unwrap(),
    )
}

fn fresh_dir() -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "latest_queue_bench_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Pure journal throughput: submit N jobs, claim and settle all of them.
fn bench_journal(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_journal");
    g.sample_size(10);
    g.bench_function("submit_claim_settle_16_jobs", |b| {
        b.iter(|| {
            let dir = fresh_dir();
            let q = JobQueue::open(&dir).unwrap();
            for i in 0..16u64 {
                q.submit(
                    tiny(i),
                    SubmitOptions {
                        priority: (i % 3) as i32,
                        force: false,
                    },
                )
                .unwrap();
            }
            let mut claimed = 0usize;
            while let Some(mut job) = q.take_next().unwrap() {
                job.state = JobState::Done {
                    run_ids: job.run_ids(),
                    via: CompletionVia::Executed,
                };
                q.save(&job).unwrap();
                claimed += 1;
            }
            std::fs::remove_dir_all(&dir).ok();
            black_box(claimed)
        })
    });
    g.finish();
}

/// End-to-end service throughput on tiny specs: cold (every job
/// executes) and warm (every job is a cache hit) — the spread is what the
/// content-addressed cache buys.
fn bench_service(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_service");
    g.sample_size(10);
    g.bench_function("drain_4_tiny_jobs_cold", |b| {
        b.iter(|| {
            let dir = fresh_dir();
            let pool = WorkerPool::open(&dir, PoolConfig::default()).unwrap();
            for i in 0..4u64 {
                pool.queue()
                    .submit(tiny(i), SubmitOptions::default())
                    .unwrap();
            }
            let stats = pool.drain().unwrap();
            assert_eq!(stats.executed, 4);
            std::fs::remove_dir_all(&dir).ok();
            black_box(stats.jobs_per_sec())
        })
    });

    // Warm: populate the archive once, then measure cache-hit drains.
    let dir = fresh_dir();
    let pool = WorkerPool::open(&dir, PoolConfig::default()).unwrap();
    for i in 0..4u64 {
        pool.queue()
            .submit(tiny(i), SubmitOptions::default())
            .unwrap();
    }
    pool.drain().unwrap();
    g.bench_function("drain_4_tiny_jobs_warm_cache", |b| {
        b.iter(|| {
            for i in 0..4u64 {
                pool.queue()
                    .submit(tiny(i), SubmitOptions::default())
                    .unwrap();
            }
            let stats = pool.drain().unwrap();
            assert_eq!(stats.cached, 4);
            black_box(stats.jobs_per_sec())
        })
    });
    std::fs::remove_dir_all(&dir).ok();
    g.finish();
}

/// Shard scaling: one 12-pair campaign decomposed into single-pair work
/// units, drained by 1, 2 and 4 workers. The 4-worker figure dropping
/// below the 1-worker figure is what the work-stealing scheduler buys;
/// determinism makes the archived bytes identical regardless.
fn bench_shard_scaling(c: &mut Criterion) {
    let wide = ScenarioSpec::Campaign(
        CampaignSpec::builder("a100")
            .frequencies_mhz(&[540, 810, 1095, 1410])
            .measurements(3, 6)
            .simulated_sms(Some(2))
            .seed(77)
            .build()
            .unwrap(),
    );
    let mut g = c.benchmark_group("queue_shard_scaling");
    g.sample_size(10);
    for workers in [1usize, 2, 4] {
        g.bench_function(format!("drain_12_pairs_{workers}_workers"), |b| {
            b.iter(|| {
                let dir = fresh_dir();
                let pool = WorkerPool::open(
                    &dir,
                    PoolConfig {
                        workers,
                        shard_pairs: 1,
                        ..PoolConfig::default()
                    },
                )
                .unwrap();
                pool.queue()
                    .submit(wide.clone(), SubmitOptions::default())
                    .unwrap();
                let stats = pool.drain().unwrap();
                assert_eq!((stats.executed, stats.pairs_measured), (1, 12));
                std::fs::remove_dir_all(&dir).ok();
                black_box(stats.jobs_per_sec())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_journal, bench_service, bench_shard_scaling);
criterion_main!(benches);
