//! The campaign execution service: a persistent job queue, a bounded
//! worker pool and a content-addressed result cache over the LATEST
//! methodology.
//!
//! The paper's methodology is a long-running measurement campaign per
//! device (Secs. IV–VI); a production deployment serves *many* campaigns
//! from many clients — performance models and DVFS schedulers hammering a
//! measurement service with overlapping spec requests. This crate is that
//! service layer:
//!
//! * **[`JobQueue`]** — a crash-safe, directory-backed queue of
//!   [`Job`]s (`Queued → Running → Done/Failed/Cancelled`), journaled one
//!   atomic-rename file per job, scheduled priority-first and FIFO within
//!   a priority. Submissions of the same spec share a content-addressed
//!   [`JobKey`], so duplicates coalesce onto one execution.
//! * **[`WorkerPool`]** — a work-stealing shard scheduler: a claimed job
//!   decomposes into [`WorkUnit`](latest_core::WorkUnit) pair-shards that
//!   spread across every worker thread, with per-job
//!   [`CancelToken`](latest_core::CancelToken)s, a journaled
//!   [`ShardLedger`] of in-flight progress and periodic resumable
//!   checkpoints: a killed service requeues its in-flight jobs on restart
//!   and resumes each from its checkpoint — even mid-shard — bitwise
//!   identical to an uninterrupted run.
//! * **Result cache** — before executing, a job consults the
//!   [`ResultStore`](latest_core::ResultStore): an archived run of the
//!   identical spec is served without recomputation (unless the job was
//!   submitted with `force`), and completed jobs auto-archive — the store
//!   memoizes the whole service.
//! * **[`QueueEvent`] multiplexer** — slot-tagged fan-in of every
//!   worker's campaign event stream, for live progress across concurrent
//!   jobs ([`ProgressFormatter`] renders the feed lines `queue watch`
//!   replays). Producers buffer into a bounded per-worker [`EventSpool`]
//!   (drops counted, never blocking); the persisted feed is a rotating
//!   [`EventLog`] that [`EventTail`] follows across rotations.
//! * **Service telemetry** — per-worker lock-free stage latency
//!   recorders ([`latest_telemetry`]) time queue wait, claim-to-start,
//!   shard execution, checkpoint stalls, settle latency and event
//!   fan-in; the merged snapshot rides on [`DrainStats`] and persists as
//!   `<dir>/telemetry.json` for `queue status` / `queue stats`.
//!
//! ```no_run
//! use latest_queue::{JobQueue, PoolConfig, SubmitOptions, WorkerPool};
//! use latest_core::spec::{CampaignSpec, ScenarioSpec};
//!
//! let spec = ScenarioSpec::Campaign(
//!     CampaignSpec::builder("a100")
//!         .frequencies_mhz(&[705, 1410])
//!         .build()
//!         .unwrap(),
//! );
//! let queue = JobQueue::open("latest-queue").unwrap();
//! queue.submit(spec.clone(), SubmitOptions::default()).unwrap();
//! queue.submit(spec, SubmitOptions::default()).unwrap(); // coalesces
//!
//! let pool = WorkerPool::open("latest-queue", PoolConfig::default()).unwrap();
//! let stats = pool.drain().unwrap();
//! assert_eq!(stats.executed, 1);
//! assert_eq!(stats.coalesced, 1);
//! ```

pub mod error;
pub mod eventlog;
pub mod events;
pub mod job;
pub mod pool;
pub mod progress;
pub mod queue;

pub use error::{QueueError, QueueResult};
pub use eventlog::{EventLog, EventTail};
pub use events::{EventSpool, QueueChannelObserver, QueueEvent, QueueObserver};
pub use job::{CompletionVia, Job, JobId, JobKey, JobState, MemberLedger, ShardLedger};
pub use pool::{DrainStats, PoolConfig, WorkerPool};
pub use progress::ProgressFormatter;
pub use queue::{Claim, JobQueue, QueueCounts, QueueLock, ServiceLock, SubmitOptions};
