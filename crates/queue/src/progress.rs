//! Human-readable progress lines over [`CampaignEvent`] streams, shared
//! verbatim between `latest run --progress` and the queue service's event
//! feed (`queue serve` writes them, `queue watch` replays them).
//!
//! Each line carries the elapsed wall-clock time since the campaign
//! started and — once pair work begins — a `done/total` counter with an
//! ETA extrapolated from the observed pace:
//!
//! ```text
//! [   0.0s] campaign started on NVIDIA A100-SXM4-40GB: 56 pairs
//! [  12.4s] pair 705->1410 MHz finished: n=60, mean 9.874 ms [3/56 pairs, ETA 219s]
//! ```

use std::time::Instant;

use latest_core::session::CampaignEvent;

/// Stateful per-campaign formatter: tracks the start instant and the
/// pairs-settled count that the ETA is extrapolated from.
///
/// One formatter per campaign (per fleet member): elapsed time and the
/// counter are campaign-local. Not thread-safe by itself — wrap in a
/// mutex when events arrive from parallel pair workers.
#[derive(Debug)]
pub struct ProgressFormatter {
    start: Instant,
    total: usize,
    done: usize,
}

impl Default for ProgressFormatter {
    fn default() -> Self {
        ProgressFormatter::new()
    }
}

impl ProgressFormatter {
    /// A formatter whose clock starts now.
    pub fn new() -> Self {
        ProgressFormatter {
            start: Instant::now(),
            total: 0,
            done: 0,
        }
    }

    /// Pairs settled so far (finished, skipped or restored).
    pub fn done(&self) -> usize {
        self.done
    }

    /// Pairs scheduled (0 until `CampaignStarted` is observed).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Fold one event into the counters and render its feed line.
    pub fn line(&mut self, event: &CampaignEvent) -> String {
        match event {
            CampaignEvent::CampaignStarted { n_pairs, .. } => self.total = *n_pairs,
            CampaignEvent::PairFinished { .. }
            | CampaignEvent::PairSkipped { .. }
            | CampaignEvent::PairRestored { .. } => self.done += 1,
            _ => {}
        }
        let elapsed = self.start.elapsed().as_secs_f64();
        format!("[{elapsed:>7.1}s] {event}{}", self.suffix(elapsed))
    }

    /// The ` [done/total pairs, ETA ..s]` suffix, present while pair work
    /// is underway.
    fn suffix(&self, elapsed: f64) -> String {
        if self.total == 0 || self.done == 0 {
            return String::new();
        }
        if self.done >= self.total {
            return format!(" [{}/{} pairs, done]", self.done, self.total);
        }
        let remaining = (self.total - self.done) as f64;
        let eta = elapsed / self.done as f64 * remaining;
        format!(" [{}/{} pairs, ETA {eta:.0}s]", self.done, self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_gain_elapsed_and_eta() {
        let mut fmt = ProgressFormatter::new();
        let started = fmt.line(&CampaignEvent::CampaignStarted {
            device_name: "sim".to_string(),
            n_pairs: 4,
        });
        assert!(started.starts_with('['), "{started}");
        assert!(started.contains("s] campaign started"), "{started}");
        assert!(
            !started.contains("ETA"),
            "no ETA before pair work: {started}"
        );
        assert_eq!(fmt.total(), 4);

        let finished = fmt.line(&CampaignEvent::PairFinished {
            index: 0,
            init_mhz: 705,
            target_mhz: 1410,
            measurements: 10,
            mean_ms: 9.5,
        });
        assert!(finished.contains("[1/4 pairs, ETA "), "{finished}");
        assert_eq!(fmt.done(), 1);

        for i in 1..4 {
            let line = fmt.line(&CampaignEvent::PairSkipped {
                index: i,
                init_mhz: 705,
                target_mhz: 1410,
                reason: latest_core::session::SkipReason::Cancelled,
            });
            if i == 3 {
                assert!(line.contains("[4/4 pairs, done]"), "{line}");
            }
        }
    }

    #[test]
    fn restored_pairs_advance_the_counter() {
        let mut fmt = ProgressFormatter::new();
        fmt.line(&CampaignEvent::CampaignStarted {
            device_name: "sim".to_string(),
            n_pairs: 2,
        });
        let line = fmt.line(&CampaignEvent::PairRestored {
            index: 0,
            init_mhz: 705,
            target_mhz: 1410,
        });
        assert!(line.contains("[1/2 pairs"), "{line}");
    }
}
