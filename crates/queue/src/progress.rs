//! Human-readable progress lines over [`CampaignEvent`] streams, shared
//! verbatim between `latest run --progress` and the queue service's event
//! feed (`queue serve` writes them, `queue watch` replays them).
//!
//! Each line carries the elapsed wall-clock time since the campaign
//! started and — once pair work begins — a `done/total` counter with an
//! ETA extrapolated from the observed pace:
//!
//! ```text
//! [   0.0s] campaign started on NVIDIA A100-SXM4-40GB: 56 pairs
//! [  12.4s] pair 705->1410 MHz finished: n=60, mean 9.874 ms [3/56 pairs, ETA 219s]
//! ```

use latest_core::session::CampaignEvent;
use latest_telemetry::StageClock;

/// Stateful per-campaign formatter: tracks the start instant and the
/// pairs-settled count that the ETA is extrapolated from.
///
/// One formatter per campaign — or per *job*, when fed a whole fleet
/// job's stream: each member's `CampaignStarted` accumulates into the
/// total, so the `done/total` counter and ETA span all members. A caller
/// that already knows the job-wide pair total (the queue's `Planned`
/// event carries it) seeds it via
/// [`ProgressFormatter::seed_totals`] instead. Not thread-safe by
/// itself — wrap in a mutex when events arrive from parallel workers.
#[derive(Debug)]
pub struct ProgressFormatter {
    clock: StageClock,
    start_ns: u64,
    total: usize,
    done: usize,
    seeded: bool,
    shards_started: usize,
    shards_done: usize,
}

impl Default for ProgressFormatter {
    fn default() -> Self {
        ProgressFormatter::new()
    }
}

impl ProgressFormatter {
    /// A formatter whose (real, monotonic) clock starts now.
    pub fn new() -> Self {
        ProgressFormatter::with_clock(StageClock::monotonic())
    }

    /// A formatter reading elapsed time off `clock` — a
    /// [`StageClock::manual`] makes elapsed/ETA figures exact in tests,
    /// a tick clock makes `queue serve --virtual-clock` feeds
    /// reproducible.
    pub fn with_clock(clock: StageClock) -> Self {
        let start_ns = clock.now_ns();
        ProgressFormatter {
            clock,
            start_ns,
            total: 0,
            done: 0,
            seeded: false,
            shards_started: 0,
            shards_done: 0,
        }
    }

    /// Fix the pair total up front (e.g. from the queue's `Planned`
    /// event, which counts pairs across every fleet member); subsequent
    /// `CampaignStarted` events no longer accumulate into it.
    pub fn seed_totals(&mut self, pairs: usize) {
        self.total = pairs;
        self.seeded = true;
    }

    /// Pairs settled so far (finished, skipped or restored).
    pub fn done(&self) -> usize {
        self.done
    }

    /// Pairs scheduled (0 until `CampaignStarted` is observed).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Fold one event into the counters and render its feed line.
    pub fn line(&mut self, event: &CampaignEvent) -> String {
        match event {
            CampaignEvent::CampaignStarted { n_pairs, .. } if !self.seeded => {
                self.total += *n_pairs;
            }
            CampaignEvent::PairFinished { .. }
            | CampaignEvent::PairSkipped { .. }
            | CampaignEvent::PairRestored { .. } => self.done += 1,
            CampaignEvent::ShardStarted { .. } => self.shards_started += 1,
            CampaignEvent::ShardFinished { .. } => self.shards_done += 1,
            _ => {}
        }
        let elapsed = self.clock.now_ns().saturating_sub(self.start_ns) as f64 / 1e9;
        format!("[{elapsed:>7.1}s] {event}{}", self.suffix(elapsed))
    }

    /// The ` [done/total pairs, ETA ..s]` suffix, present while pair work
    /// is underway; gains a `done/started shards` figure once shard-level
    /// scheduling is observed.
    fn suffix(&self, elapsed: f64) -> String {
        if self.total == 0 || self.done == 0 {
            return String::new();
        }
        let shards = if self.shards_started > 0 {
            format!(", {}/{} shards", self.shards_done, self.shards_started)
        } else {
            String::new()
        };
        if self.done >= self.total {
            return format!(" [{}/{} pairs{shards}, done]", self.done, self.total);
        }
        let remaining = (self.total - self.done) as f64;
        let eta = elapsed / self.done as f64 * remaining;
        format!(
            " [{}/{} pairs{shards}, ETA {eta:.0}s]",
            self.done, self.total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latest_core::FreqState;

    #[test]
    fn lines_gain_elapsed_and_eta() {
        let mut fmt = ProgressFormatter::new();
        let started = fmt.line(&CampaignEvent::CampaignStarted {
            device_name: "sim".to_string(),
            n_pairs: 4,
        });
        assert!(started.starts_with('['), "{started}");
        assert!(started.contains("s] campaign started"), "{started}");
        assert!(
            !started.contains("ETA"),
            "no ETA before pair work: {started}"
        );
        assert_eq!(fmt.total(), 4);

        let finished = fmt.line(&CampaignEvent::PairFinished {
            index: 0,
            init: FreqState::core_mhz(705),
            target: FreqState::core_mhz(1410),
            measurements: 10,
            mean_ms: 9.5,
        });
        assert!(finished.contains("[1/4 pairs, ETA "), "{finished}");
        assert_eq!(fmt.done(), 1);

        for i in 1..4 {
            let line = fmt.line(&CampaignEvent::PairSkipped {
                index: i,
                init: FreqState::core_mhz(705),
                target: FreqState::core_mhz(1410),
                reason: latest_core::session::SkipReason::Cancelled,
            });
            if i == 3 {
                assert!(line.contains("[4/4 pairs, done]"), "{line}");
            }
        }
    }

    #[test]
    fn fleet_member_totals_accumulate() {
        let mut fmt = ProgressFormatter::new();
        fmt.line(&CampaignEvent::CampaignStarted {
            device_name: "a100".to_string(),
            n_pairs: 6,
        });
        fmt.line(&CampaignEvent::CampaignStarted {
            device_name: "h100".to_string(),
            n_pairs: 2,
        });
        assert_eq!(fmt.total(), 8, "members accumulate");
        let line = fmt.line(&CampaignEvent::PairFinished {
            index: 0,
            init: FreqState::core_mhz(705),
            target: FreqState::core_mhz(1410),
            measurements: 10,
            mean_ms: 9.5,
        });
        assert!(line.contains("[1/8 pairs"), "{line}");
    }

    #[test]
    fn seeded_totals_ignore_campaign_started() {
        let mut fmt = ProgressFormatter::new();
        fmt.seed_totals(12);
        fmt.line(&CampaignEvent::CampaignStarted {
            device_name: "a100".to_string(),
            n_pairs: 6,
        });
        assert_eq!(fmt.total(), 12, "seeded total is authoritative");
    }

    #[test]
    fn shard_counters_join_the_suffix() {
        let mut fmt = ProgressFormatter::new();
        fmt.seed_totals(4);
        fmt.line(&CampaignEvent::ShardStarted {
            shard: 0,
            n_shards: 2,
            pairs: 2,
        });
        fmt.line(&CampaignEvent::ShardStarted {
            shard: 1,
            n_shards: 2,
            pairs: 2,
        });
        let line = fmt.line(&CampaignEvent::PairFinished {
            index: 0,
            init: FreqState::core_mhz(705),
            target: FreqState::core_mhz(1410),
            measurements: 10,
            mean_ms: 9.5,
        });
        assert!(line.contains("[1/4 pairs, 0/2 shards, ETA"), "{line}");
        let line = fmt.line(&CampaignEvent::ShardFinished {
            shard: 0,
            n_shards: 2,
            pairs: 2,
        });
        assert!(line.contains("1/2 shards"), "{line}");
    }

    #[test]
    fn manual_clock_makes_elapsed_and_eta_exact() {
        let clock = StageClock::manual();
        let mut fmt = ProgressFormatter::with_clock(clock.clone());
        fmt.seed_totals(4);
        clock.advance(3_000_000_000);
        let line = fmt.line(&CampaignEvent::PairFinished {
            index: 0,
            init: FreqState::core_mhz(705),
            target: FreqState::core_mhz(1410),
            measurements: 10,
            mean_ms: 9.5,
        });
        assert!(line.starts_with("[    3.0s]"), "{line}");
        // 3s elapsed for 1 of 4 pairs: 3 more pairs at 3 s/pair.
        assert!(line.ends_with("[1/4 pairs, ETA 9s]"), "{line}");
    }

    #[test]
    fn restored_pairs_advance_the_counter() {
        let mut fmt = ProgressFormatter::new();
        fmt.line(&CampaignEvent::CampaignStarted {
            device_name: "sim".to_string(),
            n_pairs: 2,
        });
        let line = fmt.line(&CampaignEvent::PairRestored {
            index: 0,
            init: FreqState::core_mhz(705),
            target: FreqState::core_mhz(1410),
        });
        assert!(line.contains("[1/2 pairs"), "{line}");
    }
}
