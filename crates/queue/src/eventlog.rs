//! The size-capped, rotating `<dir>/events.log` writer and the
//! rotation-aware incremental tail `queue watch` reads it back with.
//!
//! The feed was previously unbounded append-only — fine for one
//! campaign, a disk-filler for a long-lived service. [`EventLog`] rotates
//! the live file to a single `events.log.1` generation when an append
//! would cross the size cap; [`EventTail`] detects the rotation (the
//! live file's inode changed), finishes reading the rotated generation
//! from its old offset, and continues at the top of the new file — so a
//! watcher misses no lines across a rotation boundary. If more than one
//! rotation happens between two polls, the intervening generation is
//! gone and its unread lines with it; the poll cadence of `queue watch`
//! (milliseconds) against the cap (megabytes) makes that a non-event in
//! practice.

use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::os::unix::fs::MetadataExt;
use std::path::PathBuf;
use std::sync::Mutex as StdMutex;

/// Append-only event feed writer with size-capped rotation; see the
/// [module docs](self).
pub struct EventLog {
    path: PathBuf,
    rotated: PathBuf,
    /// Rotation threshold in bytes; 0 disables rotation.
    max_bytes: u64,
    file: StdMutex<fs::File>,
}

impl EventLog {
    /// Open (appending) the feed at `path`, rotating to `rotated` when an
    /// append would push the file past `max_bytes` (0 = never rotate).
    pub fn open(
        path: impl Into<PathBuf>,
        rotated: impl Into<PathBuf>,
        max_bytes: u64,
    ) -> io::Result<EventLog> {
        let path = path.into();
        let file = fs::File::options().create(true).append(true).open(&path)?;
        Ok(EventLog {
            path,
            rotated: rotated.into(),
            max_bytes,
            file: StdMutex::new(file),
        })
    }

    /// Append one feed line (a trailing newline is added), rotating first
    /// when the line would cross the cap. Oversized single lines still
    /// land — rotation bounds the *file*, it never drops the line.
    pub fn append_line(&self, line: &str) -> io::Result<()> {
        let mut file = self.file.lock().expect("event log poisoned");
        if self.max_bytes > 0 {
            let len = file.metadata()?.len();
            if len > 0 && len + line.len() as u64 + 1 > self.max_bytes {
                // Rename is atomic on the same filesystem; a reader polling
                // mid-rotation sees either the old live file or the new
                // (initially empty) one, never a torn state.
                fs::rename(&self.path, &self.rotated)?;
                *file = fs::File::options()
                    .create(true)
                    .append(true)
                    .open(&self.path)?;
            }
        }
        writeln!(file, "{line}")
    }
}

/// Incremental reader of an [`EventLog`] feed that follows rotation; see
/// the [module docs](self).
#[derive(Debug)]
pub struct EventTail {
    path: PathBuf,
    rotated: PathBuf,
    offset: u64,
    /// Inode of the generation `offset` points into (`None` until the
    /// live file is first observed).
    ino: Option<u64>,
}

impl EventTail {
    /// A tail starting at the top of the live file.
    pub fn new(path: impl Into<PathBuf>, rotated: impl Into<PathBuf>) -> EventTail {
        EventTail {
            path: path.into(),
            rotated: rotated.into(),
            offset: 0,
            ino: None,
        }
    }

    /// Read every complete line appended since the last poll (empty when
    /// nothing new). A live file with a different inode than last time
    /// means a rotation happened: the generation this tail was reading is
    /// finished first — it is now the rotated file — then reading
    /// restarts at the top of the new live file.
    pub fn poll(&mut self) -> io::Result<Vec<String>> {
        let mut live = match fs::File::open(&self.path) {
            Ok(file) => Some(file),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        let live_ino = match &live {
            Some(file) => Some(file.metadata()?.ino()),
            None => None,
        };
        let rotated_away = match (self.ino, live_ino) {
            (Some(old), Some(new)) => old != new,
            (Some(_), None) => true,
            _ => false,
        };

        let mut lines = Vec::new();
        if rotated_away {
            if let Ok(mut rotated) = fs::File::open(&self.rotated) {
                if Some(rotated.metadata()?.ino()) == self.ino {
                    let (finished, _) = read_complete_lines(&mut rotated, self.offset)?;
                    lines.extend(finished);
                }
                // A different inode here means more than one rotation
                // since the last poll: our generation is gone.
            }
            self.offset = 0;
        }
        if let Some(file) = live.as_mut() {
            let (fresh, consumed) = read_complete_lines(file, self.offset)?;
            lines.extend(fresh);
            self.offset += consumed;
        }
        if live_ino.is_some() {
            self.ino = live_ino;
        }
        Ok(lines)
    }
}

/// Complete lines of `file` starting at byte `offset`, plus the number of
/// bytes they consumed (a trailing partial line is left for next time).
fn read_complete_lines(file: &mut fs::File, offset: u64) -> io::Result<(Vec<String>, u64)> {
    file.seek(SeekFrom::Start(offset))?;
    let mut text = String::new();
    file.read_to_string(&mut text)?;
    let complete = match text.rfind('\n') {
        Some(last) => &text[..=last],
        None => return Ok((Vec::new(), 0)),
    };
    let consumed = complete.len() as u64;
    let lines = complete.lines().map(str::to_string).collect();
    Ok((lines, consumed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_paths(tag: &str) -> (PathBuf, PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("latest_eventlog_test_{tag}_{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        (dir.join("events.log"), dir.join("events.log.1"))
    }

    #[test]
    fn appends_are_line_oriented() {
        let (path, rotated) = temp_paths("append");
        let log = EventLog::open(&path, &rotated, 0).unwrap();
        log.append_line("one").unwrap();
        log.append_line("two").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "one\ntwo\n");
        assert!(!rotated.exists(), "cap 0 never rotates");
        fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn rotation_caps_the_live_file_and_keeps_one_generation() {
        let (path, rotated) = temp_paths("rotate");
        let log = EventLog::open(&path, &rotated, 16).unwrap();
        log.append_line("aaaaaaaa").unwrap(); // 9 bytes
        log.append_line("bbbbbbbb").unwrap(); // would make 18 > 16: rotate
        assert_eq!(fs::read_to_string(&rotated).unwrap(), "aaaaaaaa\n");
        assert_eq!(fs::read_to_string(&path).unwrap(), "bbbbbbbb\n");
        log.append_line("cccccccc").unwrap(); // rotate again: one generation
        assert_eq!(fs::read_to_string(&rotated).unwrap(), "bbbbbbbb\n");
        assert_eq!(fs::read_to_string(&path).unwrap(), "cccccccc\n");
        fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn tail_follows_successive_rotations() {
        let (path, rotated) = temp_paths("tail");
        let log = EventLog::open(&path, &rotated, 16).unwrap();
        let mut tail = EventTail::new(&path, &rotated);
        assert!(tail.poll().unwrap().is_empty());

        log.append_line("aaaaaaaa").unwrap();
        assert_eq!(tail.poll().unwrap(), vec!["aaaaaaaa"]);
        log.append_line("bbbbbbbb").unwrap(); // rotates
        assert_eq!(tail.poll().unwrap(), vec!["bbbbbbbb"]);
        log.append_line("cccccccc").unwrap(); // rotates again
        assert_eq!(tail.poll().unwrap(), vec!["cccccccc"]);
        fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn tail_finishes_unread_lines_of_the_rotated_generation() {
        let (path, rotated) = temp_paths("tail_unread");
        let log = EventLog::open(&path, &rotated, 16).unwrap();
        let mut tail = EventTail::new(&path, &rotated);
        log.append_line("aa").unwrap();
        assert_eq!(tail.poll().unwrap(), vec!["aa"]);
        // Unread line, then a rotation before the next poll: the tail must
        // deliver the rotated remainder before the new live content.
        log.append_line("bbbbbbbbbb").unwrap();
        log.append_line("cccccccc").unwrap(); // rotates
        assert_eq!(tail.poll().unwrap(), vec!["bbbbbbbbbb", "cccccccc"]);
        fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn tail_ignores_partial_trailing_lines() {
        let (path, rotated) = temp_paths("partial");
        fs::write(&path, "complete\npart").unwrap();
        let mut tail = EventTail::new(&path, &rotated);
        assert_eq!(tail.poll().unwrap(), vec!["complete"]);
        fs::write(&path, "complete\npartial done\n").unwrap();
        assert_eq!(tail.poll().unwrap(), vec!["partial done"]);
        fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
