//! The job model: one submission to the campaign execution service.
//!
//! A [`Job`] wraps a [`ScenarioSpec`] (one campaign or a fleet of them)
//! with a queue identity, a scheduling priority and a lifecycle
//! [`JobState`]. Jobs are content-addressed through their [`JobKey`] — the
//! [`RunId`] of a campaign spec, or a stable hash of a fleet spec — which
//! is what the queue deduplicates on: two submissions of the same spec
//! share a key, so one execution settles both.

use latest_core::spec::{CampaignSpec, ScenarioSpec};
use latest_core::store::{content_hash128, RunId};

use crate::error::{QueueError, QueueResult};

/// Identity of one submission: a dense sequence number allocated by the
/// queue (`job-000042`). The sequence doubles as the FIFO order within a
/// priority class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl JobId {
    /// Parse a `job-<decimal>` id string.
    pub fn parse(text: &str) -> QueueResult<JobId> {
        text.strip_prefix("job-")
            .and_then(|d| d.parse::<u64>().ok())
            .map(JobId)
            .ok_or_else(|| QueueError::BadJobId {
                text: text.to_string(),
            })
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{:06}", self.0)
    }
}

/// Content address of the *work* a job describes, independent of when or
/// how often it was submitted. Campaign jobs reuse the spec's [`RunId`];
/// fleet jobs hash the canonical fleet JSON the same way (`fleet-<32
/// hex>`). Jobs with equal keys describe bitwise-identical executions, so
/// the queue runs one of them and settles the rest.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobKey(String);

impl JobKey {
    /// Derive the key of a scenario.
    pub fn of_spec(spec: &ScenarioSpec) -> JobKey {
        match spec {
            ScenarioSpec::Campaign(c) => JobKey(RunId::of_spec(c).to_string()),
            ScenarioSpec::Fleet(f) => {
                let (h1, h2) = content_hash128(f.to_json().as_bytes());
                JobKey(format!("fleet-{h1:016x}{h2:016x}"))
            }
        }
    }

    /// The key as a string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for JobKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// How a [`JobState::Done`] job reached completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompletionVia {
    /// The worker pool ran the campaign(s).
    Executed,
    /// An archived run of the identical spec was served from the result
    /// store without recomputation.
    Cache,
    /// An identical job executed concurrently; this one observed that
    /// single execution.
    Coalesced,
}

impl std::fmt::Display for CompletionVia {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CompletionVia::Executed => "executed",
            CompletionVia::Cache => "cache",
            CompletionVia::Coalesced => "coalesced",
        })
    }
}

/// Lifecycle of a job: `Queued → Running → Done | Failed | Cancelled`.
///
/// A service killed mid-run reverts its `Running` jobs to `Queued` on
/// restart ([`JobQueue::recover`](crate::queue::JobQueue::recover)); their
/// checkpoints make the re-run resume instead of restart.
#[derive(Clone, Debug, PartialEq)]
pub enum JobState {
    /// Waiting for a worker.
    Queued,
    /// A worker is executing (or about to execute) the job.
    Running,
    /// Finished; results are archived under `run_ids` (one per campaign,
    /// or one per fleet member in slot order).
    Done {
        /// Archive addresses of the job's results.
        run_ids: Vec<RunId>,
        /// Whether the job executed, hit the cache, or coalesced.
        via: CompletionVia,
    },
    /// Execution failed; the job will not be retried.
    Failed {
        /// The rendered error.
        error: String,
    },
    /// Cancelled by request before completing.
    Cancelled,
}

impl JobState {
    /// Whether the job is still waiting or running.
    pub fn is_pending(&self) -> bool {
        matches!(self, JobState::Queued | JobState::Running)
    }

    /// Short lifecycle label (`queued`, `running`, `done`, …).
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done { .. } => "done",
            JobState::Failed { .. } => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobState::Done { run_ids, via } => {
                let ids: Vec<String> = run_ids.iter().map(|r| r.to_string()).collect();
                write!(f, "done ({via}: {})", ids.join(", "))
            }
            JobState::Failed { error } => write!(f, "failed ({error})"),
            other => f.write_str(other.label()),
        }
    }
}

impl serde::Serialize for JobState {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![("state".to_string(), self.label().to_string().to_value())];
        match self {
            JobState::Done { run_ids, via } => {
                let ids: Vec<String> = run_ids.iter().map(|r| r.to_string()).collect();
                entries.push(("run_ids".to_string(), ids.to_value()));
                entries.push(("via".to_string(), via.to_string().to_value()));
            }
            JobState::Failed { error } => {
                entries.push(("error".to_string(), error.to_value()));
            }
            _ => {}
        }
        serde::Value::Map(entries)
    }
}

impl serde::Deserialize for JobState {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value.as_map().ok_or_else(|| {
            serde::Error::custom(format!("expected map for JobState, got {value:?}"))
        })?;
        let tag: String =
            serde::Deserialize::from_value(serde::field(entries, "state", "JobState")?)?;
        match tag.as_str() {
            "queued" => Ok(JobState::Queued),
            "running" => Ok(JobState::Running),
            "cancelled" => Ok(JobState::Cancelled),
            "failed" => Ok(JobState::Failed {
                error: serde::Deserialize::from_value(serde::field(entries, "error", "JobState")?)?,
            }),
            "done" => {
                let ids: Vec<String> =
                    serde::Deserialize::from_value(serde::field(entries, "run_ids", "JobState")?)?;
                let run_ids = ids
                    .iter()
                    .map(|t| {
                        RunId::parse(t)
                            .map_err(|e| serde::Error::custom(format!("bad run id in job: {e}")))
                    })
                    .collect::<Result<Vec<RunId>, serde::Error>>()?;
                let via: String =
                    serde::Deserialize::from_value(serde::field(entries, "via", "JobState")?)?;
                let via = match via.as_str() {
                    "executed" => CompletionVia::Executed,
                    "cache" => CompletionVia::Cache,
                    "coalesced" => CompletionVia::Coalesced,
                    other => {
                        return Err(serde::Error::custom(format!(
                            "unknown completion mode {other:?}"
                        )))
                    }
                };
                Ok(JobState::Done { run_ids, via })
            }
            other => Err(serde::Error::custom(format!("unknown job state {other:?}"))),
        }
    }
}

/// Shard-level progress of one member campaign, journaled while the job
/// runs so `queue status` (and a post-crash inspection) can see how far
/// execution got without parsing checkpoints.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemberLedger {
    /// Pairs settled (measured, skipped or restored from checkpoint).
    pub pairs_done: usize,
    /// Pairs the member campaign schedules in total.
    pub pairs_total: usize,
    /// Work units that ran to completion.
    pub shards_done: usize,
    /// Work units the member's pending pairs were partitioned into.
    pub shards_total: usize,
}

/// The job's shard ledger: one [`MemberLedger`] per member, in slot
/// order. Journaled on every shard completion, so recovery knows exactly
/// which fraction of the job survives in checkpoints — a requeued job
/// re-executes only its unfinished shards (the checkpoint restores the
/// finished ones verbatim).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardLedger {
    /// Per-member progress, in slot order.
    pub members: Vec<MemberLedger>,
}

impl ShardLedger {
    /// Pairs settled across every member.
    pub fn pairs_done(&self) -> usize {
        self.members.iter().map(|m| m.pairs_done).sum()
    }

    /// Pairs scheduled across every member.
    pub fn pairs_total(&self) -> usize {
        self.members.iter().map(|m| m.pairs_total).sum()
    }

    /// Shards completed across every member.
    pub fn shards_done(&self) -> usize {
        self.members.iter().map(|m| m.shards_done).sum()
    }

    /// Shards planned across every member.
    pub fn shards_total(&self) -> usize {
        self.members.iter().map(|m| m.shards_total).sum()
    }

    /// One-line progress summary (`12/56 pairs, 3/8 shards`).
    pub fn summary(&self) -> String {
        format!(
            "{}/{} pairs, {}/{} shards",
            self.pairs_done(),
            self.pairs_total(),
            self.shards_done(),
            self.shards_total()
        )
    }
}

impl serde::Serialize for MemberLedger {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("pairs_done".to_string(), self.pairs_done.to_value()),
            ("pairs_total".to_string(), self.pairs_total.to_value()),
            ("shards_done".to_string(), self.shards_done.to_value()),
            ("shards_total".to_string(), self.shards_total.to_value()),
        ])
    }
}

impl serde::Deserialize for MemberLedger {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value.as_map().ok_or_else(|| {
            serde::Error::custom(format!("expected map for MemberLedger, got {value:?}"))
        })?;
        let get = |name: &str| -> Result<usize, serde::Error> {
            let v: u64 =
                serde::Deserialize::from_value(serde::field(entries, name, "MemberLedger")?)?;
            Ok(v as usize)
        };
        Ok(MemberLedger {
            pairs_done: get("pairs_done")?,
            pairs_total: get("pairs_total")?,
            shards_done: get("shards_done")?,
            shards_total: get("shards_total")?,
        })
    }
}

impl serde::Serialize for ShardLedger {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![("members".to_string(), self.members.to_value())])
    }
}

impl serde::Deserialize for ShardLedger {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value.as_map().ok_or_else(|| {
            serde::Error::custom(format!("expected map for ShardLedger, got {value:?}"))
        })?;
        Ok(ShardLedger {
            members: serde::Deserialize::from_value(serde::field(
                entries,
                "members",
                "ShardLedger",
            )?)?,
        })
    }
}

const JOB_FORMAT: u64 = 1;

/// One submission: the scenario to run, its scheduling priority and
/// lifecycle state. Persisted as one JSON file per job in the queue
/// directory's journal.
#[derive(Clone, Debug, PartialEq)]
pub struct Job {
    /// Queue identity (also the journal file stem and the FIFO order).
    pub id: JobId,
    /// Scheduling priority: higher runs sooner; ties are FIFO by id.
    pub priority: i32,
    /// Bypass the result cache: execute even when an archived run of the
    /// identical spec exists.
    pub force: bool,
    /// The scenario to execute.
    pub spec: ScenarioSpec,
    /// Lifecycle state.
    pub state: JobState,
    /// Shard-level progress, journaled while the job runs (and kept on a
    /// shutdown-requeued job, so `status` shows how much of the resume is
    /// already banked in checkpoints). `None` before execution plans the
    /// job and after it settles.
    pub ledger: Option<ShardLedger>,
}

impl Job {
    /// The job's content address (derived from the spec, never stored).
    pub fn key(&self) -> JobKey {
        JobKey::of_spec(&self.spec)
    }

    /// The member campaign specs, in slot order (a campaign job is a
    /// single-member slice).
    pub fn members(&self) -> &[CampaignSpec] {
        match &self.spec {
            ScenarioSpec::Campaign(c) => std::slice::from_ref(c),
            ScenarioSpec::Fleet(f) => &f.members,
        }
    }

    /// The archive addresses the job's results will land on, in slot
    /// order. Execution is deterministic, so these are known up front.
    pub fn run_ids(&self) -> Vec<RunId> {
        self.members().iter().map(RunId::of_spec).collect()
    }

    /// One-line summary of the work (`a100 campaign, 2 freqs` / `fleet of
    /// 2`), for status tables and event lines.
    pub fn describe(&self) -> String {
        match &self.spec {
            ScenarioSpec::Campaign(c) => format!("campaign on {}", c.device),
            ScenarioSpec::Fleet(f) => format!("fleet of {}", f.members.len()),
        }
    }

    /// Serialise to pretty JSON (the journal file format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("job serialises")
    }

    /// Parse a job back from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

impl serde::Serialize for Job {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("format".to_string(), JOB_FORMAT.to_value()),
            ("id".to_string(), self.id.to_string().to_value()),
            ("priority".to_string(), (self.priority as i64).to_value()),
            ("force".to_string(), self.force.to_value()),
            ("state".to_string(), self.state.to_value()),
        ];
        if let Some(ledger) = &self.ledger {
            entries.push(("ledger".to_string(), ledger.to_value()));
        }
        entries.push(("spec".to_string(), self.spec.to_value()));
        serde::Value::Map(entries)
    }
}

impl serde::Deserialize for Job {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| serde::Error::custom(format!("expected map for Job, got {value:?}")))?;
        let field = |name: &str| serde::field(entries, name, "Job");
        let format: u64 = serde::Deserialize::from_value(field("format")?)?;
        if format != JOB_FORMAT {
            return Err(serde::Error::custom(format!(
                "unsupported job format {format} (this tool reads {JOB_FORMAT})"
            )));
        }
        let id_text: String = serde::Deserialize::from_value(field("id")?)?;
        let id = JobId::parse(&id_text)
            .map_err(|e| serde::Error::custom(format!("bad job id in journal entry: {e}")))?;
        let priority: i64 = serde::Deserialize::from_value(field("priority")?)?;
        // Optional: entries journaled before the shard scheduler existed
        // (or outside an execution window) carry no ledger.
        let ledger = entries
            .iter()
            .find(|(k, _)| k == "ledger")
            .map(|(_, v)| serde::Deserialize::from_value(v))
            .transpose()?;
        Ok(Job {
            id,
            priority: priority as i32,
            force: serde::Deserialize::from_value(field("force")?)?,
            state: serde::Deserialize::from_value(field("state")?)?,
            spec: serde::Deserialize::from_value(field("spec")?)?,
            ledger,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latest_core::spec::FleetSpec;

    fn tiny(seed: u64) -> CampaignSpec {
        CampaignSpec::builder("a100")
            .frequencies_mhz(&[705, 1410])
            .measurements(3, 6)
            .simulated_sms(Some(2))
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn job_ids_format_and_parse() {
        let id = JobId(42);
        assert_eq!(id.to_string(), "job-000042");
        assert_eq!(JobId::parse("job-000042").unwrap(), id);
        assert_eq!(JobId::parse("job-7").unwrap(), JobId(7));
        assert!(JobId::parse("run-000042").is_err());
        assert!(JobId::parse("job-x").is_err());
    }

    #[test]
    fn keys_are_content_addressed() {
        let a = ScenarioSpec::Campaign(tiny(1));
        let b = ScenarioSpec::Campaign(tiny(1));
        let c = ScenarioSpec::Campaign(tiny(2));
        assert_eq!(JobKey::of_spec(&a), JobKey::of_spec(&b));
        assert_ne!(JobKey::of_spec(&a), JobKey::of_spec(&c));
        // Campaign keys are literally the run id.
        assert_eq!(
            JobKey::of_spec(&a).as_str(),
            RunId::of_spec(&tiny(1)).as_str()
        );
        // Fleet keys are stable across re-serialisation and distinct from
        // campaign keys.
        let f = ScenarioSpec::Fleet(FleetSpec::new().member(tiny(1)).member(tiny(2)));
        let f2 = ScenarioSpec::from_json(&f.to_json()).unwrap();
        assert_eq!(JobKey::of_spec(&f), JobKey::of_spec(&f2));
        assert!(JobKey::of_spec(&f).as_str().starts_with("fleet-"));
    }

    #[test]
    fn jobs_round_trip_through_json() {
        let states = vec![
            JobState::Queued,
            JobState::Running,
            JobState::Cancelled,
            JobState::Failed {
                error: "spec violation".to_string(),
            },
            JobState::Done {
                run_ids: vec![RunId::of_spec(&tiny(3))],
                via: CompletionVia::Cache,
            },
            JobState::Done {
                run_ids: vec![RunId::of_spec(&tiny(3)), RunId::of_spec(&tiny(4))],
                via: CompletionVia::Coalesced,
            },
        ];
        for (i, state) in states.into_iter().enumerate() {
            let job = Job {
                id: JobId(i as u64),
                priority: -2 + i as i32,
                force: i % 2 == 0,
                spec: ScenarioSpec::Campaign(tiny(9)),
                state,
                ledger: None,
            };
            let back = Job::from_json(&job.to_json()).unwrap();
            assert_eq!(back, job);
        }
    }

    #[test]
    fn ledgers_round_trip_and_summarise() {
        let ledger = ShardLedger {
            members: vec![
                MemberLedger {
                    pairs_done: 4,
                    pairs_total: 6,
                    shards_done: 2,
                    shards_total: 3,
                },
                MemberLedger {
                    pairs_done: 6,
                    pairs_total: 6,
                    shards_done: 3,
                    shards_total: 3,
                },
            ],
        };
        assert_eq!(ledger.summary(), "10/12 pairs, 5/6 shards");
        let job = Job {
            id: JobId(7),
            priority: 0,
            force: false,
            spec: ScenarioSpec::Campaign(tiny(9)),
            state: JobState::Running,
            ledger: Some(ledger),
        };
        let back = Job::from_json(&job.to_json()).unwrap();
        assert_eq!(back, job);
        // Entries journaled without a ledger (the pre-shard format) still
        // parse: the field is optional.
        let bare = Job {
            ledger: None,
            ..job
        };
        assert_eq!(Job::from_json(&bare.to_json()).unwrap().ledger, None);
    }

    #[test]
    fn fleet_jobs_expose_members_in_slot_order() {
        let job = Job {
            id: JobId(0),
            priority: 0,
            force: false,
            spec: ScenarioSpec::Fleet(FleetSpec::new().member(tiny(1)).member(tiny(2))),
            state: JobState::Queued,
            ledger: None,
        };
        assert_eq!(job.members().len(), 2);
        assert_eq!(job.run_ids().len(), 2);
        assert_eq!(job.run_ids()[0], RunId::of_spec(&tiny(1)));
        assert_eq!(job.run_ids()[1], RunId::of_spec(&tiny(2)));
        assert_eq!(job.describe(), "fleet of 2");
    }
}
