//! The crash-safe, directory-backed job queue.
//!
//! Layout under the queue directory:
//!
//! ```text
//! <dir>/jobs/job-000001.json        one journal file per *pending* job
//! <dir>/jobs/done/job-000001.json   settled entries, compacted out of the
//!                                   pending set on settle
//! <dir>/jobs/job-000001.cancel      cancellation request marker
//! <dir>/checkpoints/job-000001.m0.json   per-member resume checkpoints
//! <dir>/store/                      the result cache (a ResultStore)
//! <dir>/events.log                  append-only event feed (`queue watch`)
//! <dir>/events.log.1                rotated previous feed generation
//! <dir>/telemetry.json              last drain's per-stage latency snapshot
//! <dir>/.lock                       cross-process advisory lock
//! ```
//!
//! The journal is compacted on settle: a job entering a terminal state
//! (`Done`/`Failed`/`Cancelled`) is written into `jobs/done/` and its
//! pending entry removed, so the hot paths a serving pool runs every poll
//! cycle — claiming, duplicate settling — parse O(pending) files, not
//! every entry ever journaled. Recovery and `queue status` still read the
//! full history ([`JobQueue::jobs`] merges both directories).
//!
//! Every state transition rewrites the job's journal file atomically
//! (write-to-temp + rename, the same discipline as the checkpoint writer
//! and the result store), so a crash at any instant leaves every job
//! either fully in its old state or fully in its new one — never torn.
//! Submissions claim their id with a hard-link publish (create-new
//! semantics), so two concurrent `queue submit` processes can never land
//! on the same id.
//!
//! Scheduling is priority-first (higher `priority` runs sooner), FIFO by
//! job id within a priority class. Deduplication is key-based:
//! [`JobQueue::take_next`] never hands out a job whose [`JobKey`] is
//! already `Running`, and [`JobQueue::settle_duplicates`] marks every
//! queued job with the finished key `Done` — two submissions of the same
//! spec therefore coalesce onto one execution. A `force` submission is
//! never coalesced: it demanded a fresh measurement, so it stays queued
//! until a worker executes it itself.
//!
//! Read-modify-write cycles (claiming, cancelling, settling) serialise
//! across *processes* through an advisory lock on `<dir>/.lock`
//! ([`JobQueue::lock_exclusive`]), so a `queue cancel` racing a serving
//! pool can never overwrite a `Running` entry it did not observe.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use latest_core::spec::ScenarioSpec;
use latest_core::store::RunId;

use crate::error::{QueueError, QueueResult};
use crate::job::{CompletionVia, Job, JobId, JobKey, JobState};

/// Options for one submission.
#[derive(Clone, Copy, Debug, Default)]
pub struct SubmitOptions {
    /// Scheduling priority: higher runs sooner (default 0).
    pub priority: i32,
    /// Bypass the result cache: execute even when an archived run of the
    /// identical spec exists.
    pub force: bool,
}

/// Counts of jobs per lifecycle state (the `queue status` summary line).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueCounts {
    /// Jobs waiting for a worker.
    pub queued: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Jobs finished successfully (any [`CompletionVia`]).
    pub done: usize,
    /// Jobs that failed.
    pub failed: usize,
    /// Jobs cancelled by request.
    pub cancelled: usize,
}

impl QueueCounts {
    /// Jobs still waiting or running.
    pub fn pending(&self) -> usize {
        self.queued + self.running
    }
}

/// The persistent job queue. See the [module docs](self) for the layout
/// and crash-safety discipline.
///
/// All methods take `&self` and re-read the journal from disk, so a
/// separate `queue submit` process is observed on the very next poll; the
/// worker pool serialises its own read-modify-write cycles behind a lock.
#[derive(Clone, Debug)]
pub struct JobQueue {
    dir: PathBuf,
}

/// Exclusive cross-process hold on the queue's `<dir>/.lock` file;
/// released when dropped. See [`JobQueue::lock_exclusive`].
#[derive(Debug)]
pub struct QueueLock {
    _file: fs::File,
}

/// Exclusive hold on the queue directory's *service slot*
/// (`<dir>/.serve.lock`); released when dropped. At most one worker pool
/// may serve a directory at a time — see [`JobQueue::try_lock_service`].
#[derive(Debug)]
pub struct ServiceLock {
    _file: fs::File,
}

/// One claim attempt: the job handed out (already journaled `Running`),
/// plus how many jobs were pending (`Queued` or `Running`) in the same
/// journal snapshot — so a drain loop can decide "nothing left" without
/// re-reading the journal.
#[derive(Debug)]
pub struct Claim {
    /// The claimed job, if any was eligible.
    pub job: Option<Job>,
    /// Pending (queued + running) jobs in the snapshot the claim saw.
    pub pending: usize,
    /// Every `Queued` job id in the snapshot (the claimed one included),
    /// in id order — the pool stamps queue-wait telemetry from the first
    /// scan that observes each id.
    pub queued: Vec<JobId>,
}

impl JobQueue {
    /// Open (creating if necessary) the queue rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> QueueResult<JobQueue> {
        let dir = dir.into();
        fs::create_dir_all(dir.join("jobs").join("done"))?;
        fs::create_dir_all(dir.join("checkpoints"))?;
        Ok(JobQueue { dir })
    }

    /// The queue's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The result cache directory (`<dir>/store`) the service archives
    /// into by default.
    pub fn default_store_dir(&self) -> PathBuf {
        self.dir.join("store")
    }

    /// The append-only event feed file (`<dir>/events.log`).
    pub fn events_log_path(&self) -> PathBuf {
        self.dir.join("events.log")
    }

    /// The rotated previous generation of the event feed
    /// (`<dir>/events.log.1`).
    pub fn rotated_events_log_path(&self) -> PathBuf {
        self.dir.join("events.log.1")
    }

    /// The last persisted telemetry snapshot (`<dir>/telemetry.json`),
    /// written at the end of every drain/serve call.
    pub fn telemetry_path(&self) -> PathBuf {
        self.dir.join("telemetry.json")
    }

    fn jobs_dir(&self) -> PathBuf {
        self.dir.join("jobs")
    }

    fn done_dir(&self) -> PathBuf {
        self.jobs_dir().join("done")
    }

    /// Take the queue's cross-process advisory lock, blocking until it is
    /// free. Every read-modify-write cycle that spans a load and a save
    /// (claiming, cancelling, settling duplicates, recovery) must run
    /// under this lock so concurrent *processes* — a serving pool and a
    /// `queue cancel`, say — cannot interleave and overwrite each other's
    /// state transitions. Dropping the guard releases the lock.
    pub fn lock_exclusive(&self) -> QueueResult<QueueLock> {
        let file = fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(self.dir.join(".lock"))?;
        file.lock()?;
        Ok(QueueLock { _file: file })
    }

    /// Claim the directory's service slot without blocking. `Ok(None)`
    /// means another pool is already serving this directory.
    ///
    /// Exactly one service may drive a queue directory at a time:
    /// crash recovery ([`JobQueue::recover`]) cannot tell a killed
    /// service's `Running` entries from a live sibling's, so a second
    /// pool would requeue — and re-execute — jobs that are still in
    /// flight. The worker pool therefore holds this lock for the whole
    /// of a serve/drain call and recovers only under it.
    pub fn try_lock_service(&self) -> QueueResult<Option<ServiceLock>> {
        let file = fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(self.dir.join(".serve.lock"))?;
        match file.try_lock() {
            Ok(()) => Ok(Some(ServiceLock { _file: file })),
            Err(fs::TryLockError::WouldBlock) => Ok(None),
            Err(fs::TryLockError::Error(e)) => Err(e.into()),
        }
    }

    fn path_of(&self, id: JobId) -> PathBuf {
        self.jobs_dir().join(format!("{id}.json"))
    }

    fn cancel_marker(&self, id: JobId) -> PathBuf {
        self.jobs_dir().join(format!("{id}.cancel"))
    }

    fn done_path(&self, id: JobId) -> PathBuf {
        self.done_dir().join(format!("{id}.json"))
    }

    /// The checkpoint file for one member campaign of a job.
    pub fn checkpoint_path(&self, id: JobId, member: usize) -> PathBuf {
        self.dir
            .join("checkpoints")
            .join(format!("{id}.m{member}.json"))
    }

    /// Remove every checkpoint a job left behind.
    pub fn clear_checkpoints(&self, job: &Job) -> QueueResult<()> {
        for member in 0..job.members().len() {
            match fs::remove_file(self.checkpoint_path(job.id, member)) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Validate and enqueue one scenario, returning the journaled job.
    ///
    /// Submission never coalesces by itself — every call creates a job —
    /// but jobs sharing a [`JobKey`] are executed once and settled
    /// together by the worker pool.
    pub fn submit(&self, spec: ScenarioSpec, options: SubmitOptions) -> QueueResult<Job> {
        spec.validate()?;
        let mut next = self.highest_id()?.map_or(1, |id| id.0 + 1);
        loop {
            let job = Job {
                id: JobId(next),
                priority: options.priority,
                force: options.force,
                spec: spec.clone(),
                state: JobState::Queued,
                ledger: None,
            };
            match self.publish_new(&job) {
                Ok(()) => return Ok(job),
                // Another submitter claimed this id between our scan and
                // our publish: take the next one.
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => next += 1,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Publish a brand-new journal entry with create-new semantics: write
    /// the full content to a temp file, then hard-link it to its final
    /// name — the link fails (instead of overwriting) if the id is taken,
    /// and a crash mid-write leaves only an ignorable temp file. The temp
    /// name carries the pid *and* a per-process counter: the queue is
    /// `Clone` and takes `&self`, so two threads of one process may submit
    /// concurrently and must not write through the same temp file.
    fn publish_new(&self, job: &Job) -> io::Result<()> {
        static SUBMIT_SEQ: AtomicU64 = AtomicU64::new(0);
        let path = self.path_of(job.id);
        let tmp = self.jobs_dir().join(format!(
            ".submit-{}-{}.tmp",
            std::process::id(),
            SUBMIT_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, job.to_json())?;
        let linked = fs::hard_link(&tmp, &path);
        let _ = fs::remove_file(&tmp);
        linked
    }

    /// Rewrite a job's journal entry atomically (state transitions).
    ///
    /// Compaction happens here: a job entering a terminal state is written
    /// into `jobs/done/` and its pending entry removed, so the pending
    /// directory holds exactly the queued and running jobs. Order matters
    /// for crash safety — the settled entry lands first, so a crash
    /// between the two steps leaves a pending stray that
    /// [`JobQueue::recover`] sweeps (the `done/` copy wins).
    pub fn save(&self, job: &Job) -> QueueResult<()> {
        let path = if job.state.is_pending() {
            self.path_of(job.id)
        } else {
            self.done_path(job.id)
        };
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, job.to_json())?;
        fs::rename(&tmp, &path)?;
        if !job.state.is_pending() {
            match fs::remove_file(self.path_of(job.id)) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Load one job by id. The settled copy wins when both exist (the
    /// pending twin is then a crash stray awaiting recovery sweep).
    pub fn load(&self, id: JobId) -> QueueResult<Job> {
        let done = self.done_path(id);
        let path = if done.is_file() {
            done
        } else {
            self.path_of(id)
        };
        let text = fs::read_to_string(&path).map_err(|e| {
            if e.kind() == io::ErrorKind::NotFound {
                QueueError::NotFound { id: id.to_string() }
            } else {
                QueueError::Io(e)
            }
        })?;
        Job::from_json(&text).map_err(|e| QueueError::Parse {
            path,
            message: e.to_string(),
        })
    }

    fn ids_in(dir: &Path) -> QueueResult<Vec<JobId>> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_file() {
                continue;
            }
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(".json") {
                if let Ok(id) = JobId::parse(stem) {
                    ids.push(id);
                }
            }
        }
        Ok(ids)
    }

    /// Ids with a journal entry in the pending directory (a raw listing —
    /// crash strays with a settled twin included).
    fn pending_ids(&self) -> QueueResult<Vec<JobId>> {
        let mut ids = Self::ids_in(&self.jobs_dir())?;
        ids.sort();
        Ok(ids)
    }

    /// The pending (queued + running) jobs, in id order — the set the
    /// serving pool's hot paths scan. Parses O(pending) files: settled
    /// jobs live in `jobs/done/` and are never touched here.
    fn pending_jobs(&self) -> QueueResult<Vec<Job>> {
        let mut jobs = Vec::new();
        for id in self.pending_ids()? {
            // A settled twin means this pending entry is a crash stray;
            // load() already prefers the done/ copy, so skip strays whose
            // loaded state is terminal.
            let job = self.load(id)?;
            if job.state.is_pending() {
                jobs.push(job);
            }
        }
        Ok(jobs)
    }

    /// Every journaled job — pending and settled — in id (submission)
    /// order. The full-history read `queue status` and recovery use;
    /// hot paths use the pending set instead.
    pub fn jobs(&self) -> QueueResult<Vec<Job>> {
        let mut ids = Self::ids_in(&self.jobs_dir())?;
        ids.extend(Self::ids_in(&self.done_dir())?);
        ids.sort();
        ids.dedup();
        ids.into_iter().map(|id| self.load(id)).collect()
    }

    fn highest_id(&self) -> QueueResult<Option<JobId>> {
        let mut highest = Self::ids_in(&self.jobs_dir())?.into_iter().max();
        highest = highest.max(Self::ids_in(&self.done_dir())?.into_iter().max());
        Ok(highest)
    }

    /// Per-state job counts.
    pub fn counts(&self) -> QueueResult<QueueCounts> {
        let mut counts = QueueCounts::default();
        for job in self.jobs()? {
            match job.state {
                JobState::Queued => counts.queued += 1,
                JobState::Running => counts.running += 1,
                JobState::Done { .. } => counts.done += 1,
                JobState::Failed { .. } => counts.failed += 1,
                JobState::Cancelled => counts.cancelled += 1,
            }
        }
        Ok(counts)
    }

    /// Claim the next job to execute: the highest-priority `Queued` job
    /// (FIFO by id within a priority), skipping any whose key is already
    /// `Running` — that execution will settle them. The claimed job is
    /// journaled as `Running` before being returned.
    pub fn take_next(&self) -> QueueResult<Option<Job>> {
        Ok(self.claim()?.job)
    }

    /// Like [`JobQueue::take_next`], but also reports the snapshot's
    /// pending count so a polling worker needs only one journal read per
    /// cycle. Callers coordinating across processes should hold
    /// [`JobQueue::lock_exclusive`] around the call.
    pub fn claim(&self) -> QueueResult<Claim> {
        let jobs = self.pending_jobs()?;
        let pending = jobs.len();
        let busy: Vec<JobKey> = jobs
            .iter()
            .filter(|j| j.state == JobState::Running)
            .map(Job::key)
            .collect();
        let queued: Vec<JobId> = jobs
            .iter()
            .filter(|j| j.state == JobState::Queued)
            .map(|j| j.id)
            .collect();
        let best = jobs
            .into_iter()
            .filter(|j| j.state == JobState::Queued && !busy.contains(&j.key()))
            // max_by_key keeps the *last* maximum, so compare (priority,
            // Reverse(id)) to make the earliest id win within a priority.
            .max_by_key(|j| (j.priority, std::cmp::Reverse(j.id)));
        match best {
            Some(mut job) => {
                job.state = JobState::Running;
                self.save(&job)?;
                Ok(Claim {
                    job: Some(job),
                    pending,
                    queued,
                })
            }
            None => Ok(Claim {
                job: None,
                pending,
                queued,
            }),
        }
    }

    /// Settle every still-queued duplicate of a finished key as `Done`
    /// (via `Coalesced`), returning the settled jobs.
    ///
    /// `force` submissions are exempt: they demanded a fresh measurement,
    /// so another job's completion (which may itself have been a cache
    /// hit) must not satisfy them — they stay queued and execute.
    pub fn settle_duplicates(
        &self,
        key: &JobKey,
        run_ids: &[RunId],
        exclude: JobId,
    ) -> QueueResult<Vec<Job>> {
        let mut settled = Vec::new();
        for mut job in self.pending_jobs()? {
            if job.id != exclude && !job.force && job.state == JobState::Queued && &job.key() == key
            {
                job.state = JobState::Done {
                    run_ids: run_ids.to_vec(),
                    via: CompletionVia::Coalesced,
                };
                self.save(&job)?;
                settled.push(job);
            }
        }
        Ok(settled)
    }

    /// Request cancellation of a job.
    ///
    /// A `Queued` job is marked `Cancelled` immediately. For a `Running`
    /// job a marker file is dropped; the serving pool polls markers from
    /// idle workers *and* from the executing worker's checkpoint sink, so
    /// cancellation lands within one poll interval or one checkpoint
    /// boundary even when every worker is busy. Settled jobs are left
    /// untouched (`Ok(false)`).
    ///
    /// Runs under [`JobQueue::lock_exclusive`]: without it, a serving
    /// pool could claim the job between our load and our save, and the
    /// `Cancelled` write would silently clobber its `Running` entry.
    pub fn request_cancel(&self, id: JobId) -> QueueResult<bool> {
        let _lock = self.lock_exclusive()?;
        let mut job = self.load(id)?;
        match job.state {
            JobState::Queued => {
                job.state = JobState::Cancelled;
                self.save(&job)?;
                // A shutdown-requeued job may have left resume checkpoints;
                // a cancelled job will never use them.
                self.clear_checkpoints(&job)?;
                let _ = fs::remove_file(self.cancel_marker(id));
                Ok(true)
            }
            JobState::Running => {
                fs::write(self.cancel_marker(id), b"cancel\n")?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Whether a cancellation marker is pending for a job.
    pub fn cancel_requested(&self, id: JobId) -> bool {
        self.cancel_marker(id).is_file()
    }

    /// Ids with a pending cancellation marker, in id order. A directory
    /// listing only — no journal entries are parsed — so a poll cycle can
    /// skip marker handling entirely in the (usual) no-markers case.
    pub fn pending_cancels(&self) -> QueueResult<Vec<JobId>> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(self.jobs_dir())? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(".cancel") {
                if let Ok(id) = JobId::parse(stem) {
                    ids.push(id);
                }
            }
        }
        ids.sort();
        Ok(ids)
    }

    /// Drop a job's cancellation marker (after honouring it).
    pub fn clear_cancel_request(&self, id: JobId) -> QueueResult<()> {
        match fs::remove_file(self.cancel_marker(id)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Crash recovery: revert every `Running` job to `Queued`, returning
    /// the reverted jobs. Called when a service opens a queue directory —
    /// a journal with `Running` entries but no live service is the
    /// signature of a kill; the jobs' checkpoints make the re-run resume
    /// from where the dead service stopped.
    ///
    /// Recovery also tidies the pending directory: crash strays (a
    /// pending entry whose settled twin already landed in `jobs/done/`)
    /// are swept, and terminal entries journaled by a pre-compaction
    /// version of this crate are migrated into `jobs/done/`.
    pub fn recover(&self) -> QueueResult<Vec<Job>> {
        let _lock = self.lock_exclusive()?;
        let mut reverted = Vec::new();
        for id in self.pending_ids()? {
            if self.done_path(id).is_file() {
                // Crash stray: the settled copy is authoritative.
                match fs::remove_file(self.path_of(id)) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e.into()),
                }
                continue;
            }
            let mut job = self.load(id)?;
            match job.state {
                JobState::Running => {
                    job.state = JobState::Queued;
                    self.save(&job)?;
                    reverted.push(job);
                }
                JobState::Queued => {}
                // Legacy terminal entry: re-save routes it to jobs/done/.
                _ => self.save(&job)?,
            }
        }
        Ok(reverted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latest_core::spec::CampaignSpec;

    fn tiny(seed: u64) -> ScenarioSpec {
        ScenarioSpec::Campaign(
            CampaignSpec::builder("a100")
                .frequencies_mhz(&[705, 1410])
                .measurements(3, 6)
                .simulated_sms(Some(2))
                .seed(seed)
                .build()
                .unwrap(),
        )
    }

    fn temp_queue(tag: &str) -> JobQueue {
        let dir =
            std::env::temp_dir().join(format!("latest_queue_test_{tag}_{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        JobQueue::open(dir).unwrap()
    }

    #[test]
    fn submit_journals_and_reloads() {
        let q = temp_queue("submit");
        let a = q
            .submit(
                tiny(1),
                SubmitOptions {
                    priority: 3,
                    force: true,
                },
            )
            .unwrap();
        let b = q.submit(tiny(2), SubmitOptions::default()).unwrap();
        assert_eq!(a.id, JobId(1));
        assert_eq!(b.id, JobId(2));
        // Reload from disk (as a restarted process would).
        let jobs = JobQueue::open(q.dir()).unwrap().jobs().unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0], a);
        assert_eq!(jobs[1], b);
        assert!(jobs[0].force && jobs[0].priority == 3);
        fs::remove_dir_all(q.dir()).ok();
    }

    #[test]
    fn invalid_specs_are_rejected_at_submission() {
        let q = temp_queue("invalid");
        let bad = ScenarioSpec::Campaign(CampaignSpec {
            device: "h100".to_string(),
            ..CampaignSpec::default()
        });
        assert!(matches!(
            q.submit(bad, SubmitOptions::default()),
            Err(QueueError::Spec(_))
        ));
        assert!(q.jobs().unwrap().is_empty(), "nothing journaled");
        fs::remove_dir_all(q.dir()).ok();
    }

    #[test]
    fn take_next_is_priority_then_fifo() {
        let q = temp_queue("order");
        let low = q
            .submit(
                tiny(1),
                SubmitOptions {
                    priority: -1,
                    force: false,
                },
            )
            .unwrap();
        let mid_a = q.submit(tiny(2), SubmitOptions::default()).unwrap();
        let mid_b = q.submit(tiny(3), SubmitOptions::default()).unwrap();
        let high = q
            .submit(
                tiny(4),
                SubmitOptions {
                    priority: 9,
                    force: false,
                },
            )
            .unwrap();
        let mut order = Vec::new();
        while let Some(mut job) = q.take_next().unwrap() {
            order.push(job.id);
            job.state = JobState::Done {
                run_ids: job.run_ids(),
                via: CompletionVia::Executed,
            };
            q.save(&job).unwrap();
        }
        assert_eq!(order, vec![high.id, mid_a.id, mid_b.id, low.id]);
        fs::remove_dir_all(q.dir()).ok();
    }

    #[test]
    fn running_keys_block_duplicates_and_settle_them() {
        let q = temp_queue("dedupe");
        let first = q.submit(tiny(7), SubmitOptions::default()).unwrap();
        let dup = q.submit(tiny(7), SubmitOptions::default()).unwrap();
        let other = q
            .submit(
                tiny(8),
                SubmitOptions {
                    priority: -5,
                    force: false,
                },
            )
            .unwrap();

        let claimed = q.take_next().unwrap().unwrap();
        assert_eq!(claimed.id, first.id);
        // The duplicate shares the running key, so the *other* job is next
        // despite its lower priority.
        let next = q.take_next().unwrap().unwrap();
        assert_eq!(next.id, other.id);
        assert!(q.take_next().unwrap().is_none(), "duplicate stays blocked");

        let settled = q
            .settle_duplicates(&claimed.key(), &claimed.run_ids(), claimed.id)
            .unwrap();
        assert_eq!(settled.len(), 1);
        assert_eq!(settled[0].id, dup.id);
        match &q.load(dup.id).unwrap().state {
            JobState::Done { run_ids, via } => {
                assert_eq!(run_ids, &claimed.run_ids());
                assert_eq!(*via, CompletionVia::Coalesced);
            }
            other => panic!("expected coalesced Done, got {other:?}"),
        }
        fs::remove_dir_all(q.dir()).ok();
    }

    #[test]
    fn force_duplicates_are_never_coalesced() {
        let q = temp_queue("force_dedupe");
        let plain = q.submit(tiny(7), SubmitOptions::default()).unwrap();
        let forced = q
            .submit(
                tiny(7),
                SubmitOptions {
                    priority: 0,
                    force: true,
                },
            )
            .unwrap();
        let claimed = q.take_next().unwrap().unwrap();
        assert_eq!(claimed.id, plain.id);
        // Settling the plain job's key must leave the forced duplicate
        // queued: it demanded a fresh execution.
        let settled = q
            .settle_duplicates(&claimed.key(), &claimed.run_ids(), claimed.id)
            .unwrap();
        assert!(settled.is_empty(), "force job must not coalesce");
        assert_eq!(q.load(forced.id).unwrap().state, JobState::Queued);
        fs::remove_dir_all(q.dir()).ok();
    }

    #[test]
    fn pending_cancels_lists_marker_ids_only() {
        let q = temp_queue("markers");
        let a = q.submit(tiny(1), SubmitOptions::default()).unwrap();
        let b = q.submit(tiny(2), SubmitOptions::default()).unwrap();
        assert!(q.pending_cancels().unwrap().is_empty());
        let running = q.take_next().unwrap().unwrap();
        assert_eq!(running.id, a.id);
        assert!(q.request_cancel(a.id).unwrap());
        assert_eq!(q.pending_cancels().unwrap(), vec![a.id]);
        // Queued cancellation settles directly and leaves no marker.
        assert!(q.request_cancel(b.id).unwrap());
        assert_eq!(q.pending_cancels().unwrap(), vec![a.id]);
        q.clear_cancel_request(a.id).unwrap();
        assert!(q.pending_cancels().unwrap().is_empty());
        fs::remove_dir_all(q.dir()).ok();
    }

    #[test]
    fn claim_reports_snapshot_pending() {
        let q = temp_queue("claim");
        q.submit(tiny(1), SubmitOptions::default()).unwrap();
        q.submit(tiny(2), SubmitOptions::default()).unwrap();
        let first = q.claim().unwrap();
        assert!(first.job.is_some());
        assert_eq!(first.pending, 2);
        assert_eq!(
            first.queued,
            vec![JobId(1), JobId(2)],
            "snapshot lists every queued id, the claimed one included"
        );
        let second = q.claim().unwrap();
        assert!(second.job.is_some());
        assert_eq!(second.pending, 2, "one running + one queued");
        assert_eq!(second.queued, vec![JobId(2)]);
        let empty = q.claim().unwrap();
        assert!(empty.job.is_none());
        assert_eq!(empty.pending, 2, "both claimed jobs still running");
        assert!(empty.queued.is_empty());
        fs::remove_dir_all(q.dir()).ok();
    }

    #[test]
    fn recover_requeues_running_jobs() {
        let q = temp_queue("recover");
        q.submit(tiny(1), SubmitOptions::default()).unwrap();
        q.submit(tiny(2), SubmitOptions::default()).unwrap();
        let claimed = q.take_next().unwrap().unwrap();
        assert_eq!(q.counts().unwrap().running, 1);
        // "Kill": reopen the directory and recover.
        let reopened = JobQueue::open(q.dir()).unwrap();
        let reverted = reopened.recover().unwrap();
        assert_eq!(reverted.len(), 1);
        assert_eq!(reverted[0].id, claimed.id);
        let counts = reopened.counts().unwrap();
        assert_eq!((counts.queued, counts.running), (2, 0));
        fs::remove_dir_all(q.dir()).ok();
    }

    #[test]
    fn cancellation_marks_queued_and_flags_running() {
        let q = temp_queue("cancel");
        let a = q.submit(tiny(1), SubmitOptions::default()).unwrap();
        let b = q.submit(tiny(2), SubmitOptions::default()).unwrap();
        let running = q.take_next().unwrap().unwrap();
        assert_eq!(running.id, a.id);
        // Queued: cancelled immediately.
        assert!(q.request_cancel(b.id).unwrap());
        assert_eq!(q.load(b.id).unwrap().state, JobState::Cancelled);
        // Running: marker only, state untouched until the pool honours it.
        assert!(q.request_cancel(a.id).unwrap());
        assert_eq!(q.load(a.id).unwrap().state, JobState::Running);
        assert!(q.cancel_requested(a.id));
        q.clear_cancel_request(a.id).unwrap();
        assert!(!q.cancel_requested(a.id));
        // Settled jobs refuse.
        assert!(!q.request_cancel(b.id).unwrap());
        fs::remove_dir_all(q.dir()).ok();
    }

    #[test]
    fn settled_jobs_compact_into_done_directory() {
        let q = temp_queue("compact");
        let a = q.submit(tiny(1), SubmitOptions::default()).unwrap();
        let b = q.submit(tiny(2), SubmitOptions::default()).unwrap();
        let mut claimed = q.take_next().unwrap().unwrap();
        claimed.state = JobState::Done {
            run_ids: claimed.run_ids(),
            via: CompletionVia::Executed,
        };
        q.save(&claimed).unwrap();
        // The settled entry moved out of the pending directory...
        assert!(!q.path_of(a.id).is_file());
        assert!(q.done_path(a.id).is_file());
        // ...but status-style reads still see the full history...
        let jobs = q.jobs().unwrap();
        assert_eq!(jobs.len(), 2);
        assert!(matches!(q.load(a.id).unwrap().state, JobState::Done { .. }));
        // ...and new submissions never reuse a settled id.
        let c = q.submit(tiny(3), SubmitOptions::default()).unwrap();
        assert_eq!(c.id, JobId(3));
        assert_eq!(q.load(b.id).unwrap().state, JobState::Queued);
        let counts = q.counts().unwrap();
        assert_eq!((counts.queued, counts.done), (2, 1));
        fs::remove_dir_all(q.dir()).ok();
    }

    #[test]
    fn recover_sweeps_strays_and_migrates_legacy_entries() {
        let q = temp_queue("compact_recover");
        let a = q.submit(tiny(1), SubmitOptions::default()).unwrap();
        let b = q.submit(tiny(2), SubmitOptions::default()).unwrap();
        // Crash stray: settled copy landed, pending twin survived the
        // crash between the two steps of save().
        let mut settled = q.load(a.id).unwrap();
        settled.state = JobState::Cancelled;
        fs::write(q.done_path(a.id), settled.to_json()).unwrap();
        // Legacy entry: a terminal job journaled in the pending directory
        // by a pre-compaction version.
        let mut legacy = q.load(b.id).unwrap();
        legacy.state = JobState::Done {
            run_ids: legacy.run_ids(),
            via: CompletionVia::Executed,
        };
        fs::write(q.path_of(b.id), legacy.to_json()).unwrap();

        let reverted = q.recover().unwrap();
        assert!(reverted.is_empty());
        assert!(!q.path_of(a.id).is_file(), "stray swept");
        assert!(!q.path_of(b.id).is_file(), "legacy entry migrated");
        assert!(q.done_path(b.id).is_file());
        assert_eq!(q.load(a.id).unwrap().state, JobState::Cancelled);
        assert!(matches!(q.load(b.id).unwrap().state, JobState::Done { .. }));
        assert!(q.take_next().unwrap().is_none(), "nothing left to claim");
        fs::remove_dir_all(q.dir()).ok();
    }

    #[test]
    fn torn_journal_entries_are_reported() {
        let q = temp_queue("torn");
        let job = q.submit(tiny(1), SubmitOptions::default()).unwrap();
        fs::write(
            q.dir().join("jobs").join(format!("{}.json", job.id)),
            "{not json",
        )
        .unwrap();
        assert!(matches!(q.load(job.id), Err(QueueError::Parse { .. })));
        assert!(matches!(
            q.load(JobId(99)),
            Err(QueueError::NotFound { .. })
        ));
        fs::remove_dir_all(q.dir()).ok();
    }
}
