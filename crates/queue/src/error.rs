//! Error types for the campaign execution service.

use std::io;
use std::path::PathBuf;

use latest_core::spec::SpecErrors;
use latest_core::store::StoreError;

/// Result alias for queue operations.
pub type QueueResult<T> = Result<T, QueueError>;

/// Errors surfaced by the job queue and worker pool.
#[derive(Debug)]
pub enum QueueError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A job id string is not `job-<decimal>`.
    BadJobId {
        /// The offending text.
        text: String,
    },
    /// The requested job is not in the queue.
    NotFound {
        /// The requested id.
        id: String,
    },
    /// A journal entry failed to parse.
    Parse {
        /// File involved.
        path: PathBuf,
        /// Parser message.
        message: String,
    },
    /// A submitted scenario failed validation.
    Spec(SpecErrors),
    /// The result cache (archive) failed.
    Store(StoreError),
    /// Another worker pool is already serving the queue directory.
    ServiceActive {
        /// The contested queue directory.
        dir: PathBuf,
    },
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::Io(e) => write!(f, "queue I/O: {e}"),
            QueueError::BadJobId { text } => {
                write!(f, "malformed job id {text:?} (expected job-<number>)")
            }
            QueueError::NotFound { id } => write!(f, "job {id} is not in the queue"),
            QueueError::Parse { path, message } => {
                write!(f, "unreadable queue entry {}: {message}", path.display())
            }
            QueueError::Spec(e) => write!(f, "invalid scenario: {e}"),
            QueueError::Store(e) => write!(f, "result cache: {e}"),
            QueueError::ServiceActive { dir } => write!(
                f,
                "another service is already serving queue directory {}",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for QueueError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueueError::Io(e) => Some(e),
            QueueError::Spec(e) => Some(e),
            QueueError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for QueueError {
    fn from(e: io::Error) -> Self {
        QueueError::Io(e)
    }
}

impl From<SpecErrors> for QueueError {
    fn from(e: SpecErrors) -> Self {
        QueueError::Spec(e)
    }
}

impl From<StoreError> for QueueError {
    fn from(e: StoreError) -> Self {
        QueueError::Store(e)
    }
}
