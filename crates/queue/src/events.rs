//! The service-wide event multiplexer: every worker's per-campaign
//! [`CampaignEvent`] stream, plus job lifecycle transitions, fanned into
//! one slot-tagged feed.
//!
//! A [`QueueObserver`] sees every event of every concurrent job; a
//! [`QueueChannelObserver`] forwards them into a plain
//! [`std::sync::mpsc`] channel for live UIs (`queue watch` tails the
//! rendered feed). Tagging is two-level: the job id, and — inside fleet
//! jobs — the member slot the campaign event came from.

use std::sync::mpsc::Sender;

use latest_core::session::CampaignEvent;
use latest_core::store::RunId;
use parking_lot::Mutex;

use crate::job::JobId;

/// One event in the multiplexed service feed.
#[derive(Clone, Debug, PartialEq)]
pub enum QueueEvent {
    /// A worker claimed a job.
    Started {
        /// The claimed job.
        job: JobId,
        /// Worker slot (0-based) executing it.
        worker: usize,
    },
    /// A claimed job was decomposed into shard work units; its pair total
    /// is known. Emitted once per executed job, after `Started` and
    /// before any `Progress`.
    Planned {
        /// The planned job.
        job: JobId,
        /// Fleet member campaigns in the job (1 for campaign jobs).
        members: usize,
        /// Total ordered frequency pairs across all members.
        pairs: usize,
    },
    /// A campaign event from one member of a running job.
    Progress {
        /// The running job.
        job: JobId,
        /// Member slot within the job (0 for campaign jobs).
        member: usize,
        /// The underlying campaign event.
        event: CampaignEvent,
    },
    /// A job was served from the result cache without recomputation.
    CacheHit {
        /// The satisfied job.
        job: JobId,
        /// Archive addresses the results were served from.
        run_ids: Vec<RunId>,
    },
    /// A job finished executing; results are archived.
    Done {
        /// The finished job.
        job: JobId,
        /// Archive addresses of the results.
        run_ids: Vec<RunId>,
    },
    /// A queued duplicate was settled by another job's execution.
    Coalesced {
        /// The settled duplicate.
        job: JobId,
        /// The job whose execution satisfied it.
        with: JobId,
    },
    /// A job failed; it will not be retried.
    Failed {
        /// The failed job.
        job: JobId,
        /// The rendered error.
        error: String,
    },
    /// A job was cancelled by request.
    Cancelled {
        /// The cancelled job.
        job: JobId,
    },
    /// A running job was requeued because the service is shutting down;
    /// its checkpoint resumes it on restart.
    Requeued {
        /// The requeued job.
        job: JobId,
    },
}

impl QueueEvent {
    /// The job the event concerns.
    pub fn job(&self) -> JobId {
        match self {
            QueueEvent::Started { job, .. }
            | QueueEvent::Planned { job, .. }
            | QueueEvent::Progress { job, .. }
            | QueueEvent::CacheHit { job, .. }
            | QueueEvent::Done { job, .. }
            | QueueEvent::Coalesced { job, .. }
            | QueueEvent::Failed { job, .. }
            | QueueEvent::Cancelled { job }
            | QueueEvent::Requeued { job } => *job,
        }
    }
}

fn join_ids(run_ids: &[RunId]) -> String {
    run_ids
        .iter()
        .map(|r| r.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

impl std::fmt::Display for QueueEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueEvent::Started { job, worker } => write!(f, "{job} started on worker {worker}"),
            QueueEvent::Planned {
                job,
                members,
                pairs,
            } => {
                write!(f, "{job} planned: {members} member(s), {pairs} pairs")
            }
            QueueEvent::Progress { job, member, event } => {
                write!(f, "{job}[m{member}] {event}")
            }
            QueueEvent::CacheHit { job, run_ids } => {
                write!(f, "{job} served from cache ({})", join_ids(run_ids))
            }
            QueueEvent::Done { job, run_ids } => {
                write!(f, "{job} done ({})", join_ids(run_ids))
            }
            QueueEvent::Coalesced { job, with } => {
                write!(f, "{job} coalesced with {with}")
            }
            QueueEvent::Failed { job, error } => write!(f, "{job} failed: {error}"),
            QueueEvent::Cancelled { job } => write!(f, "{job} cancelled"),
            QueueEvent::Requeued { job } => {
                write!(f, "{job} requeued for resume (service shutting down)")
            }
        }
    }
}

/// Observer hook for the multiplexed service feed.
///
/// Implemented for any `Fn(&QueueEvent) + Send + Sync` closure; events
/// arrive from worker threads in arbitrary interleaving between jobs, but
/// per job they respect the campaign event ordering.
pub trait QueueObserver: Send + Sync {
    /// Called for every event of every job.
    fn event(&self, event: &QueueEvent);
}

impl<F: Fn(&QueueEvent) + Send + Sync> QueueObserver for F {
    fn event(&self, event: &QueueEvent) {
        self(event)
    }
}

/// Observer that forwards every event into an mpsc channel.
pub struct QueueChannelObserver {
    tx: Mutex<Sender<QueueEvent>>,
}

impl QueueChannelObserver {
    /// Wrap a sender.
    pub fn new(tx: Sender<QueueEvent>) -> Self {
        QueueChannelObserver { tx: Mutex::new(tx) }
    }
}

impl QueueObserver for QueueChannelObserver {
    fn event(&self, event: &QueueEvent) {
        // A dropped receiver only means nobody is listening any more.
        let _ = self.tx.lock().send(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_lines_are_job_prefixed() {
        let e = QueueEvent::Started {
            job: JobId(3),
            worker: 1,
        };
        assert_eq!(e.to_string(), "job-000003 started on worker 1");
        assert_eq!(e.job(), JobId(3));
        let e = QueueEvent::Progress {
            job: JobId(4),
            member: 2,
            event: CampaignEvent::ProbeDone {
                max_latency_ms: 1.5,
            },
        };
        assert!(e.to_string().starts_with("job-000004[m2] probe done"));
        let e = QueueEvent::Coalesced {
            job: JobId(5),
            with: JobId(1),
        };
        assert_eq!(e.to_string(), "job-000005 coalesced with job-000001");
    }

    #[test]
    fn channel_observer_forwards() {
        let (tx, rx) = std::sync::mpsc::channel();
        let obs = QueueChannelObserver::new(tx);
        obs.event(&QueueEvent::Cancelled { job: JobId(9) });
        drop(obs);
        let got: Vec<QueueEvent> = rx.iter().collect();
        assert_eq!(got, vec![QueueEvent::Cancelled { job: JobId(9) }]);
    }
}
