//! The service-wide event multiplexer: every worker's per-campaign
//! [`CampaignEvent`] stream, plus job lifecycle transitions, fanned into
//! one slot-tagged feed.
//!
//! A [`QueueObserver`] sees every event of every concurrent job; a
//! [`QueueChannelObserver`] forwards them into a plain
//! [`std::sync::mpsc`] channel for live UIs (`queue watch` tails the
//! rendered feed). Tagging is two-level: the job id, and — inside fleet
//! jobs — the member slot the campaign event came from.
//!
//! Between the producing workers and the observers sits an
//! [`EventSpool`]: per-worker bounded buffers drained in seq-ordered
//! batches, so the record-side cost of an event is one buffer append
//! instead of a synchronous fan-out through every observer — and when a
//! buffer fills, the event is *counted* as dropped (the pool's
//! dropped-event counter) instead of silently blocking the measurement.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Mutex as StdMutex;

use latest_core::session::CampaignEvent;
use latest_core::store::RunId;
use parking_lot::Mutex;

use crate::job::JobId;

/// One event in the multiplexed service feed.
#[derive(Clone, Debug, PartialEq)]
pub enum QueueEvent {
    /// A worker claimed a job.
    Started {
        /// The claimed job.
        job: JobId,
        /// Worker slot (0-based) executing it.
        worker: usize,
    },
    /// A claimed job was decomposed into shard work units; its pair total
    /// is known. Emitted once per executed job, after `Started` and
    /// before any `Progress`.
    Planned {
        /// The planned job.
        job: JobId,
        /// Fleet member campaigns in the job (1 for campaign jobs).
        members: usize,
        /// Total ordered frequency pairs across all members.
        pairs: usize,
    },
    /// A campaign event from one member of a running job.
    Progress {
        /// The running job.
        job: JobId,
        /// Member slot within the job (0 for campaign jobs).
        member: usize,
        /// The underlying campaign event.
        event: CampaignEvent,
    },
    /// A job was served from the result cache without recomputation.
    CacheHit {
        /// The satisfied job.
        job: JobId,
        /// Archive addresses the results were served from.
        run_ids: Vec<RunId>,
    },
    /// A job finished executing; results are archived.
    Done {
        /// The finished job.
        job: JobId,
        /// Archive addresses of the results.
        run_ids: Vec<RunId>,
    },
    /// A queued duplicate was settled by another job's execution.
    Coalesced {
        /// The settled duplicate.
        job: JobId,
        /// The job whose execution satisfied it.
        with: JobId,
    },
    /// A job failed; it will not be retried.
    Failed {
        /// The failed job.
        job: JobId,
        /// The rendered error.
        error: String,
    },
    /// A job was cancelled by request.
    Cancelled {
        /// The cancelled job.
        job: JobId,
    },
    /// A running job was requeued because the service is shutting down;
    /// its checkpoint resumes it on restart.
    Requeued {
        /// The requeued job.
        job: JobId,
    },
}

impl QueueEvent {
    /// The job the event concerns.
    pub fn job(&self) -> JobId {
        match self {
            QueueEvent::Started { job, .. }
            | QueueEvent::Planned { job, .. }
            | QueueEvent::Progress { job, .. }
            | QueueEvent::CacheHit { job, .. }
            | QueueEvent::Done { job, .. }
            | QueueEvent::Coalesced { job, .. }
            | QueueEvent::Failed { job, .. }
            | QueueEvent::Cancelled { job }
            | QueueEvent::Requeued { job } => *job,
        }
    }
}

fn join_ids(run_ids: &[RunId]) -> String {
    run_ids
        .iter()
        .map(|r| r.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

impl std::fmt::Display for QueueEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueEvent::Started { job, worker } => write!(f, "{job} started on worker {worker}"),
            QueueEvent::Planned {
                job,
                members,
                pairs,
            } => {
                write!(f, "{job} planned: {members} member(s), {pairs} pairs")
            }
            QueueEvent::Progress { job, member, event } => {
                write!(f, "{job}[m{member}] {event}")
            }
            QueueEvent::CacheHit { job, run_ids } => {
                write!(f, "{job} served from cache ({})", join_ids(run_ids))
            }
            QueueEvent::Done { job, run_ids } => {
                write!(f, "{job} done ({})", join_ids(run_ids))
            }
            QueueEvent::Coalesced { job, with } => {
                write!(f, "{job} coalesced with {with}")
            }
            QueueEvent::Failed { job, error } => write!(f, "{job} failed: {error}"),
            QueueEvent::Cancelled { job } => write!(f, "{job} cancelled"),
            QueueEvent::Requeued { job } => {
                write!(f, "{job} requeued for resume (service shutting down)")
            }
        }
    }
}

/// Observer hook for the multiplexed service feed.
///
/// Implemented for any `Fn(&QueueEvent) + Send + Sync` closure; events
/// arrive from worker threads in arbitrary interleaving between jobs, but
/// per job they respect the campaign event ordering.
pub trait QueueObserver: Send + Sync {
    /// Called for every event of every job.
    fn event(&self, event: &QueueEvent);
}

impl<F: Fn(&QueueEvent) + Send + Sync> QueueObserver for F {
    fn event(&self, event: &QueueEvent) {
        self(event)
    }
}

/// Observer that forwards every event into an mpsc channel.
pub struct QueueChannelObserver {
    tx: Mutex<Sender<QueueEvent>>,
}

impl QueueChannelObserver {
    /// Wrap a sender.
    pub fn new(tx: Sender<QueueEvent>) -> Self {
        QueueChannelObserver { tx: Mutex::new(tx) }
    }
}

impl QueueObserver for QueueChannelObserver {
    fn event(&self, event: &QueueEvent) {
        // A dropped receiver only means nobody is listening any more.
        let _ = self.tx.lock().send(event.clone());
    }
}

/// Per-worker bounded event buffers with a global sequence, drained in
/// batches; see the [module docs](self).
///
/// Each producing thread pushes into its own slot (one short mutex with
/// no other contenders), tagged with a globally-ordered sequence number.
/// [`EventSpool::drain`] merges every slot back into production order.
/// `push` returning `false` means the slot was full and the event was
/// discarded — the caller counts it instead of blocking.
pub struct EventSpool {
    seq: AtomicU64,
    slots: Box<[StdMutex<SpoolBuffer>]>,
    capacity: usize,
}

/// One slot's buffer: sequence-tagged events awaiting a drain.
type SpoolBuffer = Vec<(u64, QueueEvent)>;

impl EventSpool {
    /// A spool with `slots` buffers of `capacity` events each (both at
    /// least 1).
    pub fn new(slots: usize, capacity: usize) -> Self {
        let n = slots.max(1);
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || StdMutex::new(Vec::new()));
        EventSpool {
            seq: AtomicU64::new(0),
            slots: v.into_boxed_slice(),
            capacity: capacity.max(1),
        }
    }

    /// Number of buffer slots.
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Buffer one event under `slot` (clamped to the last slot). Returns
    /// `false` — and discards the event — when the buffer is full.
    pub fn push(&self, slot: usize, event: QueueEvent) -> bool {
        let i = slot.min(self.slots.len() - 1);
        let mut buf = self.slots[i].lock().expect("event spool poisoned");
        if buf.len() >= self.capacity {
            return false;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        buf.push((seq, event));
        true
    }

    /// Take everything buffered so far, across all slots, in sequence
    /// (production) order.
    pub fn drain(&self) -> Vec<QueueEvent> {
        let mut merged: Vec<(u64, QueueEvent)> = Vec::new();
        for slot in self.slots.iter() {
            let mut buf = slot.lock().expect("event spool poisoned");
            merged.append(&mut buf);
        }
        merged.sort_by_key(|(seq, _)| *seq);
        merged.into_iter().map(|(_, e)| e).collect()
    }

    /// Discard everything buffered and restart the sequence.
    pub fn reset(&self) {
        for slot in self.slots.iter() {
            slot.lock().expect("event spool poisoned").clear();
        }
        self.seq.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_lines_are_job_prefixed() {
        let e = QueueEvent::Started {
            job: JobId(3),
            worker: 1,
        };
        assert_eq!(e.to_string(), "job-000003 started on worker 1");
        assert_eq!(e.job(), JobId(3));
        let e = QueueEvent::Progress {
            job: JobId(4),
            member: 2,
            event: CampaignEvent::ProbeDone {
                max_latency_ms: 1.5,
            },
        };
        assert!(e.to_string().starts_with("job-000004[m2] probe done"));
        let e = QueueEvent::Coalesced {
            job: JobId(5),
            with: JobId(1),
        };
        assert_eq!(e.to_string(), "job-000005 coalesced with job-000001");
    }

    #[test]
    fn spool_drains_in_sequence_order_across_slots() {
        let spool = EventSpool::new(3, 8);
        assert!(spool.push(0, QueueEvent::Cancelled { job: JobId(1) }));
        assert!(spool.push(2, QueueEvent::Cancelled { job: JobId(2) }));
        assert!(spool.push(0, QueueEvent::Cancelled { job: JobId(3) }));
        assert!(spool.push(1, QueueEvent::Cancelled { job: JobId(4) }));
        let jobs: Vec<JobId> = spool.drain().iter().map(QueueEvent::job).collect();
        assert_eq!(jobs, vec![JobId(1), JobId(2), JobId(3), JobId(4)]);
        assert!(spool.drain().is_empty(), "drain takes everything");
    }

    #[test]
    fn full_slots_reject_instead_of_blocking() {
        let spool = EventSpool::new(2, 2);
        assert!(spool.push(0, QueueEvent::Cancelled { job: JobId(1) }));
        assert!(spool.push(0, QueueEvent::Cancelled { job: JobId(2) }));
        assert!(
            !spool.push(0, QueueEvent::Cancelled { job: JobId(3) }),
            "third push into a 2-deep slot must report the drop"
        );
        // The sibling slot still has room, and out-of-range slots clamp.
        assert!(spool.push(1, QueueEvent::Cancelled { job: JobId(4) }));
        assert!(spool.push(99, QueueEvent::Cancelled { job: JobId(5) }));
        assert_eq!(spool.drain().len(), 4);
        spool.reset();
        assert!(spool.push(0, QueueEvent::Cancelled { job: JobId(6) }));
        assert_eq!(spool.drain().len(), 1);
    }

    #[test]
    fn channel_observer_forwards() {
        let (tx, rx) = std::sync::mpsc::channel();
        let obs = QueueChannelObserver::new(tx);
        obs.event(&QueueEvent::Cancelled { job: JobId(9) });
        drop(obs);
        let got: Vec<QueueEvent> = rx.iter().collect();
        assert_eq!(got, vec![QueueEvent::Cancelled { job: JobId(9) }]);
    }
}
