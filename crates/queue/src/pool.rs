//! The work-stealing shard scheduler: N threads pulling jobs off the
//! [`JobQueue`] and executing them at *pair-shard* granularity, with
//! cooperative cancellation, periodic cross-shard checkpoints and the
//! result cache.
//!
//! Execution path per job:
//!
//! 1. **Cache** — unless the job was submitted with `force`, an archived
//!    run of every member spec (the [`RunId`]s are known up front:
//!    execution is deterministic) is a cache hit served without
//!    recomputation.
//! 2. **Plan** — the claiming worker fans the job out onto the shared
//!    task board: one setup task per member campaign. Each setup resolves
//!    its spec, restores any matching checkpoint, runs the phase-1 +
//!    probe prelude once, and decomposes the member's pending pairs into
//!    [`WorkUnit`] shards — so a single claimed job spreads across every
//!    idle worker in the pool, not just the claimer.
//! 3. **Execute** — workers steal shard tasks off the board and run them
//!    through the member's [`CampaignSession`]. Per-pair platforms are
//!    seeded from the campaign seed and the pair alone, so the
//!    interleaving of shards across workers is invisible in the results:
//!    the merged output is bitwise identical to a sequential run. Settled
//!    pairs fold into a per-member [`SpecCheckpoint`] (atomic
//!    write-to-temp + rename), and the shard ledger on the job's journal
//!    entry tracks pair/shard progress for `queue status`.
//! 4. **Archive** — when a job's last shard settles, the finishing worker
//!    merges the slots back into canonical pair order, archives each
//!    member result into the [`ResultStore`], and settles the job.
//! 5. **Settle** — still-queued duplicates of the job's key are marked
//!    `Done` (coalesced): two submissions of the same spec observe one
//!    execution.
//!
//! Shutdown ([`WorkerPool::shutdown_token`]) cancels every in-flight
//! session; their partial results are checkpointed and the jobs revert to
//! `Queued`, so a restarted service resumes each one from where the last
//! run stopped — even mid-shard, the crash-recovery path and the
//! graceful-shutdown path are the same code.
//!
//! Every stage of this path is timed into per-worker lock-free latency
//! recorders ([`latest_telemetry`]): queue wait, claim-to-start, shard
//! execution, checkpoint stalls, settle latency and observer fan-in.
//! The merged [`TelemetrySnapshot`] rides on [`DrainStats`] and is
//! persisted as `<dir>/telemetry.json` at the end of every drain/serve
//! call. Between workers and observers sits an
//! [`EventSpool`]: the measurement path pays
//! one bounded buffer append per event (drops are counted, never
//! blocking), and batches are delivered in production order at pair,
//! task and lifecycle boundaries.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Condvar, Mutex as StdMutex, OnceLock};
use std::time::Duration;

use latest_core::session::{
    CampaignEvent, CampaignPrelude, CampaignSession, CancelToken, ShardResult, WorkUnit,
};
use latest_core::spec::{CampaignSpec, SpecCheckpoint};
use latest_core::store::{ResultStore, RunId, StoreError};
use latest_core::{CoreError, PairMeasurement, PairOutcome};
use latest_telemetry::{ClockSpec, Registry, Stage, StageClock, TelemetrySnapshot};
use parking_lot::Mutex;

use crate::error::QueueResult;
use crate::events::{EventSpool, QueueChannelObserver, QueueEvent, QueueObserver};
use crate::job::{CompletionVia, Job, JobId, JobState, MemberLedger, ShardLedger};
use crate::queue::JobQueue;

/// Tuning knobs for a [`WorkerPool`].
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Number of worker threads (at least 1).
    pub workers: usize,
    /// Pairs between resumable checkpoint snapshots.
    pub checkpoint_every: usize,
    /// How long an idle worker sleeps before re-polling the journal.
    pub poll_interval: Duration,
    /// Archive directory override (`None` = `<queue dir>/store`).
    pub store_dir: Option<PathBuf>,
    /// Pairs per shard work unit (0 = auto: about two shards per worker,
    /// so a claimed job keeps the whole pool busy with headroom for
    /// stealing).
    pub shard_pairs: usize,
    /// How service-side timing is taken: real monotonic time (default) or
    /// virtual tick time for deterministic telemetry in tests and the CI
    /// determinism gate (meaningful with `workers: 1` — tick clocks are
    /// per-thread).
    pub clock: ClockSpec,
    /// Capacity of each worker's event buffer; events beyond it are
    /// dropped (and counted) instead of blocking the measurement path.
    pub event_buffer: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 2,
            checkpoint_every: 1,
            poll_interval: Duration::from_millis(25),
            store_dir: None,
            shard_pairs: 0,
            clock: ClockSpec::Monotonic,
            event_buffer: 4096,
        }
    }
}

/// What a drain/serve call processed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Jobs that ran to completion on the pool.
    pub executed: usize,
    /// Jobs served from the result cache.
    pub cached: usize,
    /// Duplicates settled by another job's execution.
    pub coalesced: usize,
    /// Jobs that failed.
    pub failed: usize,
    /// Jobs cancelled by request.
    pub cancelled: usize,
    /// In-flight jobs requeued by shutdown.
    pub requeued: usize,
    /// Shard work units executed across all jobs.
    pub shards_executed: usize,
    /// Pairs measured (not restored, not cancelled) across all jobs.
    pub pairs_measured: usize,
    /// Wall-clock milliseconds the call spent.
    pub elapsed_ms: u64,
    /// Merged per-stage service latency histograms for the call (queue
    /// wait, claim-to-start, shard execution, checkpoint stalls, settle
    /// latency, event fan-in), plus the dropped-event count.
    pub telemetry: TelemetrySnapshot,
}

impl DrainStats {
    /// Jobs settled successfully (executed + cached + coalesced).
    pub fn settled(&self) -> usize {
        self.executed + self.cached + self.coalesced
    }

    /// Settled jobs per wall-clock second (the service throughput figure).
    pub fn jobs_per_sec(&self) -> f64 {
        if self.elapsed_ms == 0 {
            return 0.0;
        }
        self.settled() as f64 / (self.elapsed_ms as f64 / 1000.0)
    }

    /// Serialise to pretty JSON (the `queue serve --stats-out` format,
    /// merged into `BENCH_latest.json` by CI).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("drain stats serialise")
    }
}

impl serde::Serialize for DrainStats {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("executed".to_string(), self.executed.to_value()),
            ("cached".to_string(), self.cached.to_value()),
            ("coalesced".to_string(), self.coalesced.to_value()),
            ("failed".to_string(), self.failed.to_value()),
            ("cancelled".to_string(), self.cancelled.to_value()),
            ("requeued".to_string(), self.requeued.to_value()),
            (
                "shards_executed".to_string(),
                self.shards_executed.to_value(),
            ),
            ("pairs_measured".to_string(), self.pairs_measured.to_value()),
            ("elapsed_ms".to_string(), self.elapsed_ms.to_value()),
            ("jobs_per_sec".to_string(), self.jobs_per_sec().to_value()),
            ("telemetry".to_string(), self.telemetry.to_value()),
        ])
    }
}

impl std::fmt::Display for DrainStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} settled ({} executed, {} cached, {} coalesced), {} failed, \
             {} cancelled, {} requeued; {} shards / {} pairs measured \
             in {:.2}s ({:.2} jobs/s)",
            self.settled(),
            self.executed,
            self.cached,
            self.coalesced,
            self.failed,
            self.cancelled,
            self.requeued,
            self.shards_executed,
            self.pairs_measured,
            self.elapsed_ms as f64 / 1000.0,
            self.jobs_per_sec(),
        )
    }
}

/// One schedulable step of an in-flight job on the task board.
enum Task {
    /// Resolve one member's spec, build its session, run the prelude and
    /// fan its pending pairs out as shard tasks.
    Setup { run: Arc<JobRun>, member: usize },
    /// Execute one shard work unit of a member campaign.
    Shard {
        run: Arc<JobRun>,
        member: usize,
        unit: WorkUnit,
    },
}

/// The shared task board every worker steals from. A plain FIFO deque
/// under a mutex — tasks are coarse (a prelude or a batch of pairs), so
/// contention here is noise next to the measurement work itself.
struct TaskBoard {
    tasks: StdMutex<VecDeque<Task>>,
    available: Condvar,
}

impl TaskBoard {
    fn new() -> Self {
        TaskBoard {
            tasks: StdMutex::new(VecDeque::new()),
            available: Condvar::new(),
        }
    }

    fn push(&self, new: Vec<Task>) {
        let mut tasks = self.tasks.lock().expect("task board poisoned");
        tasks.extend(new);
        self.available.notify_all();
    }

    fn pop(&self) -> Option<Task> {
        self.tasks.lock().expect("task board poisoned").pop_front()
    }

    /// Sleep until a task may be available (or the timeout passes — the
    /// caller re-checks shutdown and the journal either way).
    fn wait(&self, timeout: Duration) {
        let tasks = self.tasks.lock().expect("task board poisoned");
        if tasks.is_empty() {
            let _ = self.available.wait_timeout(tasks, timeout);
        }
    }

    fn clear(&self) {
        self.tasks.lock().expect("task board poisoned").clear();
    }
}

/// Shared state of one claimed job while its tasks are in flight.
struct JobRun {
    job: StdMutex<Job>,
    /// Service-clock timestamp of the claim, the zero point for the job's
    /// claim-to-start and settle-latency telemetry.
    claimed_ns: u64,
    /// The job's cancellation token, shared with every member session.
    token: CancelToken,
    /// Per-member state, set by the member's setup task (`None` when the
    /// member was cancelled before its prelude finished).
    members: Vec<OnceLock<Option<MemberRun>>>,
    /// Unfinished tasks; the worker that drops it to zero finalises.
    outstanding: AtomicUsize,
    /// First terminal failure, if any (first writer wins).
    failure: StdMutex<Option<String>>,
}

impl JobRun {
    fn fail(&self, message: String) {
        let mut failure = self.failure.lock().expect("failure slot poisoned");
        if failure.is_none() {
            *failure = Some(message);
        }
        // Stop sibling shards promptly; the failure outranks the
        // cancellation when the job settles.
        self.token.cancel();
    }

    fn failed(&self) -> bool {
        self.failure
            .lock()
            .expect("failure slot poisoned")
            .is_some()
    }
}

/// One member campaign of an in-flight job: its session (shared by every
/// worker running its shards), the prelude, and the slot-wise results.
struct MemberRun {
    spec: CampaignSpec,
    session: CampaignSession,
    prelude: CampaignPrelude,
    ckpt_path: PathBuf,
    shards_total: usize,
    shards_done: AtomicUsize,
    /// Canonical-order result slots; `Some` once the pair settled (or was
    /// restored from a checkpoint).
    slots: StdMutex<Vec<Option<PairMeasurement>>>,
}

/// Per-thread telemetry context: which registry/spool slot this thread
/// records into, and the stage clock it reads. Workers get slot `0..N` at
/// loop entry; every other thread (the drain caller, tests poking the
/// pool directly) lazily claims the shared service slot `N`.
struct WorkerCtx {
    slot: usize,
    clock: StageClock,
}

thread_local! {
    static WORKER_CTX: RefCell<Option<WorkerCtx>> = const { RefCell::new(None) };
}

/// The campaign execution service. See the [module docs](self) for the
/// execution path.
pub struct WorkerPool {
    queue: JobQueue,
    store: ResultStore,
    config: PoolConfig,
    observers: Vec<Arc<dyn QueueObserver>>,
    shutdown: CancelToken,
    /// Serialises journal read-modify-write cycles across workers.
    claim_lock: Mutex<()>,
    /// Cancel tokens of in-flight jobs, keyed by job id.
    running: Mutex<HashMap<JobId, CancelToken>>,
    board: TaskBoard,
    stats: Mutex<DrainStats>,
    /// Per-slot stage latency recorders (one per worker + the service
    /// slot); merged into a [`TelemetrySnapshot`] at drain end.
    registry: Arc<Registry>,
    /// Per-slot bounded event buffers between workers and observers.
    spool: Arc<EventSpool>,
    /// Serialises observer delivery so drained batches keep their order.
    /// Lock order: `deliver` before the journal file lock, never inside
    /// it — observers may call back into the queue (`request_cancel`).
    deliver: StdMutex<()>,
    /// Service-clock timestamp each queued job was first observed at, the
    /// zero point for its queue-wait telemetry.
    first_seen: StdMutex<HashMap<JobId, u64>>,
}

impl WorkerPool {
    /// Open a pool over the queue directory. Crash recovery — reverting
    /// `Running` jobs a killed service left behind to `Queued`, to resume
    /// from their checkpoints — happens at the start of every
    /// [`WorkerPool::serve`]/[`WorkerPool::drain`] call, under the
    /// directory's exclusive service lock.
    pub fn open(dir: impl Into<PathBuf>, config: PoolConfig) -> QueueResult<WorkerPool> {
        let queue = JobQueue::open(dir)?;
        let store_dir = config
            .store_dir
            .clone()
            .unwrap_or_else(|| queue.default_store_dir());
        let store = ResultStore::open(store_dir)?;
        let config = PoolConfig {
            workers: config.workers.max(1),
            checkpoint_every: config.checkpoint_every.max(1),
            event_buffer: config.event_buffer.max(1),
            ..config
        };
        // One telemetry/spool slot per worker, plus the shared service
        // slot for the drain caller and any other thread.
        let slots = config.workers + 1;
        Ok(WorkerPool {
            queue,
            store,
            registry: Arc::new(Registry::new(slots)),
            spool: Arc::new(EventSpool::new(slots, config.event_buffer)),
            config,
            observers: Vec::new(),
            shutdown: CancelToken::new(),
            claim_lock: Mutex::new(()),
            running: Mutex::new(HashMap::new()),
            board: TaskBoard::new(),
            stats: Mutex::new(DrainStats::default()),
            deliver: StdMutex::new(()),
            first_seen: StdMutex::new(HashMap::new()),
        })
    }

    /// The pool's job queue.
    pub fn queue(&self) -> &JobQueue {
        &self.queue
    }

    /// The result cache the pool consults and archives into.
    pub fn store(&self) -> &ResultStore {
        &self.store
    }

    /// Attach an observer to the multiplexed event feed; may be called
    /// several times.
    pub fn observe(mut self, observer: impl QueueObserver + 'static) -> Self {
        self.observers.push(Arc::new(observer));
        self
    }

    /// Attach a channel observer and return its receiving end.
    pub fn events(&mut self) -> Receiver<QueueEvent> {
        let (tx, rx) = channel();
        self.observers.push(Arc::new(QueueChannelObserver::new(tx)));
        rx
    }

    /// The pool-wide shutdown token: cancelling it winds down every
    /// worker; in-flight jobs are checkpointed and requeued for resume.
    pub fn shutdown_token(&self) -> CancelToken {
        self.shutdown.clone()
    }

    /// Bind this thread's telemetry slot and give it a fresh stage clock.
    fn set_ctx(&self, slot: usize) {
        let clock = self.config.clock.clock();
        WORKER_CTX.with(|ctx| *ctx.borrow_mut() = Some(WorkerCtx { slot, clock }));
    }

    /// Run `f` with this thread's telemetry context, lazily binding the
    /// shared service slot for threads no worker loop registered.
    fn with_ctx<T>(&self, f: impl FnOnce(&WorkerCtx) -> T) -> T {
        WORKER_CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            let ctx = ctx.get_or_insert_with(|| WorkerCtx {
                slot: self.config.workers,
                clock: self.config.clock.clock(),
            });
            f(ctx)
        })
    }

    /// Current service-clock time for this thread.
    fn now_ns(&self) -> u64 {
        self.with_ctx(|ctx| ctx.clock.now_ns())
    }

    /// Record one stage sample into this thread's recorder — lock-free
    /// and allocation-free past the thread-local lookup.
    fn record(&self, stage: Stage, ns: u64) {
        self.with_ctx(|ctx| self.registry.recorder(ctx.slot).record(stage, ns));
    }

    /// Queue a lifecycle event and deliver everything buffered so far.
    /// Lifecycle transitions are rare and watchers expect them promptly;
    /// high-rate `Progress` events only ride along in the next batch.
    fn emit(&self, event: QueueEvent) {
        self.with_ctx(|ctx| {
            if !self.spool.push(ctx.slot, event) {
                self.registry.recorder(ctx.slot).note_dropped(1);
            }
        });
        self.flush_events();
    }

    /// Deliver every buffered event, in production order, to every
    /// observer; the batch's wall time lands in the event-fan-in stage.
    /// Must never be called with the journal file lock held (observers
    /// may call back into the queue).
    fn flush_events(&self) {
        let _guard = self.deliver.lock().expect("deliver lock poisoned");
        let batch = self.spool.drain();
        if batch.is_empty() {
            return;
        }
        let start = self.now_ns();
        for event in &batch {
            for obs in &self.observers {
                obs.event(event);
            }
        }
        self.record(Stage::EventFanIn, self.now_ns().saturating_sub(start));
    }

    /// Process jobs until the queue is empty and every worker is idle (or
    /// shutdown is requested), then return what was processed.
    pub fn drain(&self) -> QueueResult<DrainStats> {
        self.run_workers(true)
    }

    /// Serve indefinitely: like [`WorkerPool::drain`], but an empty queue
    /// is polled for new submissions instead of ending the call. Returns
    /// only after [`WorkerPool::shutdown_token`] is cancelled.
    pub fn serve(&self) -> QueueResult<DrainStats> {
        self.run_workers(false)
    }

    /// Pending pairs → shard count for one member's plan.
    fn shards_for(&self, pending: usize) -> usize {
        if self.config.shard_pairs > 0 {
            pending.div_ceil(self.config.shard_pairs).max(1)
        } else {
            (self.config.workers * 2).clamp(1, pending.max(1))
        }
    }

    fn run_workers(&self, drain: bool) -> QueueResult<DrainStats> {
        // One service per queue directory: recover() cannot tell a killed
        // service's Running entries from a live sibling's, so serving
        // without this exclusive hold could requeue — and re-execute —
        // jobs another pool is still running.
        let _service = self.queue.try_lock_service()?.ok_or_else(|| {
            crate::error::QueueError::ServiceActive {
                dir: self.queue.dir().to_path_buf(),
            }
        })?;
        self.queue.recover()?;
        // A previous run that erred out may have abandoned tasks; their
        // jobs were just recovered to Queued, so the stale tasks are dead.
        self.board.clear();
        *self.stats.lock() = DrainStats::default();
        self.registry.reset();
        self.spool.reset();
        self.first_seen.lock().expect("first seen poisoned").clear();
        // The calling thread records into the shared service slot; the
        // drain-level clock times the call as a whole.
        self.set_ctx(self.config.workers);
        let drain_clock = self.config.clock.clock();
        let started = drain_clock.now_ns();
        let errors: Mutex<Vec<crate::error::QueueError>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for worker in 0..self.config.workers {
                let errors = &errors;
                scope.spawn(move || {
                    if let Err(e) = self.worker_loop(worker, drain) {
                        // A worker dying must not hang the pool.
                        self.shutdown.cancel();
                        errors.lock().push(e);
                    }
                });
            }
        });
        if let Some(e) = errors.into_inner().into_iter().next() {
            return Err(e);
        }
        // Workers flush as they go; this catches anything buffered after
        // the last worker's final flush.
        self.flush_events();
        let mut stats = self.stats.lock();
        stats.elapsed_ms = drain_clock.now_ns().saturating_sub(started) / 1_000_000;
        stats.telemetry = self.registry.snapshot();
        self.persist_telemetry(&stats.telemetry)?;
        Ok(stats.clone())
    }

    /// Persist the drain's telemetry snapshot next to the journal
    /// (`<dir>/telemetry.json`, atomic write-to-temp + rename) so `queue
    /// status`/`queue stats` can report service latency after the fact.
    fn persist_telemetry(&self, snapshot: &TelemetrySnapshot) -> QueueResult<()> {
        let path = self.queue.telemetry_path();
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, snapshot.to_json())?;
        fs::rename(&tmp, &path)?;
        Ok(())
    }

    fn worker_loop(&self, worker: usize, drain: bool) -> QueueResult<()> {
        self.set_ctx(worker);
        loop {
            // Board first: shard tasks of claimed jobs outrank new claims,
            // and they must still be consumed after shutdown — each
            // in-flight job settles (requeued, with its checkpoint) only
            // when its last task completes.
            if let Some(task) = self.board.pop() {
                self.run_task(task)?;
                continue;
            }
            if self.shutdown.is_cancelled() {
                return Ok(());
            }
            // Claim under the locks: popping a job and registering its
            // cancel token must be one atomic step, or a sibling worker
            // could observe "queue empty, nobody running" mid-claim and
            // exit early. The claim_lock serialises workers in this
            // process; the queue's file lock serialises against other
            // processes (a concurrent `queue cancel`). One journal parse
            // per cycle: markers are a directory listing, and the claim
            // carries the snapshot's pending count. Cancellation events
            // are emitted only after both locks drop — observers may call
            // back into the queue.
            let (claimed, cancelled, exit) = {
                let _guard = self.claim_lock.lock();
                let _flock = self.queue.lock_exclusive()?;
                let cancelled = self.honour_cancel_markers()?;
                let claim = self.queue.claim()?;
                let now = self.now_ns();
                let mut first_seen = self.first_seen.lock().expect("first seen poisoned");
                for id in &claim.queued {
                    first_seen.entry(*id).or_insert(now);
                }
                match claim.job {
                    Some(job) => {
                        let waited = first_seen
                            .remove(&job.id)
                            .map(|seen| now.saturating_sub(seen))
                            .unwrap_or(0);
                        drop(first_seen);
                        self.record(Stage::QueueWait, waited);
                        let token = CancelToken::new();
                        self.running.lock().insert(job.id, token.clone());
                        (Some((job, token, now)), cancelled, false)
                    }
                    None => {
                        let exit = drain && self.running.lock().is_empty() && claim.pending == 0;
                        (None, cancelled, exit)
                    }
                }
            };
            for id in cancelled {
                self.emit(QueueEvent::Cancelled { job: id });
            }
            if exit {
                return Ok(());
            }
            match claimed {
                Some((job, token, claimed_ns)) => self.begin(worker, job, token, claimed_ns)?,
                None => self.board.wait(self.config.poll_interval),
            }
        }
    }

    /// Apply pending cancellation markers: queued jobs are journaled as
    /// `Cancelled`; running jobs get their token cancelled (the owning
    /// job's tasks settle the state). Only marked jobs are loaded, so the
    /// (usual) no-markers poll costs one directory listing. Returns the
    /// freshly-cancelled ids — the caller emits their events after the
    /// journal lock drops.
    fn honour_cancel_markers(&self) -> QueueResult<Vec<JobId>> {
        let mut cancelled = Vec::new();
        for id in self.queue.pending_cancels()? {
            let mut job = match self.queue.load(id) {
                Ok(job) => job,
                // A marker for a journal entry that no longer parses (or
                // was removed) must not wedge every poll cycle.
                Err(_) => {
                    self.queue.clear_cancel_request(id)?;
                    continue;
                }
            };
            match job.state {
                JobState::Queued => {
                    job.state = JobState::Cancelled;
                    self.queue.save(&job)?;
                    self.queue.clear_checkpoints(&job)?;
                    self.queue.clear_cancel_request(job.id)?;
                    self.stats.lock().cancelled += 1;
                    self.first_seen
                        .lock()
                        .expect("first seen poisoned")
                        .remove(&job.id);
                    cancelled.push(job.id);
                }
                JobState::Running => {
                    if let Some(token) = self.running.lock().get(&job.id) {
                        token.cancel();
                    }
                    // The marker stays until the job's tasks settle it, so
                    // it survives a crash in between.
                }
                _ => self.queue.clear_cancel_request(job.id)?,
            }
        }
        Ok(cancelled)
    }

    fn finish(&self, id: JobId) {
        self.running.lock().remove(&id);
    }

    /// Start a claimed job: serve it from cache when possible, otherwise
    /// fan one setup task per member onto the board. The claimer returns
    /// to the loop immediately — the whole pool executes the job.
    fn begin(
        &self,
        worker: usize,
        mut job: Job,
        token: CancelToken,
        claimed_ns: u64,
    ) -> QueueResult<()> {
        self.emit(QueueEvent::Started {
            job: job.id,
            worker,
        });
        let run_ids = job.run_ids();

        // Result cache: an archived run of every member spec satisfies the
        // job without recomputation (integrity-validated loads — a corrupt
        // archive entry falls through to re-execution, never gets served).
        if !job.force && self.cache_hit(&job)? {
            job.state = JobState::Done {
                run_ids: run_ids.clone(),
                via: CompletionVia::Cache,
            };
            self.queue.clear_checkpoints(&job)?;
            self.emit(QueueEvent::CacheHit {
                job: job.id,
                run_ids: run_ids.clone(),
            });
            self.stats.lock().cached += 1;
            self.settle_done(&job, &run_ids)?;
            self.record(
                Stage::SettleLatency,
                self.now_ns().saturating_sub(claimed_ns),
            );
            self.finish(job.id);
            return Ok(());
        }

        let members = job.members().len();
        let pairs: usize = job
            .members()
            .iter()
            .filter_map(|spec| spec.resolve().ok())
            .map(|config| config.ordered_state_pairs().len())
            .sum();
        self.emit(QueueEvent::Planned {
            job: job.id,
            members,
            pairs,
        });
        let run = Arc::new(JobRun {
            job: StdMutex::new(job),
            claimed_ns,
            token,
            members: (0..members).map(|_| OnceLock::new()).collect(),
            outstanding: AtomicUsize::new(members),
            failure: StdMutex::new(None),
        });
        let tasks = (0..members)
            .map(|member| Task::Setup {
                run: run.clone(),
                member,
            })
            .collect();
        self.board.push(tasks);
        Ok(())
    }

    fn run_task(&self, task: Task) -> QueueResult<()> {
        match task {
            Task::Setup { run, member } => self.setup_member(&run, member),
            Task::Shard { run, member, unit } => self.run_shard(&run, member, &unit),
        }
    }

    /// Build one member's session and fan its pending pairs out as shard
    /// tasks. Runs the member's prelude (phase 1 + probe) exactly once.
    fn setup_member(&self, run: &Arc<JobRun>, member: usize) -> QueueResult<()> {
        if run.failed() || run.token.is_cancelled() || self.shutdown.is_cancelled() {
            let _ = run.members[member].set(None);
            return self.complete_task(run);
        }
        let (job_id, spec) = {
            let job = run.job.lock().expect("job slot poisoned");
            (job.id, job.members()[member].clone())
        };
        match self.build_member(job_id, member, &spec, run) {
            Ok(Some(mut mr)) => {
                // Claim-to-start: claim to "this member is ready to
                // measure" (spec resolution, checkpoint restore, prelude).
                self.record(
                    Stage::ClaimToStart,
                    self.now_ns().saturating_sub(run.claimed_ns),
                );
                let (restored, pending) = {
                    let slots = mr.slots.lock().expect("member slots poisoned");
                    let restored: Vec<(usize, PairMeasurement)> = slots
                        .iter()
                        .enumerate()
                        .filter_map(|(i, s)| s.as_ref().map(|m| (i, m.clone())))
                        .collect();
                    let pending = slots.len() - restored.len();
                    (restored, pending)
                };
                for (index, meas) in &restored {
                    self.emit(QueueEvent::Progress {
                        job: job_id,
                        member,
                        event: CampaignEvent::PairRestored {
                            index: *index,
                            init: meas.init,
                            target: meas.target,
                        },
                    });
                }
                let units: Vec<WorkUnit> = if pending == 0 {
                    Vec::new()
                } else {
                    mr.session.plan(self.shards_for(pending)).units().to_vec()
                };
                mr.shards_total = units.len();
                let _ = run.members[member].set(Some(mr));
                self.update_ledger(run)?;
                if units.is_empty() {
                    // Fully restored from the checkpoint: nothing to run.
                    return self.complete_task(run);
                }
                // Register the shard tasks before pushing them: a sibling
                // may pop and finish one before we decrement for the
                // setup task itself.
                run.outstanding.fetch_add(units.len(), Ordering::SeqCst);
                let tasks = units
                    .into_iter()
                    .map(|unit| Task::Shard {
                        run: run.clone(),
                        member,
                        unit,
                    })
                    .collect();
                self.board.push(tasks);
                self.complete_task(run)
            }
            Ok(None) => {
                // Cancelled before the prelude finished.
                let _ = run.members[member].set(None);
                self.complete_task(run)
            }
            Err(message) => {
                run.fail(message);
                let _ = run.members[member].set(None);
                self.complete_task(run)
            }
        }
    }

    /// Resolve one member spec into a ready-to-shard [`MemberRun`],
    /// resuming from its checkpoint when one matches. `Ok(None)` means
    /// cancelled during the prelude.
    fn build_member(
        &self,
        job_id: JobId,
        member: usize,
        spec: &CampaignSpec,
        run: &Arc<JobRun>,
    ) -> Result<Option<MemberRun>, String> {
        let config = spec
            .resolve()
            .map_err(|e| format!("member {member}: {e}"))?;
        let total = config.ordered_state_pairs().len();
        let ckpt_path = self.queue.checkpoint_path(job_id, member);

        let mut session = CampaignSession::new(config).with_cancel_token(run.token.clone());

        // Resume: a checkpoint taken under the identical spec restores its
        // settled pairs verbatim; anything unreadable or mismatched is
        // discarded (the job file is the source of truth for the spec).
        if ckpt_path.is_file() {
            let restored = SpecCheckpoint::load(&ckpt_path)
                .ok()
                .filter(|cp| &cp.spec == spec);
            match restored {
                Some(cp) => session = session.resume_from(cp.result),
                None => {
                    let _ = fs::remove_file(&ckpt_path);
                }
            }
        }

        // Fan the member's campaign events into the multiplexed feed via
        // the spool: the measurement thread pays one buffer append, not a
        // synchronous walk of every observer. A full buffer drops the
        // event and bumps the worker's dropped counter instead.
        let spool = self.spool.clone();
        let registry = self.registry.clone();
        let service_slot = self.config.workers;
        session = session.observe(move |e: &CampaignEvent| {
            let event = QueueEvent::Progress {
                job: job_id,
                member,
                event: e.clone(),
            };
            let slot = WORKER_CTX
                .with(|ctx| ctx.borrow().as_ref().map(|c| c.slot))
                .unwrap_or(service_slot);
            if !spool.push(slot, event) {
                registry.recorder(slot).note_dropped(1);
            }
        });

        let prelude = match session.prelude() {
            Ok(prelude) => prelude,
            Err(CoreError::Cancelled) => return Ok(None),
            Err(e) => return Err(format!("member {member}: {e}")),
        };

        let mut slots = vec![None; total];
        for (index, meas) in session.restored_pairs() {
            slots[index] = Some(meas);
        }
        Ok(Some(MemberRun {
            spec: spec.clone(),
            session,
            prelude,
            ckpt_path,
            shards_total: 0,
            shards_done: AtomicUsize::new(0),
            slots: StdMutex::new(slots),
        }))
    }

    /// Execute one shard work unit; settled pairs fold into the member's
    /// checkpoint, which doubles as the busy pool's cancellation poll.
    fn run_shard(&self, run: &Arc<JobRun>, member: usize, unit: &WorkUnit) -> QueueResult<()> {
        if run.failed() || self.shutdown.is_cancelled() || run.token.is_cancelled() {
            return self.complete_task(run);
        }
        let Some(Some(mr)) = run.members[member].get() else {
            // A shard task only exists because setup stored the member.
            run.fail(format!("member {member}: internal: shard before setup"));
            return self.complete_task(run);
        };
        let job_id = run.job.lock().expect("job slot poisoned").id;

        let on_settle = |index: usize, meas: &PairMeasurement| {
            // The session already spooled this pair's events (its
            // `PairFinished` is emitted before this hook runs): deliver
            // them now, so watchers still see pair-granular progress.
            self.flush_events();
            let mut slots = mr.slots.lock().expect("member slots poisoned");
            slots[index] = Some(meas.clone());
            let settled = slots.iter().filter(|s| s.is_some()).count();
            if settled % self.config.checkpoint_every == 0 || settled == slots.len() {
                self.write_checkpoint(mr, &slots);
                // The settle hook doubles as the busy pool's cancellation
                // poll: markers and shutdown are honoured at the next
                // checkpoint boundary even when no worker is idle.
                if self.shutdown.is_cancelled() || self.queue.cancel_requested(job_id) {
                    run.token.cancel();
                }
            }
        };

        let exec_start = self.now_ns();
        let outcome = mr.session.run_unit_with(&mr.prelude, unit, on_settle);
        self.record(Stage::ShardExec, self.now_ns().saturating_sub(exec_start));
        match outcome {
            Ok(shard) => {
                let measured = shard
                    .pairs
                    .iter()
                    .filter(|(_, m)| !m.outcome.is_cancelled())
                    .count();
                if measured > 0 || !run.token.is_cancelled() {
                    let mut stats = self.stats.lock();
                    stats.shards_executed += 1;
                    stats.pairs_measured += measured;
                    drop(stats);
                    mr.shards_done.fetch_add(1, Ordering::SeqCst);
                    {
                        let slots = mr.slots.lock().expect("member slots poisoned");
                        self.write_checkpoint(mr, &slots);
                    }
                    self.update_ledger(run)?;
                }
            }
            Err(CoreError::Cancelled) => {}
            Err(e) => run.fail(format!("member {member}: {e}")),
        }
        self.complete_task(run)
    }

    /// Persist the member's settled slots as a resumable checkpoint,
    /// written with the same atomic rename discipline as the journal.
    /// Unsettled slots become `Cancelled` placeholders — exactly the
    /// partial-result shape `resume_from` validates.
    fn write_checkpoint(&self, mr: &MemberRun, slots: &[Option<PairMeasurement>]) {
        let start = self.now_ns();
        let pairs: Vec<(usize, PairMeasurement)> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|m| (i, m.clone())))
            .collect();
        let result = mr
            .session
            .merge_shards(&mr.prelude, vec![ShardResult { shard: 0, pairs }]);
        let doc = SpecCheckpoint {
            spec: mr.spec.clone(),
            result,
        };
        let _ = doc.save(&mr.ckpt_path);
        self.record(Stage::CheckpointStall, self.now_ns().saturating_sub(start));
    }

    /// Journal the job's shard ledger (pair/shard progress per member) so
    /// `queue status` can report in-flight progress without tailing the
    /// event feed.
    fn update_ledger(&self, run: &Arc<JobRun>) -> QueueResult<()> {
        let mut members = Vec::with_capacity(run.members.len());
        for slot in &run.members {
            match slot.get() {
                Some(Some(mr)) => {
                    let slots = mr.slots.lock().expect("member slots poisoned");
                    members.push(MemberLedger {
                        pairs_done: slots.iter().filter(|s| s.is_some()).count(),
                        pairs_total: slots.len(),
                        shards_done: mr.shards_done.load(Ordering::SeqCst),
                        shards_total: mr.shards_total,
                    });
                }
                _ => members.push(MemberLedger::default()),
            }
        }
        let job = {
            let mut job = run.job.lock().expect("job slot poisoned");
            job.ledger = Some(ShardLedger { members });
            job.clone()
        };
        let _guard = self.claim_lock.lock();
        let _flock = self.queue.lock_exclusive()?;
        self.queue.save(&job)?;
        Ok(())
    }

    /// Settle a job whose last task just completed. Exactly one worker
    /// gets here per job (the outstanding count hits zero once).
    fn finalize(&self, run: &Arc<JobRun>) -> QueueResult<()> {
        let mut job = run.job.lock().expect("job slot poisoned").clone();
        let failure = run.failure.lock().expect("failure slot poisoned").clone();
        let run_ids = job.run_ids();

        if let Some(error) = failure {
            job.state = JobState::Failed {
                error: error.clone(),
            };
            job.ledger = None;
            self.queue.save(&job)?;
            self.queue.clear_cancel_request(job.id)?;
            self.emit(QueueEvent::Failed { job: job.id, error });
            self.stats.lock().failed += 1;
            self.record(
                Stage::SettleLatency,
                self.now_ns().saturating_sub(run.claimed_ns),
            );
            self.finish(job.id);
            return Ok(());
        }

        if self.shutdown.is_cancelled() {
            // Service shutdown: back to the queue; checkpoints (and the
            // ledger) resume the job on restart.
            job.state = JobState::Queued;
            self.queue.save(&job)?;
            self.emit(QueueEvent::Requeued { job: job.id });
            self.stats.lock().requeued += 1;
            self.finish(job.id);
            return Ok(());
        }

        if run.token.is_cancelled() {
            // User cancellation: settle as cancelled, drop state.
            job.state = JobState::Cancelled;
            job.ledger = None;
            self.queue.save(&job)?;
            self.queue.clear_checkpoints(&job)?;
            self.queue.clear_cancel_request(job.id)?;
            self.emit(QueueEvent::Cancelled { job: job.id });
            self.stats.lock().cancelled += 1;
            self.record(
                Stage::SettleLatency,
                self.now_ns().saturating_sub(run.claimed_ns),
            );
            self.finish(job.id);
            return Ok(());
        }

        // Success: merge every member's slots back into canonical pair
        // order and auto-archive — the store becomes a memoization layer
        // for the whole service.
        let mut results = Vec::with_capacity(run.members.len());
        for (member, slot) in run.members.iter().enumerate() {
            let Some(Some(mr)) = slot.get() else {
                run.fail(format!("member {member}: internal: never built"));
                return self.finalize(run);
            };
            let pairs: Vec<(usize, PairMeasurement)> = {
                let slots = mr.slots.lock().expect("member slots poisoned");
                slots
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| s.as_ref().map(|m| (i, m.clone())))
                    .collect()
            };
            let result = mr
                .session
                .merge_shards(&mr.prelude, vec![ShardResult { shard: 0, pairs }]);
            let (completed, skipped, cancelled) =
                result
                    .pairs()
                    .iter()
                    .fold((0, 0, 0), |(c, s, x), p| match &p.outcome {
                        PairOutcome::Completed(_) => (c + 1, s, x),
                        PairOutcome::Cancelled => (c, s, x + 1),
                        _ => (c, s + 1, x),
                    });
            self.emit(QueueEvent::Progress {
                job: job.id,
                member,
                event: CampaignEvent::CampaignFinished {
                    completed,
                    skipped,
                    cancelled,
                },
            });
            results.push((mr.spec.clone(), result));
        }
        for (spec, result) in &results {
            self.store.put(spec, result)?;
        }
        self.queue.clear_checkpoints(&job)?;
        job.state = JobState::Done {
            run_ids: run_ids.clone(),
            via: CompletionVia::Executed,
        };
        job.ledger = None;
        self.emit(QueueEvent::Done {
            job: job.id,
            run_ids: run_ids.clone(),
        });
        self.stats.lock().executed += 1;
        self.settle_done(&job, &run_ids)?;
        // Settle latency: claim to fully settled (archived + journaled +
        // duplicates coalesced). Requeued jobs never settle, so the
        // shutdown path above records nothing.
        self.record(
            Stage::SettleLatency,
            self.now_ns().saturating_sub(run.claimed_ns),
        );
        self.finish(job.id);
        Ok(())
    }

    /// Count one finished task; the last one settles the job. Buffered
    /// events are delivered first, so watchers see a task's progress
    /// before (not interleaved with) the job's terminal event.
    fn complete_task(&self, run: &Arc<JobRun>) -> QueueResult<()> {
        self.flush_events();
        if run.outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.finalize(run)?;
        }
        Ok(())
    }

    /// Whether every member spec's run is archived (validated). Absent,
    /// torn and tampered entries all fall through to re-execution — a bad
    /// archive file must never be served *or* wedge the worker.
    fn cache_hit(&self, job: &Job) -> QueueResult<bool> {
        for spec in job.members() {
            match self.store.get(&RunId::of_spec(spec)) {
                Ok(_) => {}
                Err(
                    StoreError::NotFound { .. }
                    | StoreError::Parse { .. }
                    | StoreError::Corrupt { .. },
                ) => return Ok(false),
                Err(e) => return Err(e.into()),
            }
        }
        Ok(true)
    }

    /// Journal a job's `Done` state and settle its still-queued
    /// duplicates in one step under the claim lock — a sibling worker
    /// must never observe the key released (job `Done`) while a duplicate
    /// is still claimable, or it would re-serve the duplicate from cache
    /// instead of coalescing it.
    fn settle_done(&self, job: &Job, run_ids: &[RunId]) -> QueueResult<()> {
        let settled = {
            let _guard = self.claim_lock.lock();
            let _flock = self.queue.lock_exclusive()?;
            self.queue.save(job)?;
            self.queue.settle_duplicates(&job.key(), run_ids, job.id)?
        };
        for dup in settled {
            self.queue.clear_checkpoints(&dup)?;
            self.emit(QueueEvent::Coalesced {
                job: dup.id,
                with: job.id,
            });
            self.stats.lock().coalesced += 1;
        }
        Ok(())
    }
}
