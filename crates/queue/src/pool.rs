//! The bounded worker pool: N threads pulling jobs off the
//! [`JobQueue`], running them through [`CampaignSession`]s with
//! cooperative cancellation, periodic checkpoints and the result cache.
//!
//! Execution path per job:
//!
//! 1. **Cache** — unless the job was submitted with `force`, an archived
//!    run of every member spec (the [`RunId`]s are known up front:
//!    execution is deterministic) is a cache hit served without
//!    recomputation.
//! 2. **Execute** — each member campaign runs on its own
//!    [`CampaignSession`] wired to the job's [`CancelToken`] and a
//!    checkpoint sink that persists resumable
//!    [`SpecCheckpoint`] snapshots atomically; an existing matching
//!    checkpoint makes the session *resume* — restored pairs are not
//!    re-measured, and the finished result is bitwise identical to an
//!    uninterrupted run.
//! 3. **Archive** — completed results auto-archive into the
//!    [`ResultStore`], making the store a memoization layer for the whole
//!    service.
//! 4. **Settle** — still-queued duplicates of the job's key are marked
//!    `Done` (coalesced): two submissions of the same spec observe one
//!    execution.
//!
//! Shutdown ([`WorkerPool::shutdown_token`]) cancels every in-flight
//! session; their partial results are checkpointed and the jobs revert to
//! `Queued`, so a restarted service resumes each one from where the last
//! run stopped — the crash-recovery path and the graceful-shutdown path
//! are the same code.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::time::{Duration, Instant};

use latest_core::session::{CampaignEvent, CampaignSession, CancelToken};
use latest_core::spec::{CampaignSpec, SpecCheckpoint};
use latest_core::store::{ResultStore, RunId, StoreError};
use latest_core::{CampaignResult, CoreError};
use parking_lot::Mutex;

use crate::error::QueueResult;
use crate::events::{QueueChannelObserver, QueueEvent, QueueObserver};
use crate::job::{CompletionVia, Job, JobState};
use crate::queue::JobQueue;

/// Tuning knobs for a [`WorkerPool`].
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Number of worker threads (at least 1).
    pub workers: usize,
    /// Pairs between resumable checkpoint snapshots.
    pub checkpoint_every: usize,
    /// How long an idle worker sleeps before re-polling the journal.
    pub poll_interval: Duration,
    /// Archive directory override (`None` = `<queue dir>/store`).
    pub store_dir: Option<PathBuf>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 2,
            checkpoint_every: 1,
            poll_interval: Duration::from_millis(25),
            store_dir: None,
        }
    }
}

/// What a drain/serve call processed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Jobs that ran to completion on a worker.
    pub executed: usize,
    /// Jobs served from the result cache.
    pub cached: usize,
    /// Duplicates settled by another job's execution.
    pub coalesced: usize,
    /// Jobs that failed.
    pub failed: usize,
    /// Jobs cancelled by request.
    pub cancelled: usize,
    /// In-flight jobs requeued by shutdown.
    pub requeued: usize,
    /// Wall-clock milliseconds the call spent.
    pub elapsed_ms: u64,
}

impl DrainStats {
    /// Jobs settled successfully (executed + cached + coalesced).
    pub fn settled(&self) -> usize {
        self.executed + self.cached + self.coalesced
    }

    /// Settled jobs per wall-clock second (the service throughput figure).
    pub fn jobs_per_sec(&self) -> f64 {
        if self.elapsed_ms == 0 {
            return 0.0;
        }
        self.settled() as f64 / (self.elapsed_ms as f64 / 1000.0)
    }

    /// Serialise to pretty JSON (the `queue serve --stats-out` format,
    /// merged into `BENCH_latest.json` by CI).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("drain stats serialise")
    }
}

impl serde::Serialize for DrainStats {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("executed".to_string(), self.executed.to_value()),
            ("cached".to_string(), self.cached.to_value()),
            ("coalesced".to_string(), self.coalesced.to_value()),
            ("failed".to_string(), self.failed.to_value()),
            ("cancelled".to_string(), self.cancelled.to_value()),
            ("requeued".to_string(), self.requeued.to_value()),
            ("elapsed_ms".to_string(), self.elapsed_ms.to_value()),
            ("jobs_per_sec".to_string(), self.jobs_per_sec().to_value()),
        ])
    }
}

impl std::fmt::Display for DrainStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} settled ({} executed, {} cached, {} coalesced), {} failed, \
             {} cancelled, {} requeued in {:.2}s ({:.2} jobs/s)",
            self.settled(),
            self.executed,
            self.cached,
            self.coalesced,
            self.failed,
            self.cancelled,
            self.requeued,
            self.elapsed_ms as f64 / 1000.0,
            self.jobs_per_sec(),
        )
    }
}

/// The campaign execution service. See the [module docs](self) for the
/// execution path.
pub struct WorkerPool {
    queue: JobQueue,
    store: ResultStore,
    config: PoolConfig,
    observers: Vec<Arc<dyn QueueObserver>>,
    shutdown: CancelToken,
    /// Serialises journal read-modify-write cycles across workers.
    claim_lock: Mutex<()>,
    /// Cancel tokens of in-flight jobs, keyed by job id.
    running: Mutex<HashMap<crate::job::JobId, CancelToken>>,
    stats: Mutex<DrainStats>,
}

impl WorkerPool {
    /// Open a pool over the queue directory. Crash recovery — reverting
    /// `Running` jobs a killed service left behind to `Queued`, to resume
    /// from their checkpoints — happens at the start of every
    /// [`WorkerPool::serve`]/[`WorkerPool::drain`] call, under the
    /// directory's exclusive service lock.
    pub fn open(dir: impl Into<PathBuf>, config: PoolConfig) -> QueueResult<WorkerPool> {
        let queue = JobQueue::open(dir)?;
        let store_dir = config
            .store_dir
            .clone()
            .unwrap_or_else(|| queue.default_store_dir());
        let store = ResultStore::open(store_dir)?;
        Ok(WorkerPool {
            queue,
            store,
            config: PoolConfig {
                workers: config.workers.max(1),
                checkpoint_every: config.checkpoint_every.max(1),
                ..config
            },
            observers: Vec::new(),
            shutdown: CancelToken::new(),
            claim_lock: Mutex::new(()),
            running: Mutex::new(HashMap::new()),
            stats: Mutex::new(DrainStats::default()),
        })
    }

    /// The pool's job queue.
    pub fn queue(&self) -> &JobQueue {
        &self.queue
    }

    /// The result cache the pool consults and archives into.
    pub fn store(&self) -> &ResultStore {
        &self.store
    }

    /// Attach an observer to the multiplexed event feed; may be called
    /// several times.
    pub fn observe(mut self, observer: impl QueueObserver + 'static) -> Self {
        self.observers.push(Arc::new(observer));
        self
    }

    /// Attach a channel observer and return its receiving end.
    pub fn events(&mut self) -> Receiver<QueueEvent> {
        let (tx, rx) = channel();
        self.observers.push(Arc::new(QueueChannelObserver::new(tx)));
        rx
    }

    /// The pool-wide shutdown token: cancelling it winds down every
    /// worker; in-flight jobs are checkpointed and requeued for resume.
    pub fn shutdown_token(&self) -> CancelToken {
        self.shutdown.clone()
    }

    fn emit(&self, event: QueueEvent) {
        for obs in &self.observers {
            obs.event(&event);
        }
    }

    /// Process jobs until the queue is empty and every worker is idle (or
    /// shutdown is requested), then return what was processed.
    pub fn drain(&self) -> QueueResult<DrainStats> {
        self.run_workers(true)
    }

    /// Serve indefinitely: like [`WorkerPool::drain`], but an empty queue
    /// is polled for new submissions instead of ending the call. Returns
    /// only after [`WorkerPool::shutdown_token`] is cancelled.
    pub fn serve(&self) -> QueueResult<DrainStats> {
        self.run_workers(false)
    }

    fn run_workers(&self, drain: bool) -> QueueResult<DrainStats> {
        // One service per queue directory: recover() cannot tell a killed
        // service's Running entries from a live sibling's, so serving
        // without this exclusive hold could requeue — and re-execute —
        // jobs another pool is still running.
        let _service = self.queue.try_lock_service()?.ok_or_else(|| {
            crate::error::QueueError::ServiceActive {
                dir: self.queue.dir().to_path_buf(),
            }
        })?;
        self.queue.recover()?;
        *self.stats.lock() = DrainStats::default();
        let started = Instant::now();
        let errors: Mutex<Vec<crate::error::QueueError>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for worker in 0..self.config.workers {
                let errors = &errors;
                scope.spawn(move || {
                    if let Err(e) = self.worker_loop(worker, drain) {
                        // A worker dying must not hang the pool.
                        self.shutdown.cancel();
                        errors.lock().push(e);
                    }
                });
            }
        });
        if let Some(e) = errors.into_inner().into_iter().next() {
            return Err(e);
        }
        let mut stats = self.stats.lock();
        stats.elapsed_ms = started.elapsed().as_millis() as u64;
        Ok(*stats)
    }

    fn worker_loop(&self, worker: usize, drain: bool) -> QueueResult<()> {
        loop {
            if self.shutdown.is_cancelled() {
                return Ok(());
            }
            // Claim under the locks: popping a job and registering its
            // cancel token must be one atomic step, or a sibling worker
            // could observe "queue empty, nobody running" mid-claim and
            // exit early. The claim_lock serialises workers in this
            // process; the queue's file lock serialises against other
            // processes (a concurrent `queue cancel`). One journal parse
            // per cycle: markers are a directory listing, and the claim
            // carries the snapshot's pending count.
            let claimed = {
                let _guard = self.claim_lock.lock();
                let _flock = self.queue.lock_exclusive()?;
                self.honour_cancel_markers()?;
                let claim = self.queue.claim()?;
                match claim.job {
                    Some(job) => {
                        let token = CancelToken::new();
                        self.running.lock().insert(job.id, token.clone());
                        Some((job, token))
                    }
                    None => {
                        if drain && self.running.lock().is_empty() && claim.pending == 0 {
                            return Ok(());
                        }
                        None
                    }
                }
            };
            match claimed {
                Some((job, token)) => self.execute(worker, job, &token)?,
                None => std::thread::sleep(self.config.poll_interval),
            }
        }
    }

    /// Apply pending cancellation markers: queued jobs are journaled as
    /// `Cancelled`; running jobs get their token cancelled (the executing
    /// worker settles the state). Only marked jobs are loaded, so the
    /// (usual) no-markers poll costs one directory listing.
    fn honour_cancel_markers(&self) -> QueueResult<()> {
        for id in self.queue.pending_cancels()? {
            let mut job = match self.queue.load(id) {
                Ok(job) => job,
                // A marker for a journal entry that no longer parses (or
                // was removed) must not wedge every poll cycle.
                Err(_) => {
                    self.queue.clear_cancel_request(id)?;
                    continue;
                }
            };
            match job.state {
                JobState::Queued => {
                    job.state = JobState::Cancelled;
                    self.queue.save(&job)?;
                    self.queue.clear_checkpoints(&job)?;
                    self.queue.clear_cancel_request(job.id)?;
                    self.stats.lock().cancelled += 1;
                    self.emit(QueueEvent::Cancelled { job: job.id });
                }
                JobState::Running => {
                    if let Some(token) = self.running.lock().get(&job.id) {
                        token.cancel();
                    }
                    // The marker stays until the executing worker settles
                    // the job, so it survives a crash in between.
                }
                _ => self.queue.clear_cancel_request(job.id)?,
            }
        }
        Ok(())
    }

    fn finish(&self, job: &Job) {
        self.running.lock().remove(&job.id);
    }

    fn execute(&self, worker: usize, mut job: Job, token: &CancelToken) -> QueueResult<()> {
        self.emit(QueueEvent::Started {
            job: job.id,
            worker,
        });
        let run_ids = job.run_ids();

        // Result cache: an archived run of every member spec satisfies the
        // job without recomputation (integrity-validated loads — a corrupt
        // archive entry falls through to re-execution, never gets served).
        if !job.force && self.cache_hit(&job)? {
            job.state = JobState::Done {
                run_ids: run_ids.clone(),
                via: CompletionVia::Cache,
            };
            self.queue.clear_checkpoints(&job)?;
            self.emit(QueueEvent::CacheHit {
                job: job.id,
                run_ids: run_ids.clone(),
            });
            self.stats.lock().cached += 1;
            self.settle_done(&job, &run_ids)?;
            self.finish(&job);
            return Ok(());
        }

        // Execute member campaigns in slot order on this worker (the pool
        // is the parallelism unit; each session is internally parallel
        // over pairs).
        let mut results: Vec<(CampaignSpec, CampaignResult)> = Vec::new();
        for (member, spec) in job.members().iter().enumerate() {
            if token.is_cancelled() || self.shutdown.is_cancelled() {
                break;
            }
            match self.run_member(&job, member, spec, token) {
                Ok(Some(result)) => results.push((spec.clone(), result)),
                Ok(None) => break, // cancelled mid-member; checkpointed
                Err(message) => {
                    job.state = JobState::Failed {
                        error: message.clone(),
                    };
                    self.queue.save(&job)?;
                    self.queue.clear_cancel_request(job.id)?;
                    self.emit(QueueEvent::Failed {
                        job: job.id,
                        error: message,
                    });
                    self.stats.lock().failed += 1;
                    self.finish(&job);
                    return Ok(());
                }
            }
        }

        if token.is_cancelled() || self.shutdown.is_cancelled() {
            if self.shutdown.is_cancelled() {
                // Service shutdown: back to the queue; checkpoints resume
                // the job on restart.
                job.state = JobState::Queued;
                self.queue.save(&job)?;
                self.emit(QueueEvent::Requeued { job: job.id });
                self.stats.lock().requeued += 1;
            } else {
                // User cancellation: settle as cancelled, drop state.
                job.state = JobState::Cancelled;
                self.queue.save(&job)?;
                self.queue.clear_checkpoints(&job)?;
                self.queue.clear_cancel_request(job.id)?;
                self.emit(QueueEvent::Cancelled { job: job.id });
                self.stats.lock().cancelled += 1;
            }
            self.finish(&job);
            return Ok(());
        }

        // Auto-archive: the store becomes a memoization layer for the
        // whole service.
        for (spec, result) in &results {
            self.store.put(spec, result)?;
        }
        self.queue.clear_checkpoints(&job)?;
        job.state = JobState::Done {
            run_ids: run_ids.clone(),
            via: CompletionVia::Executed,
        };
        self.emit(QueueEvent::Done {
            job: job.id,
            run_ids: run_ids.clone(),
        });
        self.stats.lock().executed += 1;
        self.settle_done(&job, &run_ids)?;
        self.finish(&job);
        Ok(())
    }

    /// Whether every member spec's run is archived (validated). Absent,
    /// torn and tampered entries all fall through to re-execution — a bad
    /// archive file must never be served *or* wedge the worker.
    fn cache_hit(&self, job: &Job) -> QueueResult<bool> {
        for spec in job.members() {
            match self.store.get(&RunId::of_spec(spec)) {
                Ok(_) => {}
                Err(
                    StoreError::NotFound { .. }
                    | StoreError::Parse { .. }
                    | StoreError::Corrupt { .. },
                ) => return Ok(false),
                Err(e) => return Err(e.into()),
            }
        }
        Ok(true)
    }

    /// Journal a job's `Done` state and settle its still-queued
    /// duplicates in one step under the claim lock — a sibling worker
    /// must never observe the key released (job `Done`) while a duplicate
    /// is still claimable, or it would re-serve the duplicate from cache
    /// instead of coalescing it.
    fn settle_done(&self, job: &Job, run_ids: &[RunId]) -> QueueResult<()> {
        let settled = {
            let _guard = self.claim_lock.lock();
            let _flock = self.queue.lock_exclusive()?;
            self.queue.save(job)?;
            self.queue.settle_duplicates(&job.key(), run_ids, job.id)?
        };
        for dup in settled {
            self.queue.clear_checkpoints(&dup)?;
            self.emit(QueueEvent::Coalesced {
                job: dup.id,
                with: job.id,
            });
            self.stats.lock().coalesced += 1;
        }
        Ok(())
    }

    /// Run one member campaign, resuming from its checkpoint when one
    /// exists. Returns `Ok(None)` when cancelled mid-run (the partial
    /// result is checkpointed for resume), `Err(message)` on a terminal
    /// failure.
    fn run_member(
        &self,
        job: &Job,
        member: usize,
        spec: &CampaignSpec,
        token: &CancelToken,
    ) -> Result<Option<CampaignResult>, String> {
        let config = spec
            .resolve()
            .map_err(|e| format!("member {member}: {e}"))?;
        let ckpt_path = self.queue.checkpoint_path(job.id, member);

        let mut session = CampaignSession::new(config).with_cancel_token(token.clone());

        // Resume: a checkpoint taken under the identical spec restores its
        // settled pairs verbatim; anything unreadable or mismatched is
        // discarded (the job file is the source of truth for the spec).
        if ckpt_path.is_file() {
            let restored = SpecCheckpoint::load(&ckpt_path)
                .ok()
                .filter(|cp| &cp.spec == spec);
            match restored {
                Some(cp) => session = session.resume_from(cp.result),
                None => {
                    let _ = fs::remove_file(&ckpt_path);
                }
            }
        }

        // Periodic resumable snapshots, written with the same atomic
        // rename discipline as the journal. The sink doubles as the busy
        // worker's cancellation poll: markers and pool shutdown are
        // honoured at the next checkpoint boundary even when no idle
        // worker is left to observe them.
        let sink_path = ckpt_path.clone();
        let sink_spec = spec.clone();
        let sink_queue = self.queue.clone();
        let sink_token = token.clone();
        let sink_shutdown = self.shutdown.clone();
        let job_id = job.id;
        session =
            session.checkpoint_to(self.config.checkpoint_every, move |cp: &CampaignResult| {
                let doc = SpecCheckpoint {
                    spec: sink_spec.clone(),
                    result: cp.clone(),
                };
                let _ = doc.save(&sink_path);
                if sink_shutdown.is_cancelled() || sink_queue.cancel_requested(job_id) {
                    sink_token.cancel();
                }
            });

        // Fan the member's campaign events into the multiplexed feed.
        let observers = self.observers.clone();
        let job_id = job.id;
        session = session.observe(move |e: &CampaignEvent| {
            let event = QueueEvent::Progress {
                job: job_id,
                member,
                event: e.clone(),
            };
            for obs in &observers {
                obs.event(&event);
            }
        });

        match session.run() {
            Ok(result) if result.is_partial() => {
                // Cancelled mid-campaign: persist the freshest partial
                // state (periodic snapshots may lag behind).
                let doc = SpecCheckpoint {
                    spec: spec.clone(),
                    result,
                };
                doc.save(&ckpt_path)
                    .map_err(|e| format!("member {member}: writing checkpoint: {e}"))?;
                Ok(None)
            }
            Ok(result) => Ok(Some(result)),
            // Cancelled before phase 1: nothing new to checkpoint.
            Err(CoreError::Cancelled) => Ok(None),
            Err(e) => Err(format!("member {member}: {e}")),
        }
    }
}
