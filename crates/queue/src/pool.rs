//! The work-stealing shard scheduler: N threads pulling jobs off the
//! [`JobQueue`] and executing them at *pair-shard* granularity, with
//! cooperative cancellation, periodic cross-shard checkpoints and the
//! result cache.
//!
//! Execution path per job:
//!
//! 1. **Cache** — unless the job was submitted with `force`, an archived
//!    run of every member spec (the [`RunId`]s are known up front:
//!    execution is deterministic) is a cache hit served without
//!    recomputation.
//! 2. **Plan** — the claiming worker fans the job out onto the shared
//!    task board: one setup task per member campaign. Each setup resolves
//!    its spec, restores any matching checkpoint, runs the phase-1 +
//!    probe prelude once, and decomposes the member's pending pairs into
//!    [`WorkUnit`] shards — so a single claimed job spreads across every
//!    idle worker in the pool, not just the claimer.
//! 3. **Execute** — workers steal shard tasks off the board and run them
//!    through the member's [`CampaignSession`]. Per-pair platforms are
//!    seeded from the campaign seed and the pair alone, so the
//!    interleaving of shards across workers is invisible in the results:
//!    the merged output is bitwise identical to a sequential run. Settled
//!    pairs fold into a per-member [`SpecCheckpoint`] (atomic
//!    write-to-temp + rename), and the shard ledger on the job's journal
//!    entry tracks pair/shard progress for `queue status`.
//! 4. **Archive** — when a job's last shard settles, the finishing worker
//!    merges the slots back into canonical pair order, archives each
//!    member result into the [`ResultStore`], and settles the job.
//! 5. **Settle** — still-queued duplicates of the job's key are marked
//!    `Done` (coalesced): two submissions of the same spec observe one
//!    execution.
//!
//! Shutdown ([`WorkerPool::shutdown_token`]) cancels every in-flight
//! session; their partial results are checkpointed and the jobs revert to
//! `Queued`, so a restarted service resumes each one from where the last
//! run stopped — even mid-shard, the crash-recovery path and the
//! graceful-shutdown path are the same code.

use std::collections::{HashMap, VecDeque};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Condvar, Mutex as StdMutex, OnceLock};
use std::time::{Duration, Instant};

use latest_core::session::{
    CampaignEvent, CampaignPrelude, CampaignSession, CancelToken, ShardResult, WorkUnit,
};
use latest_core::spec::{CampaignSpec, SpecCheckpoint};
use latest_core::store::{ResultStore, RunId, StoreError};
use latest_core::{CoreError, PairMeasurement, PairOutcome};
use parking_lot::Mutex;

use crate::error::QueueResult;
use crate::events::{QueueChannelObserver, QueueEvent, QueueObserver};
use crate::job::{CompletionVia, Job, JobId, JobState, MemberLedger, ShardLedger};
use crate::queue::JobQueue;

/// Tuning knobs for a [`WorkerPool`].
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Number of worker threads (at least 1).
    pub workers: usize,
    /// Pairs between resumable checkpoint snapshots.
    pub checkpoint_every: usize,
    /// How long an idle worker sleeps before re-polling the journal.
    pub poll_interval: Duration,
    /// Archive directory override (`None` = `<queue dir>/store`).
    pub store_dir: Option<PathBuf>,
    /// Pairs per shard work unit (0 = auto: about two shards per worker,
    /// so a claimed job keeps the whole pool busy with headroom for
    /// stealing).
    pub shard_pairs: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 2,
            checkpoint_every: 1,
            poll_interval: Duration::from_millis(25),
            store_dir: None,
            shard_pairs: 0,
        }
    }
}

/// What a drain/serve call processed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Jobs that ran to completion on the pool.
    pub executed: usize,
    /// Jobs served from the result cache.
    pub cached: usize,
    /// Duplicates settled by another job's execution.
    pub coalesced: usize,
    /// Jobs that failed.
    pub failed: usize,
    /// Jobs cancelled by request.
    pub cancelled: usize,
    /// In-flight jobs requeued by shutdown.
    pub requeued: usize,
    /// Shard work units executed across all jobs.
    pub shards_executed: usize,
    /// Pairs measured (not restored, not cancelled) across all jobs.
    pub pairs_measured: usize,
    /// Wall-clock milliseconds the call spent.
    pub elapsed_ms: u64,
}

impl DrainStats {
    /// Jobs settled successfully (executed + cached + coalesced).
    pub fn settled(&self) -> usize {
        self.executed + self.cached + self.coalesced
    }

    /// Settled jobs per wall-clock second (the service throughput figure).
    pub fn jobs_per_sec(&self) -> f64 {
        if self.elapsed_ms == 0 {
            return 0.0;
        }
        self.settled() as f64 / (self.elapsed_ms as f64 / 1000.0)
    }

    /// Serialise to pretty JSON (the `queue serve --stats-out` format,
    /// merged into `BENCH_latest.json` by CI).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("drain stats serialise")
    }
}

impl serde::Serialize for DrainStats {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("executed".to_string(), self.executed.to_value()),
            ("cached".to_string(), self.cached.to_value()),
            ("coalesced".to_string(), self.coalesced.to_value()),
            ("failed".to_string(), self.failed.to_value()),
            ("cancelled".to_string(), self.cancelled.to_value()),
            ("requeued".to_string(), self.requeued.to_value()),
            (
                "shards_executed".to_string(),
                self.shards_executed.to_value(),
            ),
            ("pairs_measured".to_string(), self.pairs_measured.to_value()),
            ("elapsed_ms".to_string(), self.elapsed_ms.to_value()),
            ("jobs_per_sec".to_string(), self.jobs_per_sec().to_value()),
        ])
    }
}

impl std::fmt::Display for DrainStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} settled ({} executed, {} cached, {} coalesced), {} failed, \
             {} cancelled, {} requeued; {} shards / {} pairs measured \
             in {:.2}s ({:.2} jobs/s)",
            self.settled(),
            self.executed,
            self.cached,
            self.coalesced,
            self.failed,
            self.cancelled,
            self.requeued,
            self.shards_executed,
            self.pairs_measured,
            self.elapsed_ms as f64 / 1000.0,
            self.jobs_per_sec(),
        )
    }
}

/// One schedulable step of an in-flight job on the task board.
enum Task {
    /// Resolve one member's spec, build its session, run the prelude and
    /// fan its pending pairs out as shard tasks.
    Setup { run: Arc<JobRun>, member: usize },
    /// Execute one shard work unit of a member campaign.
    Shard {
        run: Arc<JobRun>,
        member: usize,
        unit: WorkUnit,
    },
}

/// The shared task board every worker steals from. A plain FIFO deque
/// under a mutex — tasks are coarse (a prelude or a batch of pairs), so
/// contention here is noise next to the measurement work itself.
struct TaskBoard {
    tasks: StdMutex<VecDeque<Task>>,
    available: Condvar,
}

impl TaskBoard {
    fn new() -> Self {
        TaskBoard {
            tasks: StdMutex::new(VecDeque::new()),
            available: Condvar::new(),
        }
    }

    fn push(&self, new: Vec<Task>) {
        let mut tasks = self.tasks.lock().expect("task board poisoned");
        tasks.extend(new);
        self.available.notify_all();
    }

    fn pop(&self) -> Option<Task> {
        self.tasks.lock().expect("task board poisoned").pop_front()
    }

    /// Sleep until a task may be available (or the timeout passes — the
    /// caller re-checks shutdown and the journal either way).
    fn wait(&self, timeout: Duration) {
        let tasks = self.tasks.lock().expect("task board poisoned");
        if tasks.is_empty() {
            let _ = self.available.wait_timeout(tasks, timeout);
        }
    }

    fn clear(&self) {
        self.tasks.lock().expect("task board poisoned").clear();
    }
}

/// Shared state of one claimed job while its tasks are in flight.
struct JobRun {
    job: StdMutex<Job>,
    /// The job's cancellation token, shared with every member session.
    token: CancelToken,
    /// Per-member state, set by the member's setup task (`None` when the
    /// member was cancelled before its prelude finished).
    members: Vec<OnceLock<Option<MemberRun>>>,
    /// Unfinished tasks; the worker that drops it to zero finalises.
    outstanding: AtomicUsize,
    /// First terminal failure, if any (first writer wins).
    failure: StdMutex<Option<String>>,
}

impl JobRun {
    fn fail(&self, message: String) {
        let mut failure = self.failure.lock().expect("failure slot poisoned");
        if failure.is_none() {
            *failure = Some(message);
        }
        // Stop sibling shards promptly; the failure outranks the
        // cancellation when the job settles.
        self.token.cancel();
    }

    fn failed(&self) -> bool {
        self.failure
            .lock()
            .expect("failure slot poisoned")
            .is_some()
    }
}

/// One member campaign of an in-flight job: its session (shared by every
/// worker running its shards), the prelude, and the slot-wise results.
struct MemberRun {
    spec: CampaignSpec,
    session: CampaignSession,
    prelude: CampaignPrelude,
    ckpt_path: PathBuf,
    shards_total: usize,
    shards_done: AtomicUsize,
    /// Canonical-order result slots; `Some` once the pair settled (or was
    /// restored from a checkpoint).
    slots: StdMutex<Vec<Option<PairMeasurement>>>,
}

/// The campaign execution service. See the [module docs](self) for the
/// execution path.
pub struct WorkerPool {
    queue: JobQueue,
    store: ResultStore,
    config: PoolConfig,
    observers: Vec<Arc<dyn QueueObserver>>,
    shutdown: CancelToken,
    /// Serialises journal read-modify-write cycles across workers.
    claim_lock: Mutex<()>,
    /// Cancel tokens of in-flight jobs, keyed by job id.
    running: Mutex<HashMap<JobId, CancelToken>>,
    board: TaskBoard,
    stats: Mutex<DrainStats>,
}

impl WorkerPool {
    /// Open a pool over the queue directory. Crash recovery — reverting
    /// `Running` jobs a killed service left behind to `Queued`, to resume
    /// from their checkpoints — happens at the start of every
    /// [`WorkerPool::serve`]/[`WorkerPool::drain`] call, under the
    /// directory's exclusive service lock.
    pub fn open(dir: impl Into<PathBuf>, config: PoolConfig) -> QueueResult<WorkerPool> {
        let queue = JobQueue::open(dir)?;
        let store_dir = config
            .store_dir
            .clone()
            .unwrap_or_else(|| queue.default_store_dir());
        let store = ResultStore::open(store_dir)?;
        Ok(WorkerPool {
            queue,
            store,
            config: PoolConfig {
                workers: config.workers.max(1),
                checkpoint_every: config.checkpoint_every.max(1),
                ..config
            },
            observers: Vec::new(),
            shutdown: CancelToken::new(),
            claim_lock: Mutex::new(()),
            running: Mutex::new(HashMap::new()),
            board: TaskBoard::new(),
            stats: Mutex::new(DrainStats::default()),
        })
    }

    /// The pool's job queue.
    pub fn queue(&self) -> &JobQueue {
        &self.queue
    }

    /// The result cache the pool consults and archives into.
    pub fn store(&self) -> &ResultStore {
        &self.store
    }

    /// Attach an observer to the multiplexed event feed; may be called
    /// several times.
    pub fn observe(mut self, observer: impl QueueObserver + 'static) -> Self {
        self.observers.push(Arc::new(observer));
        self
    }

    /// Attach a channel observer and return its receiving end.
    pub fn events(&mut self) -> Receiver<QueueEvent> {
        let (tx, rx) = channel();
        self.observers.push(Arc::new(QueueChannelObserver::new(tx)));
        rx
    }

    /// The pool-wide shutdown token: cancelling it winds down every
    /// worker; in-flight jobs are checkpointed and requeued for resume.
    pub fn shutdown_token(&self) -> CancelToken {
        self.shutdown.clone()
    }

    fn emit(&self, event: QueueEvent) {
        for obs in &self.observers {
            obs.event(&event);
        }
    }

    /// Process jobs until the queue is empty and every worker is idle (or
    /// shutdown is requested), then return what was processed.
    pub fn drain(&self) -> QueueResult<DrainStats> {
        self.run_workers(true)
    }

    /// Serve indefinitely: like [`WorkerPool::drain`], but an empty queue
    /// is polled for new submissions instead of ending the call. Returns
    /// only after [`WorkerPool::shutdown_token`] is cancelled.
    pub fn serve(&self) -> QueueResult<DrainStats> {
        self.run_workers(false)
    }

    /// Pending pairs → shard count for one member's plan.
    fn shards_for(&self, pending: usize) -> usize {
        if self.config.shard_pairs > 0 {
            pending.div_ceil(self.config.shard_pairs).max(1)
        } else {
            (self.config.workers * 2).clamp(1, pending.max(1))
        }
    }

    fn run_workers(&self, drain: bool) -> QueueResult<DrainStats> {
        // One service per queue directory: recover() cannot tell a killed
        // service's Running entries from a live sibling's, so serving
        // without this exclusive hold could requeue — and re-execute —
        // jobs another pool is still running.
        let _service = self.queue.try_lock_service()?.ok_or_else(|| {
            crate::error::QueueError::ServiceActive {
                dir: self.queue.dir().to_path_buf(),
            }
        })?;
        self.queue.recover()?;
        // A previous run that erred out may have abandoned tasks; their
        // jobs were just recovered to Queued, so the stale tasks are dead.
        self.board.clear();
        *self.stats.lock() = DrainStats::default();
        let started = Instant::now();
        let errors: Mutex<Vec<crate::error::QueueError>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for worker in 0..self.config.workers {
                let errors = &errors;
                scope.spawn(move || {
                    if let Err(e) = self.worker_loop(worker, drain) {
                        // A worker dying must not hang the pool.
                        self.shutdown.cancel();
                        errors.lock().push(e);
                    }
                });
            }
        });
        if let Some(e) = errors.into_inner().into_iter().next() {
            return Err(e);
        }
        let mut stats = self.stats.lock();
        stats.elapsed_ms = started.elapsed().as_millis() as u64;
        Ok(*stats)
    }

    fn worker_loop(&self, worker: usize, drain: bool) -> QueueResult<()> {
        loop {
            // Board first: shard tasks of claimed jobs outrank new claims,
            // and they must still be consumed after shutdown — each
            // in-flight job settles (requeued, with its checkpoint) only
            // when its last task completes.
            if let Some(task) = self.board.pop() {
                self.run_task(task)?;
                continue;
            }
            if self.shutdown.is_cancelled() {
                return Ok(());
            }
            // Claim under the locks: popping a job and registering its
            // cancel token must be one atomic step, or a sibling worker
            // could observe "queue empty, nobody running" mid-claim and
            // exit early. The claim_lock serialises workers in this
            // process; the queue's file lock serialises against other
            // processes (a concurrent `queue cancel`). One journal parse
            // per cycle: markers are a directory listing, and the claim
            // carries the snapshot's pending count.
            let claimed = {
                let _guard = self.claim_lock.lock();
                let _flock = self.queue.lock_exclusive()?;
                self.honour_cancel_markers()?;
                let claim = self.queue.claim()?;
                match claim.job {
                    Some(job) => {
                        let token = CancelToken::new();
                        self.running.lock().insert(job.id, token.clone());
                        Some((job, token))
                    }
                    None => {
                        if drain && self.running.lock().is_empty() && claim.pending == 0 {
                            return Ok(());
                        }
                        None
                    }
                }
            };
            match claimed {
                Some((job, token)) => self.begin(worker, job, token)?,
                None => self.board.wait(self.config.poll_interval),
            }
        }
    }

    /// Apply pending cancellation markers: queued jobs are journaled as
    /// `Cancelled`; running jobs get their token cancelled (the owning
    /// job's tasks settle the state). Only marked jobs are loaded, so the
    /// (usual) no-markers poll costs one directory listing.
    fn honour_cancel_markers(&self) -> QueueResult<()> {
        for id in self.queue.pending_cancels()? {
            let mut job = match self.queue.load(id) {
                Ok(job) => job,
                // A marker for a journal entry that no longer parses (or
                // was removed) must not wedge every poll cycle.
                Err(_) => {
                    self.queue.clear_cancel_request(id)?;
                    continue;
                }
            };
            match job.state {
                JobState::Queued => {
                    job.state = JobState::Cancelled;
                    self.queue.save(&job)?;
                    self.queue.clear_checkpoints(&job)?;
                    self.queue.clear_cancel_request(job.id)?;
                    self.stats.lock().cancelled += 1;
                    self.emit(QueueEvent::Cancelled { job: job.id });
                }
                JobState::Running => {
                    if let Some(token) = self.running.lock().get(&job.id) {
                        token.cancel();
                    }
                    // The marker stays until the job's tasks settle it, so
                    // it survives a crash in between.
                }
                _ => self.queue.clear_cancel_request(job.id)?,
            }
        }
        Ok(())
    }

    fn finish(&self, id: JobId) {
        self.running.lock().remove(&id);
    }

    /// Start a claimed job: serve it from cache when possible, otherwise
    /// fan one setup task per member onto the board. The claimer returns
    /// to the loop immediately — the whole pool executes the job.
    fn begin(&self, worker: usize, mut job: Job, token: CancelToken) -> QueueResult<()> {
        self.emit(QueueEvent::Started {
            job: job.id,
            worker,
        });
        let run_ids = job.run_ids();

        // Result cache: an archived run of every member spec satisfies the
        // job without recomputation (integrity-validated loads — a corrupt
        // archive entry falls through to re-execution, never gets served).
        if !job.force && self.cache_hit(&job)? {
            job.state = JobState::Done {
                run_ids: run_ids.clone(),
                via: CompletionVia::Cache,
            };
            self.queue.clear_checkpoints(&job)?;
            self.emit(QueueEvent::CacheHit {
                job: job.id,
                run_ids: run_ids.clone(),
            });
            self.stats.lock().cached += 1;
            self.settle_done(&job, &run_ids)?;
            self.finish(job.id);
            return Ok(());
        }

        let members = job.members().len();
        let pairs: usize = job
            .members()
            .iter()
            .filter_map(|spec| spec.resolve().ok())
            .map(|config| config.ordered_state_pairs().len())
            .sum();
        self.emit(QueueEvent::Planned {
            job: job.id,
            members,
            pairs,
        });
        let run = Arc::new(JobRun {
            job: StdMutex::new(job),
            token,
            members: (0..members).map(|_| OnceLock::new()).collect(),
            outstanding: AtomicUsize::new(members),
            failure: StdMutex::new(None),
        });
        let tasks = (0..members)
            .map(|member| Task::Setup {
                run: run.clone(),
                member,
            })
            .collect();
        self.board.push(tasks);
        Ok(())
    }

    fn run_task(&self, task: Task) -> QueueResult<()> {
        match task {
            Task::Setup { run, member } => self.setup_member(&run, member),
            Task::Shard { run, member, unit } => self.run_shard(&run, member, &unit),
        }
    }

    /// Build one member's session and fan its pending pairs out as shard
    /// tasks. Runs the member's prelude (phase 1 + probe) exactly once.
    fn setup_member(&self, run: &Arc<JobRun>, member: usize) -> QueueResult<()> {
        if run.failed() || run.token.is_cancelled() || self.shutdown.is_cancelled() {
            let _ = run.members[member].set(None);
            return self.complete_task(run);
        }
        let (job_id, spec) = {
            let job = run.job.lock().expect("job slot poisoned");
            (job.id, job.members()[member].clone())
        };
        match self.build_member(job_id, member, &spec, run) {
            Ok(Some(mut mr)) => {
                let (restored, pending) = {
                    let slots = mr.slots.lock().expect("member slots poisoned");
                    let restored: Vec<(usize, PairMeasurement)> = slots
                        .iter()
                        .enumerate()
                        .filter_map(|(i, s)| s.as_ref().map(|m| (i, m.clone())))
                        .collect();
                    let pending = slots.len() - restored.len();
                    (restored, pending)
                };
                for (index, meas) in &restored {
                    self.emit(QueueEvent::Progress {
                        job: job_id,
                        member,
                        event: CampaignEvent::PairRestored {
                            index: *index,
                            init: meas.init,
                            target: meas.target,
                        },
                    });
                }
                let units: Vec<WorkUnit> = if pending == 0 {
                    Vec::new()
                } else {
                    mr.session.plan(self.shards_for(pending)).units().to_vec()
                };
                mr.shards_total = units.len();
                let _ = run.members[member].set(Some(mr));
                self.update_ledger(run)?;
                if units.is_empty() {
                    // Fully restored from the checkpoint: nothing to run.
                    return self.complete_task(run);
                }
                // Register the shard tasks before pushing them: a sibling
                // may pop and finish one before we decrement for the
                // setup task itself.
                run.outstanding.fetch_add(units.len(), Ordering::SeqCst);
                let tasks = units
                    .into_iter()
                    .map(|unit| Task::Shard {
                        run: run.clone(),
                        member,
                        unit,
                    })
                    .collect();
                self.board.push(tasks);
                self.complete_task(run)
            }
            Ok(None) => {
                // Cancelled before the prelude finished.
                let _ = run.members[member].set(None);
                self.complete_task(run)
            }
            Err(message) => {
                run.fail(message);
                let _ = run.members[member].set(None);
                self.complete_task(run)
            }
        }
    }

    /// Resolve one member spec into a ready-to-shard [`MemberRun`],
    /// resuming from its checkpoint when one matches. `Ok(None)` means
    /// cancelled during the prelude.
    fn build_member(
        &self,
        job_id: JobId,
        member: usize,
        spec: &CampaignSpec,
        run: &Arc<JobRun>,
    ) -> Result<Option<MemberRun>, String> {
        let config = spec
            .resolve()
            .map_err(|e| format!("member {member}: {e}"))?;
        let total = config.ordered_state_pairs().len();
        let ckpt_path = self.queue.checkpoint_path(job_id, member);

        let mut session = CampaignSession::new(config).with_cancel_token(run.token.clone());

        // Resume: a checkpoint taken under the identical spec restores its
        // settled pairs verbatim; anything unreadable or mismatched is
        // discarded (the job file is the source of truth for the spec).
        if ckpt_path.is_file() {
            let restored = SpecCheckpoint::load(&ckpt_path)
                .ok()
                .filter(|cp| &cp.spec == spec);
            match restored {
                Some(cp) => session = session.resume_from(cp.result),
                None => {
                    let _ = fs::remove_file(&ckpt_path);
                }
            }
        }

        // Fan the member's campaign events into the multiplexed feed.
        let observers = self.observers.clone();
        session = session.observe(move |e: &CampaignEvent| {
            let event = QueueEvent::Progress {
                job: job_id,
                member,
                event: e.clone(),
            };
            for obs in &observers {
                obs.event(&event);
            }
        });

        let prelude = match session.prelude() {
            Ok(prelude) => prelude,
            Err(CoreError::Cancelled) => return Ok(None),
            Err(e) => return Err(format!("member {member}: {e}")),
        };

        let mut slots = vec![None; total];
        for (index, meas) in session.restored_pairs() {
            slots[index] = Some(meas);
        }
        Ok(Some(MemberRun {
            spec: spec.clone(),
            session,
            prelude,
            ckpt_path,
            shards_total: 0,
            shards_done: AtomicUsize::new(0),
            slots: StdMutex::new(slots),
        }))
    }

    /// Execute one shard work unit; settled pairs fold into the member's
    /// checkpoint, which doubles as the busy pool's cancellation poll.
    fn run_shard(&self, run: &Arc<JobRun>, member: usize, unit: &WorkUnit) -> QueueResult<()> {
        if run.failed() || self.shutdown.is_cancelled() || run.token.is_cancelled() {
            return self.complete_task(run);
        }
        let Some(Some(mr)) = run.members[member].get() else {
            // A shard task only exists because setup stored the member.
            run.fail(format!("member {member}: internal: shard before setup"));
            return self.complete_task(run);
        };
        let job_id = run.job.lock().expect("job slot poisoned").id;

        let on_settle = |index: usize, meas: &PairMeasurement| {
            let mut slots = mr.slots.lock().expect("member slots poisoned");
            slots[index] = Some(meas.clone());
            let settled = slots.iter().filter(|s| s.is_some()).count();
            if settled % self.config.checkpoint_every == 0 || settled == slots.len() {
                self.write_checkpoint(mr, &slots);
                // The settle hook doubles as the busy pool's cancellation
                // poll: markers and shutdown are honoured at the next
                // checkpoint boundary even when no worker is idle.
                if self.shutdown.is_cancelled() || self.queue.cancel_requested(job_id) {
                    run.token.cancel();
                }
            }
        };

        match mr.session.run_unit_with(&mr.prelude, unit, on_settle) {
            Ok(shard) => {
                let measured = shard
                    .pairs
                    .iter()
                    .filter(|(_, m)| !m.outcome.is_cancelled())
                    .count();
                if measured > 0 || !run.token.is_cancelled() {
                    let mut stats = self.stats.lock();
                    stats.shards_executed += 1;
                    stats.pairs_measured += measured;
                    drop(stats);
                    mr.shards_done.fetch_add(1, Ordering::SeqCst);
                    {
                        let slots = mr.slots.lock().expect("member slots poisoned");
                        self.write_checkpoint(mr, &slots);
                    }
                    self.update_ledger(run)?;
                }
            }
            Err(CoreError::Cancelled) => {}
            Err(e) => run.fail(format!("member {member}: {e}")),
        }
        self.complete_task(run)
    }

    /// Persist the member's settled slots as a resumable checkpoint,
    /// written with the same atomic rename discipline as the journal.
    /// Unsettled slots become `Cancelled` placeholders — exactly the
    /// partial-result shape `resume_from` validates.
    fn write_checkpoint(&self, mr: &MemberRun, slots: &[Option<PairMeasurement>]) {
        let pairs: Vec<(usize, PairMeasurement)> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|m| (i, m.clone())))
            .collect();
        let result = mr
            .session
            .merge_shards(&mr.prelude, vec![ShardResult { shard: 0, pairs }]);
        let doc = SpecCheckpoint {
            spec: mr.spec.clone(),
            result,
        };
        let _ = doc.save(&mr.ckpt_path);
    }

    /// Journal the job's shard ledger (pair/shard progress per member) so
    /// `queue status` can report in-flight progress without tailing the
    /// event feed.
    fn update_ledger(&self, run: &Arc<JobRun>) -> QueueResult<()> {
        let mut members = Vec::with_capacity(run.members.len());
        for slot in &run.members {
            match slot.get() {
                Some(Some(mr)) => {
                    let slots = mr.slots.lock().expect("member slots poisoned");
                    members.push(MemberLedger {
                        pairs_done: slots.iter().filter(|s| s.is_some()).count(),
                        pairs_total: slots.len(),
                        shards_done: mr.shards_done.load(Ordering::SeqCst),
                        shards_total: mr.shards_total,
                    });
                }
                _ => members.push(MemberLedger::default()),
            }
        }
        let job = {
            let mut job = run.job.lock().expect("job slot poisoned");
            job.ledger = Some(ShardLedger { members });
            job.clone()
        };
        let _guard = self.claim_lock.lock();
        let _flock = self.queue.lock_exclusive()?;
        self.queue.save(&job)?;
        Ok(())
    }

    /// Settle a job whose last task just completed. Exactly one worker
    /// gets here per job (the outstanding count hits zero once).
    fn finalize(&self, run: &Arc<JobRun>) -> QueueResult<()> {
        let mut job = run.job.lock().expect("job slot poisoned").clone();
        let failure = run.failure.lock().expect("failure slot poisoned").clone();
        let run_ids = job.run_ids();

        if let Some(error) = failure {
            job.state = JobState::Failed {
                error: error.clone(),
            };
            job.ledger = None;
            self.queue.save(&job)?;
            self.queue.clear_cancel_request(job.id)?;
            self.emit(QueueEvent::Failed { job: job.id, error });
            self.stats.lock().failed += 1;
            self.finish(job.id);
            return Ok(());
        }

        if self.shutdown.is_cancelled() {
            // Service shutdown: back to the queue; checkpoints (and the
            // ledger) resume the job on restart.
            job.state = JobState::Queued;
            self.queue.save(&job)?;
            self.emit(QueueEvent::Requeued { job: job.id });
            self.stats.lock().requeued += 1;
            self.finish(job.id);
            return Ok(());
        }

        if run.token.is_cancelled() {
            // User cancellation: settle as cancelled, drop state.
            job.state = JobState::Cancelled;
            job.ledger = None;
            self.queue.save(&job)?;
            self.queue.clear_checkpoints(&job)?;
            self.queue.clear_cancel_request(job.id)?;
            self.emit(QueueEvent::Cancelled { job: job.id });
            self.stats.lock().cancelled += 1;
            self.finish(job.id);
            return Ok(());
        }

        // Success: merge every member's slots back into canonical pair
        // order and auto-archive — the store becomes a memoization layer
        // for the whole service.
        let mut results = Vec::with_capacity(run.members.len());
        for (member, slot) in run.members.iter().enumerate() {
            let Some(Some(mr)) = slot.get() else {
                run.fail(format!("member {member}: internal: never built"));
                return self.finalize(run);
            };
            let pairs: Vec<(usize, PairMeasurement)> = {
                let slots = mr.slots.lock().expect("member slots poisoned");
                slots
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| s.as_ref().map(|m| (i, m.clone())))
                    .collect()
            };
            let result = mr
                .session
                .merge_shards(&mr.prelude, vec![ShardResult { shard: 0, pairs }]);
            let (completed, skipped, cancelled) =
                result
                    .pairs()
                    .iter()
                    .fold((0, 0, 0), |(c, s, x), p| match &p.outcome {
                        PairOutcome::Completed(_) => (c + 1, s, x),
                        PairOutcome::Cancelled => (c, s, x + 1),
                        _ => (c, s + 1, x),
                    });
            self.emit(QueueEvent::Progress {
                job: job.id,
                member,
                event: CampaignEvent::CampaignFinished {
                    completed,
                    skipped,
                    cancelled,
                },
            });
            results.push((mr.spec.clone(), result));
        }
        for (spec, result) in &results {
            self.store.put(spec, result)?;
        }
        self.queue.clear_checkpoints(&job)?;
        job.state = JobState::Done {
            run_ids: run_ids.clone(),
            via: CompletionVia::Executed,
        };
        job.ledger = None;
        self.emit(QueueEvent::Done {
            job: job.id,
            run_ids: run_ids.clone(),
        });
        self.stats.lock().executed += 1;
        self.settle_done(&job, &run_ids)?;
        self.finish(job.id);
        Ok(())
    }

    /// Count one finished task; the last one settles the job.
    fn complete_task(&self, run: &Arc<JobRun>) -> QueueResult<()> {
        if run.outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.finalize(run)?;
        }
        Ok(())
    }

    /// Whether every member spec's run is archived (validated). Absent,
    /// torn and tampered entries all fall through to re-execution — a bad
    /// archive file must never be served *or* wedge the worker.
    fn cache_hit(&self, job: &Job) -> QueueResult<bool> {
        for spec in job.members() {
            match self.store.get(&RunId::of_spec(spec)) {
                Ok(_) => {}
                Err(
                    StoreError::NotFound { .. }
                    | StoreError::Parse { .. }
                    | StoreError::Corrupt { .. },
                ) => return Ok(false),
                Err(e) => return Err(e.into()),
            }
        }
        Ok(true)
    }

    /// Journal a job's `Done` state and settle its still-queued
    /// duplicates in one step under the claim lock — a sibling worker
    /// must never observe the key released (job `Done`) while a duplicate
    /// is still claimable, or it would re-serve the duplicate from cache
    /// instead of coalescing it.
    fn settle_done(&self, job: &Job, run_ids: &[RunId]) -> QueueResult<()> {
        let settled = {
            let _guard = self.claim_lock.lock();
            let _flock = self.queue.lock_exclusive()?;
            self.queue.save(job)?;
            self.queue.settle_duplicates(&job.key(), run_ids, job.id)?
        };
        for dup in settled {
            self.queue.clear_checkpoints(&dup)?;
            self.emit(QueueEvent::Coalesced {
                job: dup.id,
                with: job.id,
            });
            self.stats.lock().coalesced += 1;
        }
        Ok(())
    }
}
