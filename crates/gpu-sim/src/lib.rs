//! A deterministic virtual-time GPU simulator — the hardware substrate for
//! the LATEST methodology reproduction.
//!
//! The paper measures switching latency on physical NVIDIA GPUs through the
//! only observable the methodology needs: *per-SM iteration timestamps whose
//! durations reflect the instantaneous SM frequency*. This crate produces
//! exactly that observable, from first principles:
//!
//! * [`freq`] — frequency ladders (the discrete clock steps NVML exposes);
//! * [`trajectory`] — the device's piecewise-constant frequency-vs-time
//!   curve, with exact integration of `work_cycles = ∫ f(t) dt` to turn a
//!   per-iteration cycle budget into start/end timestamps;
//! * [`transition`] — DVFS transition models: when a locked-clocks request
//!   reaches the device, how long it pends, and through which intermediate
//!   steps the clock ramps (the paper's "adaptation period"). Mixture models
//!   reproduce multi-cluster latency distributions;
//! * [`thermal`] — an RC thermal model plus a leakage-free power model,
//!   giving thermal/power throttling with queryable reasons (Sec. VI:
//!   LATEST checks throttle reasons every five passes);
//! * [`sm`] — the streaming-multiprocessor engine: iterations of a
//!   compute-bound microbenchmark with per-iteration noise and timer
//!   quantisation;
//! * [`device`] — [`device::GpuDevice`]: locked-clock requests, kernel
//!   launches, lazy in-order materialisation at synchronisation points,
//!   ground-truth transition records for closed-loop validation;
//! * [`devices`] — calibrated descriptors for the paper's three GPUs
//!   (RTX Quadro 6000, A100-SXM4, GH200) and per-unit manufacturing
//!   variation for the four-A100 experiment;
//! * [`noise`] — seeded samplers (normal, log-normal, mixtures) built on
//!   `rand` so every run is reproducible bit-for-bit.

pub mod device;
pub mod devices;
pub mod freq;
pub mod noise;
pub mod sm;
pub mod thermal;
pub mod trajectory;
pub mod transition;

pub use device::{GpuDevice, KernelConfig, KernelId, LaunchError, ThrottleReasons};
pub use devices::{DeviceSpec, GpuArchitecture};
pub use freq::{FreqLadder, FreqMhz};
pub use trajectory::FreqTrajectory;
pub use transition::{TransitionGroundTruth, TransitionModel, TransitionShape};
