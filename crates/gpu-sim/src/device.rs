//! The simulated GPU device: locked-clock requests, kernel execution,
//! throttling, and ground-truth bookkeeping.
//!
//! # Execution model
//!
//! The device is driven by the host-side façades (`latest-nvml-sim`,
//! `latest-cuda-sim`) in strict call order on the virtual timeline:
//!
//! * [`GpuDevice::apply_locked_clocks`] — a locked-clocks request *arrives*
//!   at the device (the façade has already paid bus/driver latency). The
//!   device samples its [`TransitionModel`](crate::transition::TransitionModel), extends the *requested*
//!   frequency trajectory with the pending/ramp/target breakpoints, and
//!   records a [`TransitionGroundTruth`].
//! * [`GpuDevice::enqueue_kernel`] — queues a kernel (single in-order
//!   stream, as LATEST uses).
//! * [`GpuDevice::synchronize`] — *materialises* every queued kernel:
//!   computes its start (after the previous kernel), overlays wake-up ramp,
//!   power cap and thermal throttling onto the requested trajectory, then
//!   integrates every simulated SM to produce iteration records.
//!
//! Materialisation at synchronisation points is exact for the LATEST call
//! pattern (launch → sleep → set-clocks → synchronize): every frequency
//! event affecting a kernel is known by the time the host waits for it.

use latest_sim_clock::{ClockView, SharedClock, SimDuration, SimTime};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::devices::DeviceSpec;
use crate::freq::FreqMhz;
use crate::sm::{self, IterRecord, MemView, WorkloadParams};
use crate::thermal::ThermalState;
use crate::trajectory::FreqTrajectory;
use crate::transition::TransitionGroundTruth;

/// Identifier of an enqueued kernel, unique per device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct KernelId(pub u64);

/// Launch-time errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaunchError {
    /// The kernel would request zero iterations.
    EmptyKernel,
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::EmptyKernel => write!(f, "kernel must run at least one iteration"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// Configuration of one benchmark kernel launch.
#[derive(Clone, Copy, Debug)]
pub struct KernelConfig {
    /// Iterations each SM executes.
    pub iters_per_sm: u32,
    /// The microbenchmark workload.
    pub workload: WorkloadParams,
    /// How many SM record streams to simulate and keep. `None` simulates
    /// every SM (hardware-faithful); campaigns reduce this because all SMs
    /// share one clock domain and their records are statistically
    /// interchangeable (documented fidelity trade-off).
    pub simulated_sms: Option<u32>,
}

/// Active clock-throttle reasons, mirroring the NVML reason bitmask LATEST
/// polls every five passes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ThrottleReasons {
    /// Board power limit clamps the requested clock (`SW_POWER_CAP`).
    pub sw_power_cap: bool,
    /// Junction temperature clamps the clock (`HW_THERMAL_SLOWDOWN`).
    pub hw_thermal_slowdown: bool,
    /// Nothing running; clocks dropped to idle (`GPU_IDLE`).
    pub gpu_idle: bool,
}

impl ThrottleReasons {
    /// Whether any throttle reason is active (idle excluded: LATEST's
    /// workload keeps the device busy, so idle is informational).
    pub fn any_throttling(&self) -> bool {
        self.sw_power_cap || self.hw_thermal_slowdown
    }

    /// NVML-style bitmask (values match `nvmlClocksThrottleReason*`).
    pub fn bits(&self) -> u64 {
        let mut b = 0u64;
        if self.gpu_idle {
            b |= 0x1; // nvmlClocksThrottleReasonGpuIdle
        }
        if self.sw_power_cap {
            b |= 0x4; // nvmlClocksThrottleReasonSwPowerCap
        }
        if self.hw_thermal_slowdown {
            b |= 0x40; // nvmlClocksThrottleReasonHwThermalSlowdown
        }
        b
    }
}

/// Per-kernel state.
#[derive(Debug)]
struct KernelState {
    id: KernelId,
    config: KernelConfig,
    enqueue: SimTime,
    /// Filled at materialisation.
    end: Option<SimTime>,
    records: Option<Vec<Vec<IterRecord>>>,
}

/// The simulated GPU.
pub struct GpuDevice {
    spec: DeviceSpec,
    timer: ClockView,
    /// The locked-clock plan: requested frequency over time, including
    /// pending/ramp segments of in-flight transitions.
    requested: FreqTrajectory,
    /// Sampled transition ground truths, in request order.
    transitions: Vec<TransitionGroundTruth>,
    /// The memory-clock plan: requested DRAM frequency over time, including
    /// in-flight memory transitions. Flat at the default memory P-state
    /// until the first locked-memory-clocks request.
    mem_requested: FreqTrajectory,
    /// Memory-domain transition ground truths, in request order.
    mem_transitions: Vec<TransitionGroundTruth>,
    /// Dedicated RNG for memory-domain transition sampling — its own stream,
    /// so core-only campaigns never consume from it and stay bit-identical.
    mem_rng: ChaCha8Rng,
    last_mem_arrival: SimTime,
    thermal: ThermalState,
    /// Device is busy (kernel running) until this instant.
    busy_until: SimTime,
    /// True while the thermal governor holds the clock at the cap.
    thermally_throttled: bool,
    kernels: Vec<KernelState>,
    rng: ChaCha8Rng,
    next_kernel: u64,
    last_arrival: SimTime,
    seed: u64,
}

impl GpuDevice {
    /// Create a device on the given shared clock. `seed` fixes every
    /// stochastic component of this unit.
    pub fn new(spec: DeviceSpec, seed: u64, clock: SharedClock) -> Self {
        let timer = ClockView::skewed(
            clock,
            spec.timer_offset_ns,
            spec.timer_drift_ppm,
            spec.timer_resolution,
        );
        let requested = FreqTrajectory::flat(spec.nominal_mhz.as_f64());
        let mem_requested = FreqTrajectory::flat(spec.mem_freq_mhz as f64);
        let thermal = ThermalState::equilibrium(&spec.thermal, SimTime::EPOCH);
        GpuDevice {
            spec,
            timer,
            requested,
            transitions: Vec::new(),
            mem_requested,
            mem_transitions: Vec::new(),
            mem_rng: ChaCha8Rng::seed_from_u64(seed ^ 0x11E1_0C1C),
            last_mem_arrival: SimTime::EPOCH,
            thermal,
            busy_until: SimTime::EPOCH,
            thermally_throttled: false,
            kernels: Vec::new(),
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xD3_5E_55_AA),
            next_kernel: 0,
            last_arrival: SimTime::EPOCH,
            seed,
        }
    }

    /// The device descriptor.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The device's globaltimer view.
    pub fn timer(&self) -> &ClockView {
        &self.timer
    }

    /// A locked-clocks request arrives. `host_call` is when the CPU invoked
    /// the driver; `arrival` is when the request reached the device.
    /// Returns the ladder-snapped target actually applied.
    pub fn apply_locked_clocks(
        &mut self,
        host_call: SimTime,
        arrival: SimTime,
        target: FreqMhz,
    ) -> FreqMhz {
        // Bus jitter never reorders requests on the device queue.
        let arrival = arrival.max(self.last_arrival);
        self.last_arrival = arrival;

        let target = self.spec.ladder.snap(target);
        let from_f = self.requested.freq_at(arrival);
        let from = self.spec.ladder.snap(FreqMhz(from_f.round() as u32));

        // A new request overrides the rest of any in-flight transition.
        self.requested.truncate_after(arrival);

        let shape = self
            .spec
            .transition
            .sample(from, target, &self.spec.ladder, &mut self.rng);
        let ramp_start = arrival + shape.pending;
        let mut t = ramp_start;
        for &(freq, dur) in &shape.ramp {
            self.requested.push(t, freq);
            t += dur;
        }
        self.requested.push(t, target.as_f64());
        self.transitions.push(TransitionGroundTruth {
            from,
            to: target,
            host_call,
            device_arrival: arrival,
            ramp_start,
            settled: t,
        });
        target
    }

    /// A locked-memory-clocks request arrives: the DRAM-domain twin of
    /// [`GpuDevice::apply_locked_clocks`], with its own ladder, transition
    /// model, and randomness stream. Returns the snapped target.
    pub fn apply_locked_mem_clocks(
        &mut self,
        host_call: SimTime,
        arrival: SimTime,
        target: FreqMhz,
    ) -> FreqMhz {
        let arrival = arrival.max(self.last_mem_arrival);
        self.last_mem_arrival = arrival;

        let target = self.spec.mem_ladder.snap(target);
        let from_f = self.mem_requested.freq_at(arrival);
        let from = self.spec.mem_ladder.snap(FreqMhz(from_f.round() as u32));

        self.mem_requested.truncate_after(arrival);

        let shape =
            self.spec
                .mem_transition
                .sample(from, target, &self.spec.mem_ladder, &mut self.mem_rng);
        let ramp_start = arrival + shape.pending;
        let mut t = ramp_start;
        for &(freq, dur) in &shape.ramp {
            self.mem_requested.push(t, freq);
            t += dur;
        }
        self.mem_requested.push(t, target.as_f64());
        self.mem_transitions.push(TransitionGroundTruth {
            from,
            to: target,
            host_call,
            device_arrival: arrival,
            ramp_start,
            settled: t,
        });
        target
    }

    /// The effective memory clock at `now` as a driver query would report
    /// (the memory domain has no idle drop: DRAM keeps its P-state).
    pub fn current_mem_clock(&self, now: SimTime) -> FreqMhz {
        let f = self.mem_requested.freq_at(now);
        self.spec.mem_ladder.snap(FreqMhz(f.round() as u32))
    }

    /// Memory-domain ground-truth transitions recorded so far.
    pub fn mem_transitions(&self) -> &[TransitionGroundTruth] {
        &self.mem_transitions
    }

    /// The most recent memory-domain ground-truth transition.
    pub fn last_mem_transition(&self) -> Option<&TransitionGroundTruth> {
        self.mem_transitions.last()
    }

    /// Queue a kernel; it will start once the previous kernel (if any)
    /// finishes, or at `enqueue`, whichever is later.
    pub fn enqueue_kernel(
        &mut self,
        enqueue: SimTime,
        config: KernelConfig,
    ) -> Result<KernelId, LaunchError> {
        if config.iters_per_sm == 0 {
            return Err(LaunchError::EmptyKernel);
        }
        let id = KernelId(self.next_kernel);
        self.next_kernel += 1;
        self.kernels.push(KernelState {
            id,
            config,
            enqueue,
            end: None,
            records: None,
        });
        Ok(id)
    }

    /// Wait for all queued kernels: materialise them in order and return the
    /// completion time (>= `now`).
    pub fn synchronize(&mut self, now: SimTime) -> SimTime {
        // Split borrows: take the kernel list, materialise, put back.
        let mut kernels = std::mem::take(&mut self.kernels);
        let mut completion = now;
        for k in kernels.iter_mut().filter(|k| k.end.is_none()) {
            let (records, end) = self.materialize(k.enqueue, &k.config);
            k.records = Some(records);
            k.end = Some(end);
            completion = completion.max(end);
        }
        self.kernels = kernels;
        completion
    }

    /// Fetch (and consume) the records of a finished kernel. `None` if the
    /// kernel is unknown, unfinished, or already taken.
    pub fn take_records(&mut self, id: KernelId) -> Option<Vec<Vec<IterRecord>>> {
        let k = self.kernels.iter_mut().find(|k| k.id == id)?;
        let recs = k.records.take();
        // Garbage-collect fully consumed kernels.
        self.kernels
            .retain(|k| k.records.is_some() || k.end.is_none());
        recs
    }

    /// Number of SM record streams a config will produce on this device.
    pub fn effective_sms(&self, config: &KernelConfig) -> u32 {
        config
            .simulated_sms
            .map(|n| n.min(self.spec.sm_count))
            .unwrap_or(self.spec.sm_count)
            .max(1)
    }

    /// Active throttle reasons at `now` (lazily advances the thermal state
    /// through any idle gap).
    pub fn throttle_reasons(&mut self, now: SimTime) -> ThrottleReasons {
        let idle = now > self.busy_until;
        if idle {
            let from = self.busy_until.max(self.thermal.at);
            if now > from {
                let mut th = self.thermal;
                th.at = th.at.max(from);
                th.advance(&self.spec.thermal, now, self.spec.power.idle_power());
                self.thermal = th;
                if self.thermal.temp_c < self.spec.thermal.release_temp_c {
                    self.thermally_throttled = false;
                }
            }
        }
        let requested_now = self.requested.freq_at(now);
        let cap = self
            .spec
            .power
            .power_cap(&self.spec.ladder, self.spec.thermal.tdp_w);
        let sw_power_cap = match cap {
            Some(c) => requested_now > c.as_f64() + 0.5,
            None => true,
        };
        ThrottleReasons {
            sw_power_cap,
            hw_thermal_slowdown: self.thermally_throttled
                || self.thermal.temp_c >= self.spec.thermal.throttle_temp_c,
            gpu_idle: idle,
        }
    }

    /// Junction temperature at `now` (advances idle cooling lazily).
    pub fn temperature(&mut self, now: SimTime) -> f64 {
        let _ = self.throttle_reasons(now);
        self.thermal.temp_c
    }

    /// The effective SM clock at `now` as a driver clock query would report:
    /// idle clock when nothing runs, otherwise the requested clock clamped
    /// by the power cap.
    pub fn current_sm_clock(&self, now: SimTime) -> FreqMhz {
        if now > self.busy_until && self.busy_until != SimTime::EPOCH {
            return self.spec.idle_mhz;
        }
        let f = self.requested.freq_at(now);
        let capped = match self
            .spec
            .power
            .power_cap(&self.spec.ladder, self.spec.thermal.tdp_w)
        {
            Some(c) => f.min(c.as_f64()),
            None => self.spec.ladder.min().as_f64(),
        };
        self.spec.ladder.snap(FreqMhz(capped.round() as u32))
    }

    /// Ground-truth transitions recorded so far (closed-loop validation).
    pub fn transitions(&self) -> &[TransitionGroundTruth] {
        &self.transitions
    }

    /// The most recent ground-truth transition.
    pub fn last_transition(&self) -> Option<&TransitionGroundTruth> {
        self.transitions.last()
    }

    // ----- materialisation internals -------------------------------------

    /// Materialise one kernel: build its effective trajectory and integrate
    /// every simulated SM. Returns (per-SM records, kernel end time).
    fn materialize(
        &mut self,
        enqueue: SimTime,
        config: &KernelConfig,
    ) -> (Vec<Vec<IterRecord>>, SimTime) {
        let start = enqueue.max(self.busy_until);

        // Cool through the idle gap before this kernel.
        let idle_from = self.thermal.at;
        if start > idle_from {
            self.thermal
                .advance(&self.spec.thermal, start, self.spec.power.idle_power());
            if self.thermal.temp_c < self.spec.thermal.release_temp_c {
                self.thermally_throttled = false;
            }
        }

        let was_idle_long = start.saturating_since(self.busy_until)
            >= self.spec.wakeup_idle_threshold
            || self.busy_until == SimTime::EPOCH;

        // The memory plan only matters to workloads with a DRAM stall; the
        // pure-arithmetic path never consults it (bit-for-bit the
        // single-domain engine).
        let mem_ref = self.spec.mem_freq_mhz as f64;
        let mem_draft = if config.workload.mem_stall_ns > 0.0 {
            Some(self.mem_requested.clone())
        } else {
            None
        };

        // Pass 1: effective trajectory without thermal events.
        let draft = self.effective_draft(start, was_idle_long);
        let est_end = sm::estimate_end(
            &draft,
            start,
            config.iters_per_sm,
            &config.workload,
            mem_draft.as_ref().map(|traj| MemView {
                traj,
                reference_mhz: mem_ref,
            }),
        );

        // Pass 2: insert thermal throttle events over a padded window, then
        // re-estimate (throttling only lengthens the run; two passes bound
        // the error well below an iteration).
        let pad = est_end.saturating_since(start).mul_f64(0.25) + SimDuration::from_millis(5);
        let (eff, toggles, final_state, throttled_at_end) =
            self.overlay_thermal(&draft, start, est_end + pad);
        // Thermal coupling into the memory domain: while the governor holds
        // the core at its thermal cap, the DRAM drops to its lowest P-state.
        let mem_eff = mem_draft.map(|d| {
            throttle_capped(
                &d,
                self.thermally_throttled,
                &toggles,
                self.spec.mem_ladder.min().as_f64(),
            )
        });
        let mem_view = mem_eff.as_ref().map(|traj| MemView {
            traj,
            reference_mhz: mem_ref,
        });
        let est_end =
            sm::estimate_end(&eff, start, config.iters_per_sm, &config.workload, mem_view);

        // Integrate every simulated SM with its own noise stream.
        let n_sms = self.effective_sms(config);
        let kernel_salt = self.next_kernel.wrapping_mul(0x9E37_79B9);
        let mut records = Vec::with_capacity(n_sms as usize);
        let mut end = est_end;
        for smi in 0..n_sms {
            let mut sm_rng = ChaCha8Rng::seed_from_u64(
                self.seed ^ kernel_salt ^ ((smi as u64) << 40) ^ 0x5A5A_1234,
            );
            let (recs, sm_end) = sm::run_sm(
                &eff,
                start,
                config.iters_per_sm,
                &config.workload,
                &self.timer,
                &mut sm_rng,
                mem_view,
            );
            end = end.max(sm_end);
            records.push(recs);
        }

        self.thermal = final_state;
        self.thermal.at = self.thermal.at.max(end);
        self.thermally_throttled = throttled_at_end;
        self.busy_until = end;
        (records, end)
    }

    /// Requested trajectory clamped by the power cap, with a wake-up ramp if
    /// the device was idle.
    fn effective_draft(&self, start: SimTime, was_idle_long: bool) -> FreqTrajectory {
        let cap = self
            .spec
            .power
            .power_cap(&self.spec.ladder, self.spec.thermal.tdp_w)
            .map(|f| f.as_f64())
            .unwrap_or(self.spec.ladder.min().as_f64());

        // The clamped locked-clock plan as a step function of time.
        let plan_breaks: Vec<(SimTime, f64)> = self
            .requested
            .segments()
            .iter()
            .map(|s| (s.start, s.freq_mhz.min(cap).max(1.0)))
            .collect();
        let plan_at = |t: SimTime| -> f64 {
            let idx = plan_breaks.partition_point(|&(bt, _)| bt <= t);
            plan_breaks[idx.saturating_sub(1)].1
        };

        // The wake-up governor as a step function: a fraction of the plan,
        // climbing from the idle clock in `steps` equal stages.
        let ramp_active = was_idle_long && self.spec.wakeup_ramp > SimDuration::ZERO;
        let steps = 6u64;
        let step_d = self.spec.wakeup_ramp / steps;
        let ramp_end = start + self.spec.wakeup_ramp;
        let idle_f = self.spec.idle_mhz.as_f64();
        let eff_at = |t: SimTime| -> f64 {
            let plan = plan_at(t);
            if !ramp_active || step_d == SimDuration::ZERO || t >= ramp_end {
                return plan;
            }
            let stage = (t.saturating_since(start).as_nanos() / step_d.as_nanos()).min(steps - 1);
            let a = (stage + 1) as f64 / steps as f64;
            (idle_f + (plan - idle_f) * a).min(plan).max(1.0)
        };

        // Evaluate at the union of plan breakpoints and ramp stage
        // boundaries — between those instants both step functions are flat.
        let mut points: Vec<SimTime> = plan_breaks
            .iter()
            .map(|&(bt, _)| bt)
            .filter(|&bt| bt > start)
            .collect();
        if ramp_active && step_d > SimDuration::ZERO {
            points.extend((1..=steps).map(|i| start + step_d * i));
        }
        points.sort();
        points.dedup();

        let mut eff = FreqTrajectory::flat(eff_at(start));
        for t in points {
            eff.push(t, eff_at(t));
        }
        eff
    }

    /// Walk `draft` over [start, horizon] inserting thermal throttle/release
    /// events. Returns the effective trajectory, the throttle toggle events
    /// (time, new state) for cross-domain coupling, the thermal state at the
    /// horizon, and whether the governor holds the cap at the horizon.
    fn overlay_thermal(
        &self,
        draft: &FreqTrajectory,
        start: SimTime,
        horizon: SimTime,
    ) -> (FreqTrajectory, Vec<(SimTime, bool)>, ThermalState, bool) {
        let params = &self.spec.thermal;
        let cap_f = params.throttle_cap_mhz;
        let mut state = self.thermal;
        state.at = start;
        let mut throttled = self.thermally_throttled;

        let mut out = FreqTrajectory::flat(effective_freq(draft.freq_at(start), throttled, cap_f));
        let mut toggles: Vec<(SimTime, bool)> = Vec::new();
        let mut t = start;
        let mut events = 0usize;
        const MAX_EVENTS: usize = 64;

        while t < horizon && events < MAX_EVENTS * 2 {
            let raw_f = draft.freq_at(t);
            let cur_f = effective_freq(raw_f, throttled, cap_f);
            let power = self.spec.power.busy_power(cur_f);
            let target_temp = if throttled {
                params.release_temp_c
            } else {
                params.throttle_temp_c
            };
            // Next draft breakpoint after t.
            let next_break = draft
                .segments()
                .iter()
                .map(|s| s.start)
                .find(|&s| s > t)
                .unwrap_or(horizon)
                .min(horizon);
            let crossing = state.time_to_reach(params, target_temp, power);
            match crossing {
                Some(dt) if events < MAX_EVENTS && t + dt < next_break => {
                    let ct = t + dt;
                    state.advance(params, ct, power);
                    throttled = !throttled;
                    events += 1;
                    t = ct;
                    toggles.push((t, throttled));
                    out.push(t, effective_freq(draft.freq_at(t), throttled, cap_f));
                }
                _ => {
                    state.advance(params, next_break, power);
                    t = next_break;
                    if t < horizon {
                        out.push(t, effective_freq(draft.freq_at(t), throttled, cap_f));
                    }
                }
            }
        }
        (out, toggles, state, throttled)
    }
}

/// Apply the thermal governor's hold intervals to the memory plan: while the
/// core is held at its thermal cap, the DRAM drops to `cap` (its lowest
/// P-state). `initial` is the throttle state at the first instant; `toggles`
/// are the state changes from [`GpuDevice::overlay_thermal`].
fn throttle_capped(
    plan: &FreqTrajectory,
    initial: bool,
    toggles: &[(SimTime, bool)],
    cap: f64,
) -> FreqTrajectory {
    let throttled_at = |t: SimTime| -> bool {
        let idx = toggles.partition_point(|&(tt, _)| tt <= t);
        if idx == 0 {
            initial
        } else {
            toggles[idx - 1].1
        }
    };
    let f_at = |t: SimTime| -> f64 {
        let f = plan.freq_at(t);
        if throttled_at(t) {
            f.min(cap).max(1.0)
        } else {
            f
        }
    };
    let mut points: Vec<SimTime> = plan.segments().iter().map(|s| s.start).collect();
    points.extend(toggles.iter().map(|&(t, _)| t));
    points.sort();
    points.dedup();
    let first = points.first().copied().unwrap_or(SimTime::EPOCH);
    let mut out = FreqTrajectory::flat(f_at(first));
    for t in points {
        out.push(t, f_at(t));
    }
    out
}

/// Clock after applying the thermal governor.
fn effective_freq(raw: f64, throttled: bool, cap_mhz: f64) -> f64 {
    if throttled {
        raw.min(cap_mhz).max(1.0)
    } else {
        raw.max(1.0)
    }
}

impl std::fmt::Debug for GpuDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuDevice")
            .field("name", &self.spec.name)
            .field("busy_until", &self.busy_until)
            .field("temp_c", &self.thermal.temp_c)
            .field("transitions", &self.transitions.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices;
    use crate::transition::FixedTransition;
    use std::sync::Arc;

    fn quiet_workload() -> WorkloadParams {
        WorkloadParams {
            work_cycles: 100_000.0,
            inter_iter_overhead_ns: 0,
            noise_rel_sigma: 0.0,
            spike_prob: 0.0,
            spike_scale: 1.0,
            mem_stall_ns: 0.0,
        }
    }

    /// A test device: exact timer, no wake-up, generous thermals, fixed
    /// 10 ms transitions.
    fn test_device(clock: SharedClock) -> GpuDevice {
        let mut spec = devices::a100_sxm4();
        spec.timer_resolution = SimDuration::from_nanos(1);
        spec.timer_offset_ns = 0;
        spec.timer_drift_ppm = 0.0;
        spec.wakeup_ramp = SimDuration::ZERO;
        spec.transition = Arc::new(FixedTransition {
            latency: SimDuration::from_millis(10),
        });
        GpuDevice::new(spec, 1, clock)
    }

    #[test]
    fn kernel_produces_frequency_consistent_records() {
        let clock = SharedClock::new();
        let mut dev = test_device(clock.clone());
        // Lock 1000 MHz well before launch (arrival at t=0 settles at 10ms).
        dev.apply_locked_clocks(SimTime::EPOCH, SimTime::EPOCH, FreqMhz(1005));
        // 1005 snaps to a ladder value (210 + 15k); 1005 = 210+795 -> yes.
        let t0 = SimTime::from_millis(50);
        let id = dev
            .enqueue_kernel(
                t0,
                KernelConfig {
                    iters_per_sm: 100,
                    workload: quiet_workload(),
                    simulated_sms: Some(2),
                },
            )
            .unwrap();
        let done = dev.synchronize(t0);
        let recs = dev.take_records(id).unwrap();
        assert_eq!(recs.len(), 2);
        for sm in &recs {
            assert_eq!(sm.len(), 100);
            for r in sm {
                // 100_000 cycles at 1005 MHz = 99502.48 ns
                let d = r.duration().as_nanos();
                assert!((d as f64 - 99_502.5).abs() < 2.0, "duration {d}");
            }
        }
        assert!(done > t0);
    }

    #[test]
    fn mid_kernel_transition_visible_in_records() {
        let clock = SharedClock::new();
        let mut dev = test_device(clock.clone());
        dev.apply_locked_clocks(SimTime::EPOCH, SimTime::EPOCH, FreqMhz(1410));
        let t0 = SimTime::from_millis(50);
        let id = dev
            .enqueue_kernel(
                t0,
                KernelConfig {
                    iters_per_sm: 3_000,
                    workload: quiet_workload(),
                    simulated_sms: Some(1),
                },
            )
            .unwrap();
        // Request 705 MHz mid-kernel: host calls at +60 ms, arrives +60.05 ms,
        // settles 10 ms later.
        let call = SimTime::from_millis(60);
        let arrival = call + SimDuration::from_micros(50);
        dev.apply_locked_clocks(call, arrival, FreqMhz(705));
        dev.synchronize(t0);
        let recs = dev.take_records(id).unwrap().remove(0);

        let fast_ns = 100_000.0 / 1.410;
        let slow_ns = 100_000.0 / 0.705;
        let settled = dev.transitions().last().unwrap().settled;
        for r in &recs {
            let d = r.duration().as_nanos() as f64;
            if r.end < arrival {
                assert!((d - fast_ns).abs() < 2.0, "pre-transition {d}");
            } else if r.start > settled {
                assert!((d - slow_ns).abs() < 2.0, "post-transition {d}");
            }
        }
        // There must be post-transition records at all.
        assert!(recs.iter().any(|r| r.start > settled));
    }

    #[test]
    fn ground_truth_switching_latency_is_request_to_settle() {
        let clock = SharedClock::new();
        let mut dev = test_device(clock);
        let call = SimTime::from_millis(5);
        let arrival = call + SimDuration::from_micros(30);
        dev.apply_locked_clocks(call, arrival, FreqMhz(705));
        let gt = dev.last_transition().unwrap();
        assert_eq!(
            gt.switching_latency(),
            SimDuration::from_micros(30) + SimDuration::from_millis(10)
        );
        assert_eq!(gt.transition_latency(), SimDuration::from_millis(10));
        assert_eq!(gt.to, FreqMhz(705));
    }

    #[test]
    fn override_inflight_transition() {
        let clock = SharedClock::new();
        let mut dev = test_device(clock);
        dev.apply_locked_clocks(SimTime::EPOCH, SimTime::EPOCH, FreqMhz(1410));
        // Second request arrives 2 ms later, well inside the 10 ms pending
        // window of the first: the first target must never materialise.
        let t2 = SimTime::from_millis(2);
        dev.apply_locked_clocks(t2, t2, FreqMhz(705));
        let settled = dev.last_transition().unwrap().settled;
        assert_eq!(
            dev.requested.freq_at(settled + SimDuration::from_millis(1)),
            705.0
        );
        // At t = 10.5 ms (when the first would have settled) the plan must
        // not be 1410.
        assert_ne!(
            dev.requested
                .freq_at(SimTime::from_millis(10) + SimDuration::from_micros(500)),
            1410.0
        );
    }

    #[test]
    fn in_order_kernel_queueing() {
        let clock = SharedClock::new();
        let mut dev = test_device(clock);
        dev.apply_locked_clocks(SimTime::EPOCH, SimTime::EPOCH, FreqMhz(1410));
        let cfg = KernelConfig {
            iters_per_sm: 1_000,
            workload: quiet_workload(),
            simulated_sms: Some(1),
        };
        let t0 = SimTime::from_millis(50);
        let a = dev.enqueue_kernel(t0, cfg).unwrap();
        let b = dev.enqueue_kernel(t0, cfg).unwrap();
        dev.synchronize(t0);
        let ra = dev.take_records(a).unwrap().remove(0);
        let rb = dev.take_records(b).unwrap().remove(0);
        assert!(rb.first().unwrap().start >= ra.last().unwrap().end);
    }

    #[test]
    fn take_records_consumes() {
        let clock = SharedClock::new();
        let mut dev = test_device(clock);
        let cfg = KernelConfig {
            iters_per_sm: 10,
            workload: quiet_workload(),
            simulated_sms: Some(1),
        };
        let id = dev.enqueue_kernel(SimTime::EPOCH, cfg).unwrap();
        dev.synchronize(SimTime::EPOCH);
        assert!(dev.take_records(id).is_some());
        assert!(dev.take_records(id).is_none());
        assert!(dev.take_records(KernelId(999)).is_none());
    }

    #[test]
    fn empty_kernel_rejected() {
        let clock = SharedClock::new();
        let mut dev = test_device(clock);
        let cfg = KernelConfig {
            iters_per_sm: 0,
            workload: quiet_workload(),
            simulated_sms: Some(1),
        };
        assert_eq!(
            dev.enqueue_kernel(SimTime::EPOCH, cfg).unwrap_err(),
            LaunchError::EmptyKernel
        );
    }

    #[test]
    fn power_cap_clamps_top_frequency() {
        let clock = SharedClock::new();
        let mut spec = devices::a100_sxm4();
        spec.timer_resolution = SimDuration::from_nanos(1);
        spec.wakeup_ramp = SimDuration::ZERO;
        spec.transition = Arc::new(FixedTransition {
            latency: SimDuration::from_micros(100),
        });
        spec.thermal.tdp_w = spec.power.busy_power(900.0); // cap near 900 MHz
        let mut dev = GpuDevice::new(spec, 1, clock);
        dev.apply_locked_clocks(SimTime::EPOCH, SimTime::EPOCH, FreqMhz(1410));
        let reasons = dev.throttle_reasons(SimTime::from_millis(1));
        assert!(reasons.sw_power_cap);
        // Records must reflect the capped clock, not 1410.
        let id = dev
            .enqueue_kernel(
                SimTime::from_millis(10),
                KernelConfig {
                    iters_per_sm: 50,
                    workload: quiet_workload(),
                    simulated_sms: Some(1),
                },
            )
            .unwrap();
        dev.synchronize(SimTime::from_millis(10));
        let recs = dev.take_records(id).unwrap().remove(0);
        let d = recs[10].duration().as_nanos() as f64;
        let implied_mhz = 100_000.0 / d * 1000.0;
        assert!(implied_mhz < 950.0, "implied {implied_mhz} MHz");
    }

    #[test]
    fn thermal_throttle_engages_and_reports() {
        let clock = SharedClock::new();
        let mut spec = devices::a100_sxm4();
        spec.timer_resolution = SimDuration::from_nanos(1);
        spec.wakeup_ramp = SimDuration::ZERO;
        spec.transition = Arc::new(FixedTransition {
            latency: SimDuration::from_micros(100),
        });
        // Aggressive thermals: tiny tau, low threshold -> throttles quickly.
        spec.thermal.tau_s = 0.02;
        spec.thermal.throttle_temp_c = 50.0;
        spec.thermal.release_temp_c = 45.0;
        spec.thermal.r_th = 0.2;
        spec.thermal.throttle_cap_mhz = 600.0;
        let mut dev = GpuDevice::new(spec, 1, clock);
        dev.apply_locked_clocks(SimTime::EPOCH, SimTime::EPOCH, FreqMhz(1410));
        let id = dev
            .enqueue_kernel(
                SimTime::from_millis(1),
                KernelConfig {
                    iters_per_sm: 3_000,
                    workload: quiet_workload(),
                    simulated_sms: Some(1),
                },
            )
            .unwrap();
        let done = dev.synchronize(SimTime::from_millis(1));
        let recs = dev.take_records(id).unwrap().remove(0);
        // Some late iterations must run at the 600 MHz cap.
        let slow = recs
            .iter()
            .filter(|r| {
                let implied = 100_000.0 / r.duration().as_nanos() as f64 * 1000.0;
                implied < 650.0
            })
            .count();
        assert!(slow > 0, "no thermally capped iterations observed");
        let reasons = dev.throttle_reasons(done);
        assert!(reasons.hw_thermal_slowdown);
    }

    #[test]
    fn idle_device_reports_idle_clock_and_cools() {
        let clock = SharedClock::new();
        let mut dev = test_device(clock);
        dev.apply_locked_clocks(SimTime::EPOCH, SimTime::EPOCH, FreqMhz(1410));
        let cfg = KernelConfig {
            iters_per_sm: 100,
            workload: quiet_workload(),
            simulated_sms: Some(1),
        };
        let id = dev.enqueue_kernel(SimTime::from_millis(20), cfg).unwrap();
        let done = dev.synchronize(SimTime::from_millis(20));
        let _ = dev.take_records(id);
        let later = done + SimDuration::from_secs(1);
        assert_eq!(dev.current_sm_clock(later), dev.spec().idle_mhz);
        let r = dev.throttle_reasons(later);
        assert!(r.gpu_idle);
        assert!(!r.any_throttling());
    }

    #[test]
    fn mid_kernel_memory_transition_visible_in_records() {
        let clock = SharedClock::new();
        let mut dev = test_device(clock.clone());
        // Fixed 10 ms transitions apply to the core model only; swap the
        // memory model too so the settle instant is deterministic.
        // (test_device leaves the A100 mem model in place — fine: we read
        // the ground truth back rather than assuming the latency.)
        dev.apply_locked_clocks(SimTime::EPOCH, SimTime::EPOCH, FreqMhz(1410));
        let mut wl = quiet_workload();
        wl.mem_stall_ns = 50_000.0; // 50 us of DRAM stall at 1215 MHz
        let t0 = SimTime::from_millis(50);
        let id = dev
            .enqueue_kernel(
                t0,
                KernelConfig {
                    iters_per_sm: 4_000,
                    workload: wl,
                    simulated_sms: Some(1),
                },
            )
            .unwrap();
        // Halve the DRAM clock mid-kernel.
        let call = SimTime::from_millis(90);
        let arrival = call + SimDuration::from_micros(50);
        let applied = dev.apply_locked_mem_clocks(call, arrival, FreqMhz(810));
        assert_eq!(applied, FreqMhz(810));
        dev.synchronize(t0);
        let recs = dev.take_records(id).unwrap().remove(0);

        let work_ns = 100_000.0 / 1.410;
        let fast_ns = work_ns + 50_000.0; // mem at the 1215 reference
        let slow_ns = work_ns + 50_000.0 * 1215.0 / 810.0;
        let settled = dev.last_mem_transition().unwrap().settled;
        for r in &recs {
            let d = r.duration().as_nanos() as f64;
            if r.end < arrival {
                assert!((d - fast_ns).abs() < 3.0, "pre-transition {d}");
            } else if r.start > settled {
                assert!((d - slow_ns).abs() < 3.0, "post-transition {d}");
            }
        }
        assert!(recs.iter().any(|r| r.start > settled));
        // The core-domain ground truth is untouched by memory requests.
        assert_eq!(dev.transitions().len(), 1);
        assert_eq!(dev.mem_transitions().len(), 1);
    }

    #[test]
    fn memory_requests_leave_core_only_records_unchanged() {
        // A memory transition must not perturb a pure-arithmetic kernel:
        // separate RNG stream, separate plan.
        let run = |with_mem: bool| {
            let clock = SharedClock::new();
            let mut dev = test_device(clock);
            dev.apply_locked_clocks(SimTime::EPOCH, SimTime::EPOCH, FreqMhz(1200));
            if with_mem {
                let t = SimTime::from_millis(10);
                dev.apply_locked_mem_clocks(t, t, FreqMhz(810));
            }
            let mut wl = quiet_workload();
            wl.noise_rel_sigma = 0.01;
            let cfg = KernelConfig {
                iters_per_sm: 300,
                workload: wl,
                simulated_sms: Some(2),
            };
            let id = dev.enqueue_kernel(SimTime::from_millis(30), cfg).unwrap();
            dev.synchronize(SimTime::from_millis(30));
            dev.take_records(id).unwrap()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn determinism_same_seed_same_records() {
        let run = || {
            let clock = SharedClock::new();
            let mut dev = test_device(clock);
            dev.apply_locked_clocks(SimTime::EPOCH, SimTime::EPOCH, FreqMhz(1200));
            let mut wl = quiet_workload();
            wl.noise_rel_sigma = 0.01;
            let cfg = KernelConfig {
                iters_per_sm: 500,
                workload: wl,
                simulated_sms: Some(3),
            };
            let id = dev.enqueue_kernel(SimTime::from_millis(30), cfg).unwrap();
            dev.synchronize(SimTime::from_millis(30));
            dev.take_records(id).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn wakeup_ramp_slows_first_iterations() {
        let clock = SharedClock::new();
        let mut spec = devices::a100_sxm4();
        spec.timer_resolution = SimDuration::from_nanos(1);
        spec.transition = Arc::new(FixedTransition {
            latency: SimDuration::from_micros(100),
        });
        spec.wakeup_ramp = SimDuration::from_millis(20);
        spec.wakeup_idle_threshold = SimDuration::from_millis(1);
        let mut dev = GpuDevice::new(spec, 1, clock);
        dev.apply_locked_clocks(SimTime::EPOCH, SimTime::EPOCH, FreqMhz(1410));
        let cfg = KernelConfig {
            iters_per_sm: 600,
            workload: quiet_workload(),
            simulated_sms: Some(1),
        };
        let id = dev.enqueue_kernel(SimTime::from_millis(100), cfg).unwrap();
        dev.synchronize(SimTime::from_millis(100));
        let recs = dev.take_records(id).unwrap().remove(0);
        let first = recs.first().unwrap().duration().as_nanos();
        let last = recs.last().unwrap().duration().as_nanos();
        assert!(
            first > last * 2,
            "first iteration ({first} ns) should be much slower than settled ({last} ns)"
        );
        // Settled iterations at the locked clock.
        let settled_ns = 100_000.0 / 1.410;
        assert!((last as f64 - settled_ns).abs() < 3.0);
    }
}
