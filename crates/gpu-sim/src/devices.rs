//! Device descriptors for the paper's three GPUs (Table I), with transition
//! models calibrated to the *shape* of the published results.
//!
//! | Model | RTX Quadro 6000 | A100-SXM4 | GH200 |
//! |---|---|---|---|
//! | Architecture | Turing | Ampere | Hopper |
//! | SMs | 72 | 108 | 132 |
//! | Mem freq (MHz) | 7001 | 1215 | 2619 |
//! | Max SM freq | 2100 | 1410 | 1980 |
//! | Nominal | 1440 | 1095 | 1980 |
//! | Min SM freq | 300* | 210 | 345 |
//! | Steps | 120 | 81 | 110 |
//!
//! *The Quadro's 120 steps of 15 MHz are modelled as 315–2100 (Table I lists
//! min 300 with 120 steps; 300–2100 at 15 MHz would be 121 — we keep the
//! step count authoritative).
//!
//! Calibration targets (all post-outlier-filter, from Table II / Fig. 3/4):
//!
//! * **A100**: worst-case latencies 7–23 ms, best-case ≈ 4.4–6 ms, tight and
//!   unimodal, decreasing transitions faster than increasing.
//! * **GH200**: baseline 5–6 ms; target columns ≈ 1260 and ≈ 1875 MHz slow
//!   (tens to hundreds of ms) with multi-cluster structure (up to 5
//!   clusters, Fig. 5); rare ≈ 450–480 ms extremes; ~85 % of pairs remain
//!   single-cluster.
//! * **RTX Quadro 6000**: regime decided mostly by the *target* frequency —
//!   a fast ≈ 20 ms family, a broad ≈ 135 ms family, and ≈ 238 ms columns
//!   (targets ≈ 930/990 MHz); highest pair-to-pair variability of the three;
//!   occasional ≈ 350 ms worst case.

use std::sync::Arc;

use latest_sim_clock::SimDuration;

use crate::freq::{FreqLadder, FreqMhz};
use crate::noise::{LatencyMixture, MixtureComponent};
use crate::thermal::{PowerModel, ThermalParams};
use crate::transition::{
    ArchTransitionModel, MinorityFlip, ModeSelection, RampPolicy, RareSpike, SlowTargetBand,
    TransitionModel,
};

/// GPU microarchitecture family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GpuArchitecture {
    /// RTX Quadro 6000.
    Turing,
    /// A100.
    Ampere,
    /// GH200 / H100.
    Hopper,
}

impl std::fmt::Display for GpuArchitecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuArchitecture::Turing => write!(f, "Turing"),
            GpuArchitecture::Ampere => write!(f, "Ampere"),
            GpuArchitecture::Hopper => write!(f, "Hopper"),
        }
    }
}

/// Driver-path timing profile consumed by the NVML façade: how long the
/// host-side call blocks, how long the request travels to the device, and
/// how often the driver stalls (producing the outlier measurements the
/// DBSCAN stage must filter).
#[derive(Clone, Debug)]
pub struct DriverProfile {
    /// Median host-side blocking time of a control call (µs).
    pub call_blocking_us: f64,
    /// Log-space sigma of the blocking time.
    pub call_blocking_sigma_ln: f64,
    /// Median request travel time host→device (µs): PCIe/NVLink + firmware
    /// ingestion.
    pub request_travel_us: f64,
    /// Log-space sigma of the travel time.
    pub request_travel_sigma_ln: f64,
    /// Probability that a control call hits a driver stall (lock contention,
    /// monitoring interference — the paper's outlier sources).
    pub stall_prob: f64,
    /// Added stall latency (ms).
    pub stall: LatencyMixture,
}

/// Full description of one simulated GPU unit.
#[derive(Clone)]
pub struct DeviceSpec {
    /// Marketing name.
    pub name: String,
    /// Architecture family.
    pub architecture: GpuArchitecture,
    /// Streaming-multiprocessor count.
    pub sm_count: u32,
    /// Memory clock (MHz) at the default memory P-state.
    pub mem_freq_mhz: u32,
    /// Reported driver version string.
    pub driver_version: &'static str,
    /// Selectable SM frequencies.
    pub ladder: FreqLadder,
    /// Selectable memory (DRAM) frequencies — the device's memory P-states.
    /// Always contains `mem_freq_mhz` (the default state the driver boots
    /// into and resets to).
    pub mem_ladder: FreqLadder,
    /// The memory-domain DVFS transition model. DRAM clock switches retrain
    /// the memory interface, so their latency dynamics are independent of
    /// (and typically slower than) the SM domain's.
    pub mem_transition: Arc<dyn TransitionModel>,
    /// Nominal (boost-base) SM frequency.
    pub nominal_mhz: FreqMhz,
    /// Idle SM clock the device falls back to without load.
    pub idle_mhz: FreqMhz,
    /// globaltimer read granularity (~1 µs on CUDA GPUs).
    pub timer_resolution: SimDuration,
    /// Device timer offset vs the host clock (ns): power-on skew.
    pub timer_offset_ns: i64,
    /// Device oscillator drift (ppm).
    pub timer_drift_ppm: f64,
    /// The DVFS transition model.
    pub transition: Arc<dyn TransitionModel>,
    /// Board power model.
    pub power: PowerModel,
    /// Thermal/throttle parameters.
    pub thermal: ThermalParams,
    /// Time to climb from idle to the requested clock after an idle period.
    pub wakeup_ramp: SimDuration,
    /// Idle gap beyond which the next kernel pays the wake-up ramp.
    pub wakeup_idle_threshold: SimDuration,
    /// Driver-path timing (used by the NVML façade).
    pub driver: DriverProfile,
}

impl DeviceSpec {
    /// The default memory clock as a [`FreqMhz`] (the P-state the driver
    /// resets to when memory locks are cleared).
    pub fn mem_default(&self) -> FreqMhz {
        FreqMhz(self.mem_freq_mhz)
    }
}

impl std::fmt::Debug for DeviceSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceSpec")
            .field("name", &self.name)
            .field("architecture", &self.architecture)
            .field("sm_count", &self.sm_count)
            .field("freq_range", &(self.ladder.min(), self.ladder.max()))
            .field("steps", &self.ladder.len())
            .field("mem_range", &(self.mem_ladder.min(), self.mem_ladder.max()))
            .finish()
    }
}

/// Memory-domain transition model shared in shape across the three devices:
/// retraining the DRAM interface is a pending-dominated event with a short
/// adaptation ramp and mild pair-to-pair texture.
fn mem_transition_model(
    up_ms: f64,
    down_ms: f64,
    jitter_ln: f64,
    pair_salt: u64,
) -> ArchTransitionModel {
    ArchTransitionModel {
        up: LatencyMixture::single(up_ms, 0.16),
        down: LatencyMixture::single(down_ms, 0.12),
        slow_bands: vec![],
        rare_spike: None,
        pair_jitter_ln: jitter_ln,
        mode_by: ModeSelection::Measurement,
        minority_flip: None,
        ramp: RampPolicy {
            fraction: 0.15,
            max_steps: 2,
        },
        unit_scale: 1.0,
        pair_salt,
    }
}

fn default_driver_profile() -> DriverProfile {
    DriverProfile {
        call_blocking_us: 120.0,
        call_blocking_sigma_ln: 0.25,
        request_travel_us: 40.0,
        request_travel_sigma_ln: 0.30,
        stall_prob: 0.015,
        stall: LatencyMixture::new(vec![
            MixtureComponent {
                weight: 0.7,
                median_ms: 12.0,
                sigma_ln: 0.5,
            },
            MixtureComponent {
                weight: 0.3,
                median_ms: 60.0,
                sigma_ln: 0.4,
            },
        ]),
    }
}

/// NVIDIA A100-SXM4: the best-behaved of the three — tight, fast, unimodal
/// transitions with a clear increase/decrease asymmetry.
pub fn a100_sxm4() -> DeviceSpec {
    let ladder = FreqLadder::arithmetic(210, 1410, 15);
    let transition = ArchTransitionModel {
        up: LatencyMixture::single(13.0, 0.18),
        down: LatencyMixture::single(5.2, 0.10),
        slow_bands: vec![],
        rare_spike: None,
        pair_jitter_ln: 0.08,
        mode_by: ModeSelection::Measurement,
        minority_flip: None,
        ramp: RampPolicy {
            fraction: 0.25,
            max_steps: 3,
        },
        unit_scale: 1.0,
        pair_salt: 0xA100,
    };
    DeviceSpec {
        name: "NVIDIA A100-SXM4-40GB".to_string(),
        architecture: GpuArchitecture::Ampere,
        sm_count: 108,
        mem_freq_mhz: 1215,
        driver_version: "550.54.15",
        ladder,
        // HBM2e P-states: the documented default 1215 MHz plus two reduced
        // states the driver exposes for power capping.
        mem_ladder: FreqLadder::from_steps(vec![FreqMhz(810), FreqMhz(1065), FreqMhz(1215)]),
        mem_transition: Arc::new(mem_transition_model(24.0, 10.0, 0.08, 0x0A10_03E3)),
        nominal_mhz: FreqMhz(1095),
        idle_mhz: FreqMhz(210),
        timer_resolution: SimDuration::from_micros(1),
        timer_offset_ns: 7_340_000,
        timer_drift_ppm: 2.5,
        transition: Arc::new(transition),
        power: PowerModel {
            idle_w: 55.0,
            dynamic_coeff: 210.0,
            v_min: 0.70,
            v_max: 1.05,
            f_min_mhz: 210.0,
            f_max_mhz: 1410.0,
        },
        thermal: ThermalParams {
            ambient_c: 30.0,
            r_th: 0.125,
            tau_s: 25.0,
            throttle_temp_c: 90.0,
            release_temp_c: 83.0,
            throttle_cap_mhz: 930.0,
            tdp_w: 400.0,
        },
        wakeup_ramp: SimDuration::from_millis(35),
        wakeup_idle_threshold: SimDuration::from_millis(10),
        driver: default_driver_profile(),
    }
}

/// One of the four A100 units of the EuroHPC Karolina node (Sec. VII-C).
/// Unit 0 is the nominal [`a100_sxm4`]; others carry small manufacturing
/// deviations in transition speed, pair texture, and timer skew.
pub fn a100_sxm4_unit(unit: usize) -> DeviceSpec {
    let mut spec = a100_sxm4();
    // Scales chosen so the spread of per-pair extremes is a few ms at worst
    // (Fig. 7: ranges of minima mostly < 0.5 ms; Fig. 8: maxima spread up to
    // ~12 ms on isolated pairs).
    let scales = [1.0, 0.965, 1.045, 1.015];
    let scale = scales[unit % scales.len()];
    spec.transition = Arc::new(a100_transition_with(scale, 0xA100 + unit as u64));
    spec.name = format!("NVIDIA A100-SXM4-40GB (unit {unit})");
    spec.timer_offset_ns += unit as i64 * 1_234_567;
    spec.timer_drift_ppm += unit as f64 * 0.7;
    spec
}

fn a100_transition_with(unit_scale: f64, pair_salt: u64) -> ArchTransitionModel {
    ArchTransitionModel {
        up: LatencyMixture::single(13.0, 0.18),
        down: LatencyMixture::single(5.2, 0.10),
        slow_bands: vec![],
        rare_spike: None,
        pair_jitter_ln: 0.08,
        mode_by: ModeSelection::Measurement,
        minority_flip: None,
        ramp: RampPolicy {
            fraction: 0.25,
            max_steps: 3,
        },
        unit_scale,
        pair_salt,
    }
}

/// GH200 (the Hopper GPU of the Grace Hopper superchip): mostly fast
/// (~5–6 ms), but specific target frequencies are slow and multi-modal, with
/// rare ~470 ms extremes (Fig. 3a/3b, Fig. 5).
pub fn gh200() -> DeviceSpec {
    let ladder = FreqLadder::arithmetic(345, 1980, 15);
    let transition = ArchTransitionModel {
        up: LatencyMixture::single(6.1, 0.16),
        down: LatencyMixture::single(5.7, 0.14),
        slow_bands: vec![
            // The ~1260 MHz column: strongly multi-modal when slow
            // (Fig. 5 shows five distinct clusters on 1770 -> 1260).
            SlowTargetBand {
                // Fig. 3b's column is a *band* around ~1260: it spans the
                // neighbouring ladder steps, so coarse sweep subsets (which
                // land on 1245 rather than 1260 exactly) still cross it.
                targets: vec![FreqMhz(1245), FreqMhz(1260), FreqMhz(1275)],
                probability: 0.38,
                // Tight modes (ln-σ 0.03): Fig. 5 shows distinct horizontal
                // bands; wider modes merge under Algorithm 3's
                // eps = 0.15 × quantile-range and the five-cluster
                // structure disappears.
                mixture: LatencyMixture::new(vec![
                    MixtureComponent {
                        weight: 0.30,
                        median_ms: 63.0,
                        sigma_ln: 0.03,
                    },
                    MixtureComponent {
                        weight: 0.25,
                        median_ms: 121.0,
                        sigma_ln: 0.03,
                    },
                    MixtureComponent {
                        weight: 0.20,
                        median_ms: 189.0,
                        sigma_ln: 0.03,
                    },
                    MixtureComponent {
                        weight: 0.25,
                        median_ms: 262.0,
                        sigma_ln: 0.03,
                    },
                ]),
            },
            // The ~1875 MHz column: consistently slow worst cases.
            SlowTargetBand {
                targets: vec![FreqMhz(1875)],
                probability: 0.45,
                mixture: LatencyMixture::new(vec![
                    MixtureComponent {
                        weight: 0.35,
                        median_ms: 55.0,
                        sigma_ln: 0.35,
                    },
                    MixtureComponent {
                        weight: 0.65,
                        median_ms: 272.0,
                        sigma_ln: 0.09,
                    },
                ]),
            },
        ],
        rare_spike: Some(RareSpike {
            probability: 0.004,
            mixture: LatencyMixture::single(440.0, 0.05),
        }),
        pair_jitter_ln: 0.10,
        mode_by: ModeSelection::Measurement,
        minority_flip: None,
        ramp: RampPolicy {
            fraction: 0.20,
            max_steps: 4,
        },
        unit_scale: 1.0,
        pair_salt: 0x61_4200,
    };
    DeviceSpec {
        name: "NVIDIA GH200 (Grace Hopper)".to_string(),
        architecture: GpuArchitecture::Hopper,
        sm_count: 132,
        mem_freq_mhz: 2619,
        driver_version: "545.23.08",
        ladder,
        // HBM3 P-states around the documented 2619 MHz default.
        mem_ladder: FreqLadder::from_steps(vec![FreqMhz(1593), FreqMhz(2106), FreqMhz(2619)]),
        mem_transition: Arc::new(mem_transition_model(14.0, 11.0, 0.10, 0x61_43E3)),
        nominal_mhz: FreqMhz(1980),
        idle_mhz: FreqMhz(345),
        timer_resolution: SimDuration::from_micros(1),
        timer_offset_ns: 11_870_000,
        timer_drift_ppm: -3.1,
        transition: Arc::new(transition),
        power: PowerModel {
            idle_w: 90.0,
            dynamic_coeff: 270.0,
            v_min: 0.68,
            v_max: 1.05,
            f_min_mhz: 345.0,
            f_max_mhz: 1980.0,
        },
        thermal: ThermalParams {
            ambient_c: 28.0,
            r_th: 0.075,
            tau_s: 30.0,
            throttle_temp_c: 90.0,
            release_temp_c: 84.0,
            throttle_cap_mhz: 1200.0,
            tdp_w: 700.0,
        },
        wakeup_ramp: SimDuration::from_millis(45),
        wakeup_idle_threshold: SimDuration::from_millis(10),
        driver: DriverProfile {
            // Grace <-> Hopper over NVLink-C2C: faster control path.
            call_blocking_us: 80.0,
            call_blocking_sigma_ln: 0.22,
            request_travel_us: 18.0,
            request_travel_sigma_ln: 0.25,
            stall_prob: 0.02,
            stall: LatencyMixture::new(vec![
                MixtureComponent {
                    weight: 0.6,
                    median_ms: 15.0,
                    sigma_ln: 0.5,
                },
                MixtureComponent {
                    weight: 0.4,
                    median_ms: 90.0,
                    sigma_ln: 0.5,
                },
            ]),
        },
    }
}

/// RTX Quadro 6000 (Turing): the wild one — the latency regime is decided
/// mostly by the *target* frequency (fast ≈ 20 ms columns, broad ≈ 135 ms
/// columns, ≈ 238 ms columns at ~930/990 MHz), with the highest overall
/// variability and occasional ≈ 350 ms events.
pub fn rtx_quadro_6000() -> DeviceSpec {
    let ladder = FreqLadder::arithmetic(315, 2100, 15);
    let transition = ArchTransitionModel {
        // Baseline regimes, ownership per *target* frequency.
        up: LatencyMixture::new(vec![
            MixtureComponent {
                weight: 0.28,
                median_ms: 20.5,
                sigma_ln: 0.10,
            },
            MixtureComponent {
                weight: 0.52,
                median_ms: 136.0,
                sigma_ln: 0.035,
            },
            MixtureComponent {
                weight: 0.12,
                median_ms: 75.0,
                sigma_ln: 0.30,
            },
            MixtureComponent {
                weight: 0.08,
                median_ms: 155.0,
                sigma_ln: 0.25,
            },
        ]),
        down: LatencyMixture::new(vec![
            MixtureComponent {
                weight: 0.34,
                median_ms: 19.5,
                sigma_ln: 0.10,
            },
            MixtureComponent {
                weight: 0.48,
                median_ms: 135.0,
                sigma_ln: 0.035,
            },
            MixtureComponent {
                weight: 0.10,
                median_ms: 70.0,
                sigma_ln: 0.30,
            },
            MixtureComponent {
                weight: 0.08,
                median_ms: 150.0,
                sigma_ln: 0.25,
            },
        ]),
        slow_bands: vec![SlowTargetBand {
            targets: vec![FreqMhz(930), FreqMhz(990)],
            probability: 0.92,
            mixture: LatencyMixture::new(vec![
                MixtureComponent {
                    weight: 0.85,
                    median_ms: 237.5,
                    sigma_ln: 0.012,
                },
                MixtureComponent {
                    weight: 0.15,
                    median_ms: 300.0,
                    sigma_ln: 0.10,
                },
            ]),
        }],
        rare_spike: Some(RareSpike {
            probability: 0.008,
            mixture: LatencyMixture::single(110.0, 0.45),
        }),
        pair_jitter_ln: 0.14,
        mode_by: ModeSelection::Target,
        // Sec. VII-B: ~30 % of Quadro pairs show a smaller secondary
        // cluster besides the column-owned regime.
        minority_flip: Some(MinorityFlip {
            pair_fraction: 0.30,
            flip_prob: 0.25,
        }),
        ramp: RampPolicy {
            fraction: 0.30,
            max_steps: 5,
        },
        unit_scale: 1.0,
        pair_salt: 0x6000,
    };
    DeviceSpec {
        name: "NVIDIA Quadro RTX 6000".to_string(),
        architecture: GpuArchitecture::Turing,
        sm_count: 72,
        mem_freq_mhz: 7001,
        driver_version: "530.41.03",
        ladder,
        // GDDR6 P-states: deep idle steps plus the high-rate states around
        // the documented 7001 MHz default. GDDR retraining is the slowest
        // memory switch of the three devices.
        mem_ladder: FreqLadder::from_steps(vec![
            FreqMhz(405),
            FreqMhz(810),
            FreqMhz(5001),
            FreqMhz(6251),
            FreqMhz(7001),
        ]),
        mem_transition: Arc::new(mem_transition_model(52.0, 41.0, 0.14, 0x60_3E3)),
        nominal_mhz: FreqMhz(1440),
        idle_mhz: FreqMhz(315),
        timer_resolution: SimDuration::from_micros(1),
        timer_offset_ns: 4_210_000,
        timer_drift_ppm: 5.8,
        transition: Arc::new(transition),
        power: PowerModel {
            idle_w: 25.0,
            dynamic_coeff: 88.0,
            v_min: 0.65,
            v_max: 1.10,
            f_min_mhz: 315.0,
            f_max_mhz: 2100.0,
        },
        thermal: ThermalParams {
            ambient_c: 32.0,
            r_th: 0.19,
            tau_s: 18.0,
            throttle_temp_c: 88.0,
            release_temp_c: 81.0,
            throttle_cap_mhz: 1050.0,
            tdp_w: 260.0,
        },
        wakeup_ramp: SimDuration::from_millis(60),
        wakeup_idle_threshold: SimDuration::from_millis(10),
        driver: DriverProfile {
            call_blocking_us: 180.0,
            call_blocking_sigma_ln: 0.35,
            request_travel_us: 60.0,
            request_travel_sigma_ln: 0.40,
            stall_prob: 0.025,
            stall: LatencyMixture::new(vec![
                MixtureComponent {
                    weight: 0.6,
                    median_ms: 20.0,
                    sigma_ln: 0.6,
                },
                MixtureComponent {
                    weight: 0.4,
                    median_ms: 80.0,
                    sigma_ln: 0.5,
                },
            ]),
        },
    }
}

/// All three paper devices, in Table I order.
pub fn paper_devices() -> Vec<DeviceSpec> {
    DeviceRegistry::builtin()
        .entries()
        .iter()
        .map(|e| e.make(0))
        .collect()
}

/// One named device family in a [`DeviceRegistry`]: a canonical short name
/// (the CLI/scenario key), optional aliases, a human description, and a
/// constructor covering the family's per-unit variants.
#[derive(Clone)]
pub struct DeviceEntry {
    name: String,
    aliases: Vec<String>,
    description: String,
    units: usize,
    make: Arc<dyn Fn(usize) -> DeviceSpec + Send + Sync>,
}

impl DeviceEntry {
    /// A single-unit entry.
    pub fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        make: impl Fn(usize) -> DeviceSpec + Send + Sync + 'static,
    ) -> Self {
        DeviceEntry {
            name: name.into(),
            aliases: Vec::new(),
            description: description.into(),
            units: 1,
            make: Arc::new(make),
        }
    }

    /// Add lookup aliases (matched case-insensitively, like the name).
    pub fn with_aliases(mut self, aliases: &[&str]) -> Self {
        self.aliases = aliases.iter().map(|a| a.to_string()).collect();
        self
    }

    /// Declare how many per-unit variants the constructor models.
    pub fn with_units(mut self, units: usize) -> Self {
        self.units = units.max(1);
        self
    }

    /// Canonical registry key.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Lookup aliases.
    pub fn aliases(&self) -> &[String] {
        &self.aliases
    }

    /// Human description for `list-devices` output.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Number of modelled per-unit variants (1 = single unit).
    pub fn units(&self) -> usize {
        self.units
    }

    /// Construct the spec for one unit (units beyond [`DeviceEntry::units`]
    /// wrap within the modelled variants, mirroring `a100_sxm4_unit`).
    pub fn make(&self, unit: usize) -> DeviceSpec {
        (self.make)(unit)
    }

    fn matches(&self, name: &str) -> bool {
        self.name.eq_ignore_ascii_case(name)
            || self.aliases.iter().any(|a| a.eq_ignore_ascii_case(name))
    }
}

impl std::fmt::Debug for DeviceEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceEntry")
            .field("name", &self.name)
            .field("aliases", &self.aliases)
            .field("units", &self.units)
            .finish()
    }
}

/// Named lookup over the modelled devices — the one place that maps scenario
/// and CLI device names to [`DeviceSpec`] constructors.
///
/// Replaces the hard-coded `a100 | gh200 | quadro` matches: lookups are by
/// canonical name or alias (case-insensitive), entries are enumerable for
/// error messages and `latest list-devices`, and downstream crates can
/// [`DeviceRegistry::register`] their own families next to the paper's
/// three (Table I order: `quadro`, `a100`, `gh200`).
#[derive(Clone, Debug)]
pub struct DeviceRegistry {
    entries: Vec<DeviceEntry>,
}

impl DeviceRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        DeviceRegistry {
            entries: Vec::new(),
        }
    }

    /// The paper's three GPUs, in Table I order.
    pub fn builtin() -> Self {
        let mut reg = DeviceRegistry::empty();
        reg.register(
            DeviceEntry::new(
                "quadro",
                "RTX Quadro 6000 (Turing): target-owned latency regimes, slow 930/990 MHz columns",
                |_| rtx_quadro_6000(),
            )
            .with_aliases(&["rtx6000", "quadro-rtx-6000"]),
        );
        reg.register(
            DeviceEntry::new(
                "a100",
                "A100-SXM4 (Ampere): tight unimodal transitions; 4 per-unit variants",
                |unit| {
                    if unit == 0 {
                        a100_sxm4()
                    } else {
                        a100_sxm4_unit(unit)
                    }
                },
            )
            .with_aliases(&["a100-sxm4"])
            .with_units(4),
        );
        reg.register(
            DeviceEntry::new(
                "gh200",
                "GH200 (Hopper): fast baseline, slow multi-modal 1260/1875 MHz target columns",
                |_| gh200(),
            )
            .with_aliases(&["grace-hopper"]),
        );
        reg
    }

    /// Add (or replace, by canonical name) an entry.
    pub fn register(&mut self, entry: DeviceEntry) {
        if let Some(existing) = self
            .entries
            .iter_mut()
            .find(|e| e.name.eq_ignore_ascii_case(&entry.name))
        {
            *existing = entry;
        } else {
            self.entries.push(entry);
        }
    }

    /// All entries, in registration order.
    pub fn entries(&self) -> &[DeviceEntry] {
        &self.entries
    }

    /// Canonical names, in registration order — the vocabulary quoted by
    /// unknown-device error messages.
    pub fn names(&self) -> Vec<String> {
        self.entries.iter().map(|e| e.name.clone()).collect()
    }

    /// Find an entry by canonical name or alias (case-insensitive).
    pub fn find(&self, name: &str) -> Option<&DeviceEntry> {
        self.entries.iter().find(|e| e.matches(name))
    }

    /// Construct the unit-0 spec of a named device.
    pub fn get(&self, name: &str) -> Option<DeviceSpec> {
        self.get_unit(name, 0)
    }

    /// Construct one unit of a named device. Unit selection mirrors the
    /// paper setup: families with per-unit variants (the A100) return the
    /// requested unit, single-unit families ignore the index.
    pub fn get_unit(&self, name: &str, unit: usize) -> Option<DeviceSpec> {
        self.find(name).map(|e| e.make(unit))
    }
}

impl Default for DeviceRegistry {
    fn default() -> Self {
        DeviceRegistry::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn table1_parameters() {
        let q = rtx_quadro_6000();
        assert_eq!(q.sm_count, 72);
        assert_eq!(q.ladder.len(), 120);
        assert_eq!(q.ladder.max(), FreqMhz(2100));
        assert_eq!(q.mem_freq_mhz, 7001);
        assert_eq!(q.mem_ladder.max(), FreqMhz(7001));

        let a = a100_sxm4();
        assert_eq!(a.sm_count, 108);
        assert_eq!(a.ladder.len(), 81);
        assert_eq!(a.ladder.min(), FreqMhz(210));
        assert_eq!(a.ladder.max(), FreqMhz(1410));
        assert_eq!(a.nominal_mhz, FreqMhz(1095));

        let g = gh200();
        assert_eq!(g.sm_count, 132);
        assert_eq!(g.ladder.len(), 110);
        assert_eq!(g.ladder.min(), FreqMhz(345));
        assert_eq!(g.ladder.max(), FreqMhz(1980));
        assert_eq!(g.nominal_mhz, FreqMhz(1980));

        assert_eq!(paper_devices().len(), 3);
    }

    #[test]
    fn mem_ladders_contain_documented_defaults() {
        // Table I's memory clocks are real ladder states: the driver boots
        // into (and resets to) the documented default on every device.
        for spec in paper_devices() {
            assert!(
                spec.mem_ladder.contains(spec.mem_default()),
                "{}: default mem clock {} not on the memory ladder",
                spec.name,
                spec.mem_freq_mhz
            );
            assert_eq!(spec.mem_ladder.max(), spec.mem_default());
            assert!(
                spec.mem_ladder.len() >= 3,
                "{}: mem ladder too small",
                spec.name
            );
        }
    }

    #[test]
    fn mem_transitions_slower_than_core_baseline() {
        // DRAM retraining dominates: the memory domain's median switch must
        // not undercut the core domain's fast path on the same device.
        let spec = rtx_quadro_6000();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut xs: Vec<f64> = (0..60)
            .map(|_| {
                spec.mem_transition
                    .sample(FreqMhz(810), FreqMhz(7001), &spec.mem_ladder, &mut rng)
                    .settle_duration()
                    .as_millis_f64()
            })
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!(
            median > 20.0,
            "GDDR6 retrain median {median:.1} ms too fast"
        );
    }

    #[test]
    fn no_power_cap_at_max_frequency() {
        // The paper sweeps the full ladder; the nominal TDP must admit the
        // top frequency or the tool would skip every pair involving it.
        for spec in paper_devices() {
            let cap = spec.power.power_cap(&spec.ladder, spec.thermal.tdp_w);
            assert_eq!(
                cap,
                Some(spec.ladder.max()),
                "{} power-caps below max",
                spec.name
            );
        }
    }

    #[test]
    fn no_thermal_throttle_at_steady_max() {
        // Steady-state busy temperature at max clock stays below the
        // throttle threshold (front-row GPUs, per the paper's setup).
        for spec in paper_devices() {
            let p = spec.power.busy_power(spec.ladder.max().as_f64());
            let t_ss = spec.thermal.steady_state_c(p);
            assert!(
                t_ss < spec.thermal.throttle_temp_c,
                "{}: steady {t_ss:.1} C >= throttle",
                spec.name
            );
        }
    }

    #[test]
    fn a100_latency_scale_matches_table2() {
        let spec = a100_sxm4();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut up_max: f64 = 0.0;
        let mut all_max: f64 = 0.0;
        let mut min: f64 = f64::INFINITY;
        for _ in 0..400 {
            let s = spec
                .transition
                .sample(FreqMhz(705), FreqMhz(1200), &spec.ladder, &mut rng)
                .settle_duration()
                .as_millis_f64();
            up_max = up_max.max(s);
            all_max = all_max.max(s);
            let d = spec
                .transition
                .sample(FreqMhz(1200), FreqMhz(705), &spec.ladder, &mut rng)
                .settle_duration()
                .as_millis_f64();
            min = min.min(d);
            all_max = all_max.max(d);
        }
        assert!(all_max < 35.0, "A100 worst case {all_max:.1} ms too large");
        assert!(min > 2.0 && min < 8.0, "A100 best case {min:.2} ms off");
        assert!(up_max > 10.0, "A100 increasing transitions too fast");
    }

    #[test]
    fn gh200_slow_columns_and_fast_baseline() {
        let spec = gh200();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        // Baseline pair: the bulk of samples well under 100 ms (rare ~440 ms
        // spikes are legitimate and get filtered by DBSCAN downstream, so
        // assert on the 95th percentile rather than the max).
        let mut base: Vec<f64> = (0..200)
            .map(|_| {
                spec.transition
                    .sample(FreqMhz(705), FreqMhz(1500), &spec.ladder, &mut rng)
                    .settle_duration()
                    .as_millis_f64()
            })
            .collect();
        base.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p95 = base[190];
        assert!(p95 < 60.0, "GH200 baseline p95 {p95:.1} ms");
        // Slow column 1260: slow samples must appear.
        let slow_hits = (0..200)
            .filter(|_| {
                spec.transition
                    .sample(FreqMhz(1095), FreqMhz(1260), &spec.ladder, &mut rng)
                    .settle_duration()
                    .as_millis_f64()
                    > 50.0
            })
            .count();
        assert!(
            slow_hits > 30,
            "GH200 1260-column slow path too rare: {slow_hits}"
        );
    }

    #[test]
    fn quadro_column_regimes() {
        let spec = rtx_quadro_6000();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // 930/990 targets: ~238 ms regime.
        let m930: f64 = (0..50)
            .map(|_| {
                spec.transition
                    .sample(FreqMhz(1440), FreqMhz(930), &spec.ladder, &mut rng)
                    .settle_duration()
                    .as_millis_f64()
            })
            .sum::<f64>()
            / 50.0;
        assert!(m930 > 180.0, "930-column mean {m930:.1} ms too low");
        // Column structure: for a fixed target, different inits land in the
        // same latency regime. Compare *medians*: the model deliberately
        // gives ~30 % of pairs a secondary minority cluster (Sec. VII-B)
        // and rare spikes, which shift a 30-sample mean but not the median
        // of the majority regime.
        let regime = |init: u32, target: u32, rng: &mut ChaCha8Rng| -> f64 {
            let mut xs: Vec<f64> = (0..30)
                .map(|_| {
                    spec.transition
                        .sample(FreqMhz(init), FreqMhz(target), &spec.ladder, rng)
                        .settle_duration()
                        .as_millis_f64()
                })
                .collect();
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            xs[xs.len() / 2]
        };
        for &t in &[750u32, 1170, 1440, 1650] {
            let a = regime(375, t, &mut rng);
            let b = regime(2085, t, &mut rng);
            let ratio = a.max(b) / a.min(b);
            assert!(
                ratio < 2.0,
                "target {t}: init changes regime ({a:.1} vs {b:.1})"
            );
        }
    }

    #[test]
    fn registry_lookup_matches_free_functions() {
        let reg = DeviceRegistry::builtin();
        assert_eq!(reg.names(), vec!["quadro", "a100", "gh200"]);
        assert_eq!(reg.get("a100").unwrap().name, a100_sxm4().name);
        assert_eq!(reg.get("gh200").unwrap().name, gh200().name);
        assert_eq!(reg.get("quadro").unwrap().name, rtx_quadro_6000().name);
        // Aliases and case-insensitivity.
        assert_eq!(reg.get("A100-SXM4").unwrap().name, a100_sxm4().name);
        assert_eq!(reg.get("Grace-Hopper").unwrap().name, gh200().name);
        assert!(reg.get("h100").is_none());
        // Per-unit variants mirror the CLI's historical behaviour: unit 0 is
        // the nominal device, others the perturbed units.
        assert_eq!(reg.get_unit("a100", 0).unwrap().name, a100_sxm4().name);
        assert_eq!(
            reg.get_unit("a100", 2).unwrap().name,
            a100_sxm4_unit(2).name
        );
        // Single-unit families ignore the index.
        assert_eq!(reg.get_unit("gh200", 3).unwrap().name, gh200().name);
        assert_eq!(reg.find("a100").unwrap().units(), 4);
    }

    #[test]
    fn registry_register_replaces_by_name() {
        let mut reg = DeviceRegistry::builtin();
        reg.register(DeviceEntry::new("a100", "custom override", |_| gh200()));
        assert_eq!(reg.entries().len(), 3);
        assert_eq!(reg.get("a100").unwrap().name, gh200().name);
        reg.register(DeviceEntry::new("h100", "new family", |_| gh200()));
        assert_eq!(reg.entries().len(), 4);
        assert!(reg.get("h100").is_some());
    }

    #[test]
    fn paper_devices_come_from_the_registry() {
        let names: Vec<String> = paper_devices().into_iter().map(|d| d.name).collect();
        assert_eq!(
            names,
            vec![
                "NVIDIA Quadro RTX 6000",
                "NVIDIA A100-SXM4-40GB",
                "NVIDIA GH200 (Grace Hopper)"
            ]
        );
    }

    #[test]
    fn a100_units_differ_but_mildly() {
        let u0 = a100_sxm4_unit(0);
        let u2 = a100_sxm4_unit(2);
        let mean = |spec: &DeviceSpec, seed: u64| -> f64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..300)
                .map(|_| {
                    spec.transition
                        .sample(FreqMhz(705), FreqMhz(1200), &spec.ladder, &mut rng)
                        .settle_duration()
                        .as_millis_f64()
                })
                .sum::<f64>()
                / 300.0
        };
        let m0 = mean(&u0, 9);
        let m2 = mean(&u2, 9);
        let rel = (m0 - m2).abs() / m0;
        assert!(rel > 0.005, "units indistinguishable");
        assert!(rel < 0.15, "units too different: {rel}");
    }
}
