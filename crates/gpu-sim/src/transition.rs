//! DVFS transition models: what happens inside the device between receiving
//! a locked-clocks request and stably running at the target frequency.
//!
//! The paper's measured behaviour that these models must reproduce:
//!
//! * latencies are **pair-dependent and asymmetric** (Table II: A100 best
//!   case ≈ 5 ms decreasing vs ≈ 15 ms increasing worst case),
//! * the **target frequency dominates** — heatmaps show column/row patterns
//!   where specific target frequencies are consistently slow (Fig. 3),
//! * distributions are **multi-modal** for some pairs (Fig. 5: up to five
//!   clusters on GH200) and tight for others (Fig. 6),
//! * rare extreme events occur (GH200's 477 ms worst case),
//! * there is an **adaptation period** during which the clock may sit at
//!   intermediate values (Sec. IV: "execution time ... might correspond to
//!   any frequency value"), modelled as a ramp through ladder steps.
//!
//! A transition sample is a [`TransitionShape`]: a *pending* interval at the
//! old frequency followed by a ramp of (frequency, duration) steps ending at
//! the target. The device applies shapes to its frequency trajectory and
//! records [`TransitionGroundTruth`] so the closed-loop tests can check that
//! the LATEST tool recovers what the silicon actually did.

use latest_sim_clock::{SimDuration, SimTime};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::freq::{FreqLadder, FreqMhz};
use crate::noise::LatencyMixture;

/// One sampled transition: hold the old clock for `pending`, then walk the
/// `ramp` (each entry holds `freq_mhz` for `dur`), then run at the target.
#[derive(Clone, Debug)]
pub struct TransitionShape {
    /// Time at the initial frequency after the request is accepted.
    pub pending: SimDuration,
    /// Intermediate (frequency, duration) steps — the adaptation period.
    pub ramp: Vec<(f64, SimDuration)>,
}

impl TransitionShape {
    /// A pure-pending shape with no adaptation ramp.
    pub fn pending_only(pending: SimDuration) -> Self {
        TransitionShape {
            pending,
            ramp: Vec::new(),
        }
    }

    /// Total time from acceptance to stable target frequency.
    pub fn settle_duration(&self) -> SimDuration {
        self.ramp.iter().fold(self.pending, |acc, (_, d)| acc + *d)
    }
}

/// Ground truth for one transition, recorded by the device. `None` fields
/// never occur; all timestamps are on the *global* virtual timeline.
#[derive(Clone, Copy, Debug)]
pub struct TransitionGroundTruth {
    /// Frequency before the request.
    pub from: FreqMhz,
    /// Requested target frequency (post-snap).
    pub to: FreqMhz,
    /// When the host invoked the driver call.
    pub host_call: SimTime,
    /// When the request reached the device (after bus + driver latency).
    pub device_arrival: SimTime,
    /// When the clock first left the initial frequency.
    pub ramp_start: SimTime,
    /// When the clock stably reached the target.
    pub settled: SimTime,
}

impl TransitionGroundTruth {
    /// The quantity the paper calls *switching latency*: host request to
    /// stable target frequency.
    pub fn switching_latency(&self) -> SimDuration {
        self.settled.saturating_since(self.host_call)
    }

    /// The *transition latency* (device-internal part only).
    pub fn transition_latency(&self) -> SimDuration {
        self.settled.saturating_since(self.device_arrival)
    }
}

/// A DVFS transition model: sample the shape of one `from → to` transition.
pub trait TransitionModel: Send + Sync {
    /// Sample a transition shape. `rng` is the device's measurement-to-
    /// measurement randomness stream; models derive any *per-pair* fixed
    /// character deterministically from the pair itself so heatmap structure
    /// is stable across repetitions.
    fn sample(
        &self,
        from: FreqMhz,
        to: FreqMhz,
        ladder: &FreqLadder,
        rng: &mut dyn RngCore,
    ) -> TransitionShape;
}

/// Constant-latency model for closed-loop validation: the ground truth is
/// exactly `latency` on every pair, so the measured value must match it.
#[derive(Clone, Copy, Debug)]
pub struct FixedTransition {
    /// The pending duration applied to every transition.
    pub latency: SimDuration,
}

impl TransitionModel for FixedTransition {
    fn sample(
        &self,
        _from: FreqMhz,
        _to: FreqMhz,
        _ladder: &FreqLadder,
        _rng: &mut dyn RngCore,
    ) -> TransitionShape {
        TransitionShape::pending_only(self.latency)
    }
}

/// A set of target frequencies with anomalously slow transitions (the
/// high-latency *columns* visible in the paper's heatmaps), hit with a given
/// probability per measurement (making min low but max high, as in Fig. 3a
/// vs 3b for GH200).
#[derive(Clone, Debug)]
pub struct SlowTargetBand {
    /// Ladder values this band applies to (exact match on the target).
    pub targets: Vec<FreqMhz>,
    /// Probability that a given transition into the band takes the slow path.
    pub probability: f64,
    /// Latency distribution of the slow path (ms).
    pub mixture: LatencyMixture,
}

/// Rare extreme events (driver re-initialisation, firmware hiccups) that
/// produce the far tail of the worst-case heatmaps.
#[derive(Clone, Debug)]
pub struct RareSpike {
    /// Per-measurement probability.
    pub probability: f64,
    /// Added latency when the spike hits (ms).
    pub mixture: LatencyMixture,
}

/// How much of a transition is spent ramping through intermediate ladder
/// steps (the adaptation period) rather than pending at the old clock.
#[derive(Clone, Copy, Debug)]
pub struct RampPolicy {
    /// Fraction of the sampled latency assigned to the ramp (0 disables).
    pub fraction: f64,
    /// Upper bound on intermediate steps taken.
    pub max_steps: usize,
}

/// Secondary-regime leakage for owned-mode models: on a deterministic
/// fraction of pairs, each measurement has a chance of escaping the owner's
/// component choice and drawing the baseline mixture freely. This produces
/// the paper's Sec. VII-B observation that a minority of pairs shows "a
/// large cluster ... sometimes with another smaller cluster" even on
/// architectures whose latency regime is otherwise fixed per target column.
#[derive(Clone, Copy, Debug)]
pub struct MinorityFlip {
    /// Fraction of ordered pairs affected (chosen deterministically per
    /// pair, so the same pairs flip across campaigns).
    pub pair_fraction: f64,
    /// Per-measurement probability of escaping the owned mode.
    pub flip_prob: f64,
}

/// Which entity "owns" the choice of mixture mode for a transition.
///
/// * `Measurement` — re-drawn every transition: the same pair exhibits
///   multiple latency clusters over repeated measurements (GH200, Fig. 5).
/// * `Pair` — fixed per (init, target) pair: each heatmap cell has a stable
///   personality but neighbours differ.
/// * `Target` — fixed per target frequency: whole heatmap *columns* share a
///   latency regime (RTX Quadro 6000, Fig. 3d — the paper notes "the target
///   frequency has a much higher impact (visible row pattern)").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModeSelection {
    /// Mode re-drawn per measurement.
    Measurement,
    /// Mode fixed per ordered frequency pair.
    Pair,
    /// Mode fixed per target frequency.
    Target,
}

/// The parametric per-architecture model used by the device descriptors.
#[derive(Clone, Debug)]
pub struct ArchTransitionModel {
    /// Baseline latency when increasing frequency (ms).
    pub up: LatencyMixture,
    /// Baseline latency when decreasing frequency (ms).
    pub down: LatencyMixture,
    /// Slow target-frequency bands.
    pub slow_bands: Vec<SlowTargetBand>,
    /// Rare extreme spikes.
    pub rare_spike: Option<RareSpike>,
    /// Log-space sigma of the fixed per-pair character factor. Larger values
    /// give rougher heatmaps (RTX Quadro) vs smooth ones (A100).
    pub pair_jitter_ln: f64,
    /// Who owns the baseline mixture's mode choice (see [`ModeSelection`]).
    pub mode_by: ModeSelection,
    /// Secondary-regime leakage (None = owned modes are absolute).
    pub minority_flip: Option<MinorityFlip>,
    /// Adaptation-period policy.
    pub ramp: RampPolicy,
    /// Per-unit manufacturing scale (1.0 = nominal; the four-A100 experiment
    /// instantiates units at e.g. 0.93–1.08).
    pub unit_scale: f64,
    /// Salt mixed into the per-pair character derivation so different
    /// architectures (and units) get different pair textures.
    pub pair_salt: u64,
}

impl ArchTransitionModel {
    /// The fixed multiplicative character of a pair: a deterministic
    /// log-normal factor derived from (salt, from, to). Keeps each heatmap
    /// cell's personality stable across the hundreds of repeated
    /// measurements while varying across cells.
    fn pair_factor(&self, from: FreqMhz, to: FreqMhz) -> f64 {
        if self.pair_jitter_ln == 0.0 {
            return 1.0;
        }
        let seed = self
            .pair_salt
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((from.0 as u64) << 32 | to.0 as u64);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        crate::noise::LogNormal::from_median(1.0, self.pair_jitter_ln).sample(&mut rng)
    }

    /// Whether/which slow band applies to `to`.
    fn slow_band(&self, to: FreqMhz) -> Option<&SlowTargetBand> {
        self.slow_bands.iter().find(|b| b.targets.contains(&to))
    }

    /// Deterministic per-pair uniform value in `[0, 1)` (independent of the
    /// pair-factor stream).
    fn pair_unit(&self, from: FreqMhz, to: FreqMhz, salt: u64) -> f64 {
        let seed = self
            .pair_salt
            .wrapping_mul(salt)
            .wrapping_add(((from.0 as u64) << 32) | to.0 as u64);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        rng.gen::<f64>()
    }

    /// The RNG stream that owns mode choices for this transition under the
    /// configured [`ModeSelection`]. `None` means the measurement stream.
    fn mode_rng(&self, from: FreqMhz, to: FreqMhz) -> Option<ChaCha8Rng> {
        let seed = match self.mode_by {
            ModeSelection::Measurement => return None,
            ModeSelection::Pair => self
                .pair_salt
                .wrapping_mul(0xA076_1D64_78BD_642F)
                .wrapping_add(((from.0 as u64) << 32) | to.0 as u64),
            ModeSelection::Target => self
                .pair_salt
                .wrapping_mul(0xE703_7ED1_A0B4_28DB)
                .wrapping_add(to.0 as u64),
        };
        Some(ChaCha8Rng::seed_from_u64(seed))
    }
}

impl TransitionModel for ArchTransitionModel {
    fn sample(
        &self,
        from: FreqMhz,
        to: FreqMhz,
        ladder: &FreqLadder,
        rng: &mut dyn RngCore,
    ) -> TransitionShape {
        if from == to {
            // A no-op request still costs a little firmware handling.
            return TransitionShape::pending_only(SimDuration::from_micros(200));
        }

        // 1. Baseline by direction; the mixture *mode* may be owned by the
        //    pair or the target (stable heatmap structure) while the value
        //    within the mode varies per measurement.
        let base = if to > from { &self.up } else { &self.down };
        let mut latency_ms = match self.mode_rng(from, to) {
            Some(mut owner) => {
                // Secondary-regime leakage: selected pairs occasionally
                // escape the owned mode (re-drawing freely), forming the
                // smaller secondary clusters of Sec. VII-B. The RNG draw
                // happens only on affected pairs so unaffected devices and
                // pairs keep their random streams unchanged.
                let flips = self.minority_flip.as_ref().is_some_and(|f| {
                    self.pair_unit(from, to, 0xF11B_5EED_0000_0001) < f.pair_fraction
                        && rng.gen::<f64>() < f.flip_prob
                });
                if flips {
                    base.sample_ms(rng)
                } else {
                    let idx = base.pick_component(&mut owner);
                    base.sample_component_ms(idx, rng)
                }
            }
            None => base.sample_ms(rng),
        };

        // 2. Slow target band may replace the baseline.
        if let Some(band) = self.slow_band(to) {
            if rng.gen::<f64>() < band.probability {
                latency_ms = band.mixture.sample_ms(rng);
            }
        }

        // 3. Fixed per-pair character.
        latency_ms *= self.pair_factor(from, to);

        // 4. Rare extreme spike.
        if let Some(spike) = &self.rare_spike {
            if rng.gen::<f64>() < spike.probability {
                latency_ms += spike.mixture.sample_ms(rng);
            }
        }

        // 5. Per-unit manufacturing scale.
        latency_ms *= self.unit_scale;
        let total = SimDuration::from_millis_f64(latency_ms.max(0.05));

        // 6. Split into pending + adaptation ramp through ladder steps.
        let mids = ladder.between(from, to);
        let steps = mids.len().min(self.ramp.max_steps);
        if steps == 0 || self.ramp.fraction <= 0.0 {
            return TransitionShape::pending_only(total);
        }
        let ramp_total = total.mul_f64(self.ramp.fraction.min(0.9));
        let pending = total - ramp_total;
        let per_step = ramp_total / steps as u64;
        if per_step == SimDuration::ZERO {
            return TransitionShape::pending_only(total);
        }
        // Take evenly spaced intermediate frequencies along the path.
        let ramp: Vec<(f64, SimDuration)> = (0..steps)
            .map(|i| {
                let idx = (i + 1) * mids.len() / (steps + 1);
                let idx = idx.min(mids.len() - 1);
                (mids[idx].as_f64(), per_step)
            })
            .collect();
        TransitionShape { pending, ramp }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::MixtureComponent;

    fn ladder() -> FreqLadder {
        FreqLadder::arithmetic(210, 1410, 15)
    }

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn simple_model() -> ArchTransitionModel {
        ArchTransitionModel {
            up: LatencyMixture::single(15.0, 0.1),
            down: LatencyMixture::single(5.0, 0.05),
            slow_bands: vec![SlowTargetBand {
                targets: vec![FreqMhz(990)],
                probability: 1.0,
                mixture: LatencyMixture::single(240.0, 0.02),
            }],
            rare_spike: None,
            pair_jitter_ln: 0.0,
            mode_by: ModeSelection::Measurement,
            minority_flip: None,
            ramp: RampPolicy {
                fraction: 0.3,
                max_steps: 4,
            },
            unit_scale: 1.0,
            pair_salt: 7,
        }
    }

    #[test]
    fn target_mode_selection_gives_column_structure() {
        // Bimodal base with very separated modes; Target ownership must make
        // every transition into the same target land in the same mode.
        let mut m = simple_model();
        m.slow_bands.clear();
        m.ramp = RampPolicy {
            fraction: 0.0,
            max_steps: 0,
        };
        m.up = LatencyMixture::new(vec![
            MixtureComponent {
                weight: 0.5,
                median_ms: 20.0,
                sigma_ln: 0.02,
            },
            MixtureComponent {
                weight: 0.5,
                median_ms: 136.0,
                sigma_ln: 0.02,
            },
        ]);
        m.down = m.up.clone();
        m.mode_by = ModeSelection::Target;
        let l = ladder();
        let mut r = rng(11);
        // For a fixed target, the mode must be identical across inits and
        // across repeats.
        for &to in &[FreqMhz(900), FreqMhz(1200)] {
            let mut modes = std::collections::HashSet::new();
            for &from in &[FreqMhz(300), FreqMhz(600), FreqMhz(1410)] {
                for _ in 0..20 {
                    let ms = m
                        .sample(from, to, &l, &mut r)
                        .settle_duration()
                        .as_millis_f64();
                    modes.insert(if ms < 60.0 { "fast" } else { "slow" });
                }
            }
            assert_eq!(modes.len(), 1, "target {to:?} mixed modes");
        }
        // And across targets both modes must eventually appear.
        let mut seen = std::collections::HashSet::new();
        for &to in ladder().steps() {
            let ms = m
                .sample(FreqMhz(210), to, &l, &mut r)
                .settle_duration()
                .as_millis_f64();
            if to != FreqMhz(210) {
                seen.insert(if ms < 60.0 { "fast" } else { "slow" });
            }
        }
        assert_eq!(seen.len(), 2, "both modes should occur across targets");
    }

    #[test]
    fn fixed_model_is_exact() {
        let m = FixedTransition {
            latency: SimDuration::from_millis(12),
        };
        let s = m.sample(FreqMhz(210), FreqMhz(1410), &ladder(), &mut rng(0));
        assert_eq!(s.settle_duration(), SimDuration::from_millis(12));
        assert!(s.ramp.is_empty());
    }

    #[test]
    fn direction_asymmetry() {
        let m = simple_model();
        let l = ladder();
        let mut r = rng(1);
        let n = 300;
        let up: f64 = (0..n)
            .map(|_| {
                m.sample(FreqMhz(300), FreqMhz(1200), &l, &mut r)
                    .settle_duration()
                    .as_millis_f64()
            })
            .sum::<f64>()
            / n as f64;
        let down: f64 = (0..n)
            .map(|_| {
                m.sample(FreqMhz(1200), FreqMhz(300), &l, &mut r)
                    .settle_duration()
                    .as_millis_f64()
            })
            .sum::<f64>()
            / n as f64;
        assert!(up > 2.0 * down, "up={up} down={down}");
    }

    #[test]
    fn slow_target_band_dominates() {
        let m = simple_model();
        let l = ladder();
        let mut r = rng(2);
        let s = m.sample(FreqMhz(300), FreqMhz(990), &l, &mut r);
        assert!(
            s.settle_duration().as_millis_f64() > 150.0,
            "slow band not applied: {:?}",
            s.settle_duration()
        );
        // Other targets stay fast.
        let s2 = m.sample(FreqMhz(300), FreqMhz(975), &l, &mut r);
        assert!(s2.settle_duration().as_millis_f64() < 40.0);
    }

    #[test]
    fn ramp_structure_is_monotone_toward_target() {
        let m = simple_model();
        let l = ladder();
        let mut r = rng(3);
        let s = m.sample(FreqMhz(300), FreqMhz(1200), &l, &mut r);
        assert!(!s.ramp.is_empty());
        assert!(s.ramp.len() <= 4);
        // Intermediate frequencies strictly between endpoints, ascending.
        for w in s.ramp.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        for (f, _) in &s.ramp {
            assert!(*f > 300.0 && *f < 1200.0);
        }
        // Decreasing direction: descending ramp.
        let s = m.sample(FreqMhz(1200), FreqMhz(300), &l, &mut r);
        for w in s.ramp.windows(2) {
            assert!(w[0].0 >= w[1].0);
        }
    }

    #[test]
    fn settle_duration_is_pending_plus_ramp() {
        let m = simple_model();
        let l = ladder();
        let mut r = rng(4);
        let s = m.sample(FreqMhz(300), FreqMhz(1200), &l, &mut r);
        let sum = s.ramp.iter().fold(s.pending, |acc, (_, d)| acc + *d);
        assert_eq!(sum, s.settle_duration());
    }

    #[test]
    fn pair_factor_is_deterministic_but_pair_specific() {
        let mut m = simple_model();
        m.pair_jitter_ln = 0.4;
        let a1 = m.pair_factor(FreqMhz(300), FreqMhz(600));
        let a2 = m.pair_factor(FreqMhz(300), FreqMhz(600));
        let b = m.pair_factor(FreqMhz(600), FreqMhz(300));
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        // Different salt, different texture.
        let mut m2 = m.clone();
        m2.pair_salt = 8;
        assert_ne!(
            m.pair_factor(FreqMhz(300), FreqMhz(600)),
            m2.pair_factor(FreqMhz(300), FreqMhz(600))
        );
    }

    #[test]
    fn unit_scale_scales_latency() {
        let mut fast = simple_model();
        fast.ramp = RampPolicy {
            fraction: 0.0,
            max_steps: 0,
        };
        let mut slow = fast.clone();
        slow.unit_scale = 2.0;
        // Compare means over the same seed stream.
        let l = ladder();
        let mean = |m: &ArchTransitionModel| {
            let mut r = rng(5);
            (0..200)
                .map(|_| {
                    m.sample(FreqMhz(300), FreqMhz(600), &l, &mut r)
                        .settle_duration()
                        .as_millis_f64()
                })
                .sum::<f64>()
                / 200.0
        };
        let ratio = mean(&slow) / mean(&fast);
        assert!((ratio - 2.0).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn same_frequency_request_is_cheap() {
        let m = simple_model();
        let s = m.sample(FreqMhz(600), FreqMhz(600), &ladder(), &mut rng(6));
        assert!(s.settle_duration() <= SimDuration::from_millis(1));
    }

    #[test]
    fn rare_spike_fattens_the_tail() {
        let mut m = simple_model();
        m.rare_spike = Some(RareSpike {
            probability: 0.05,
            mixture: LatencyMixture::new(vec![MixtureComponent {
                weight: 1.0,
                median_ms: 450.0,
                sigma_ln: 0.05,
            }]),
        });
        let l = ladder();
        let mut r = rng(7);
        let n = 2000;
        let spikes = (0..n)
            .filter(|_| {
                m.sample(FreqMhz(300), FreqMhz(600), &l, &mut r)
                    .settle_duration()
                    .as_millis_f64()
                    > 300.0
            })
            .count();
        let frac = spikes as f64 / n as f64;
        assert!((frac - 0.05).abs() < 0.02, "spike frac = {frac}");
    }

    #[test]
    fn ground_truth_latency_accessors() {
        let gt = TransitionGroundTruth {
            from: FreqMhz(300),
            to: FreqMhz(600),
            host_call: SimTime::from_nanos(1_000),
            device_arrival: SimTime::from_nanos(51_000),
            ramp_start: SimTime::from_nanos(5_051_000),
            settled: SimTime::from_nanos(8_001_000),
        };
        assert_eq!(gt.switching_latency().as_nanos(), 8_000_000);
        assert_eq!(gt.transition_latency().as_nanos(), 7_950_000);
    }
}
