//! Frequency ladders — the discrete SM clock steps a GPU exposes.
//!
//! Table I of the paper reports, per GPU, the minimum/nominal/maximum SM
//! frequency and the number of selectable steps (e.g. A100: 210–1410 MHz in
//! 81 steps of 15 MHz). NVML only accepts ladder values, so the simulated
//! driver snaps requests the same way.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An SM frequency in MHz. Ladder values are whole MHz on all three paper
/// GPUs, so `u32` is exact.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FreqMhz(pub u32);

impl FreqMhz {
    /// The frequency in MHz as a float (for trajectory math).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Cycles per nanosecond at this frequency.
    #[inline]
    pub fn cycles_per_ns(self) -> f64 {
        self.0 as f64 * 1e-3
    }
}

impl fmt::Debug for FreqMhz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}MHz", self.0)
    }
}

impl fmt::Display for FreqMhz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for FreqMhz {
    fn from(mhz: u32) -> Self {
        FreqMhz(mhz)
    }
}

/// The ordered set of selectable SM frequencies of one device.
#[derive(Clone, Debug)]
pub struct FreqLadder {
    steps: Vec<FreqMhz>,
}

impl FreqLadder {
    /// Build from explicit steps; sorts and deduplicates.
    ///
    /// Panics on an empty ladder.
    pub fn from_steps(mut steps: Vec<FreqMhz>) -> Self {
        assert!(!steps.is_empty(), "frequency ladder cannot be empty");
        steps.sort();
        steps.dedup();
        FreqLadder { steps }
    }

    /// Build an arithmetic ladder: `min, min+step, ..., <= max` (the way all
    /// three paper GPUs lay out their SM clocks).
    pub fn arithmetic(min_mhz: u32, max_mhz: u32, step_mhz: u32) -> Self {
        assert!(step_mhz > 0, "step must be positive");
        assert!(min_mhz <= max_mhz, "min must not exceed max");
        let steps = (min_mhz..=max_mhz)
            .step_by(step_mhz as usize)
            .map(FreqMhz)
            .collect();
        FreqLadder::from_steps(steps)
    }

    /// Number of selectable steps (Table I's "SM frequency steps").
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the ladder is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Lowest selectable frequency.
    pub fn min(&self) -> FreqMhz {
        self.steps[0]
    }

    /// Highest selectable frequency.
    pub fn max(&self) -> FreqMhz {
        *self.steps.last().unwrap()
    }

    /// All steps, ascending.
    pub fn steps(&self) -> &[FreqMhz] {
        &self.steps
    }

    /// Whether `f` is exactly a ladder value.
    pub fn contains(&self, f: FreqMhz) -> bool {
        self.steps.binary_search(&f).is_ok()
    }

    /// Snap an arbitrary request to the nearest ladder value (ties resolve
    /// downward, matching the conservative driver behaviour).
    pub fn snap(&self, f: FreqMhz) -> FreqMhz {
        match self.steps.binary_search(&f) {
            Ok(i) => self.steps[i],
            Err(0) => self.steps[0],
            Err(i) if i == self.steps.len() => self.max(),
            Err(i) => {
                let below = self.steps[i - 1];
                let above = self.steps[i];
                if f.0 - below.0 <= above.0 - f.0 {
                    below
                } else {
                    above
                }
            }
        }
    }

    /// The highest ladder value `<= f`, if any (used by power capping).
    pub fn floor(&self, f: FreqMhz) -> Option<FreqMhz> {
        match self.steps.binary_search(&f) {
            Ok(i) => Some(self.steps[i]),
            Err(0) => None,
            Err(i) => Some(self.steps[i - 1]),
        }
    }

    /// Ladder values between two frequencies, exclusive of both endpoints,
    /// ordered in traversal direction — the intermediate steps a ramped
    /// transition passes through.
    pub fn between(&self, from: FreqMhz, to: FreqMhz) -> Vec<FreqMhz> {
        if from == to {
            return Vec::new();
        }
        let (lo, hi) = if from < to { (from, to) } else { (to, from) };
        let mut mids: Vec<FreqMhz> = self
            .steps
            .iter()
            .copied()
            .filter(|&s| s > lo && s < hi)
            .collect();
        if from > to {
            mids.reverse();
        }
        mids
    }

    /// Evenly spaced subset of `n` ladder values spanning the full range
    /// (used to pick heatmap frequency subsets like the paper's 18×18 grid).
    pub fn subset(&self, n: usize) -> Vec<FreqMhz> {
        assert!(n >= 1);
        if n >= self.steps.len() {
            return self.steps.clone();
        }
        if n == 1 {
            return vec![self.max()];
        }
        (0..n)
            .map(|i| {
                let idx = i * (self.steps.len() - 1) / (n - 1);
                self.steps[idx]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_ladder_matches_table1_counts() {
        // A100: 210..=1410 step 15 -> 81 steps.
        let a100 = FreqLadder::arithmetic(210, 1410, 15);
        assert_eq!(a100.len(), 81);
        assert_eq!(a100.min(), FreqMhz(210));
        assert_eq!(a100.max(), FreqMhz(1410));
        // GH200: 345..=1980 step 15 -> 110 steps.
        let gh200 = FreqLadder::arithmetic(345, 1980, 15);
        assert_eq!(gh200.len(), 110);
        // RTX Quadro 6000: 300..=2100 — 120 steps of 15 gives 121; the card
        // exposes 120, modelled as 315..=2100.
        let quadro = FreqLadder::arithmetic(315, 2100, 15);
        assert_eq!(quadro.len(), 120);
    }

    #[test]
    fn snap_to_nearest() {
        let l = FreqLadder::arithmetic(300, 600, 100);
        assert_eq!(l.snap(FreqMhz(300)), FreqMhz(300));
        assert_eq!(l.snap(FreqMhz(349)), FreqMhz(300));
        assert_eq!(l.snap(FreqMhz(350)), FreqMhz(300)); // tie -> down
        assert_eq!(l.snap(FreqMhz(351)), FreqMhz(400));
        assert_eq!(l.snap(FreqMhz(10)), FreqMhz(300));
        assert_eq!(l.snap(FreqMhz(9_999)), FreqMhz(600));
    }

    #[test]
    fn floor_semantics() {
        let l = FreqLadder::arithmetic(300, 600, 100);
        assert_eq!(l.floor(FreqMhz(450)), Some(FreqMhz(400)));
        assert_eq!(l.floor(FreqMhz(400)), Some(FreqMhz(400)));
        assert_eq!(l.floor(FreqMhz(299)), None);
        assert_eq!(l.floor(FreqMhz(9_999)), Some(FreqMhz(600)));
    }

    #[test]
    fn between_is_directional_and_exclusive() {
        let l = FreqLadder::arithmetic(100, 500, 100);
        assert_eq!(
            l.between(FreqMhz(100), FreqMhz(400)),
            vec![FreqMhz(200), FreqMhz(300)]
        );
        assert_eq!(
            l.between(FreqMhz(400), FreqMhz(100)),
            vec![FreqMhz(300), FreqMhz(200)]
        );
        assert!(l.between(FreqMhz(200), FreqMhz(300)).is_empty());
        assert!(l.between(FreqMhz(200), FreqMhz(200)).is_empty());
    }

    #[test]
    fn subset_spans_range() {
        let l = FreqLadder::arithmetic(210, 1410, 15);
        let s = l.subset(18);
        assert_eq!(s.len(), 18);
        assert_eq!(s[0], FreqMhz(210));
        assert_eq!(*s.last().unwrap(), FreqMhz(1410));
        // strictly increasing
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        // subset larger than the ladder returns the whole ladder
        let tiny = FreqLadder::arithmetic(100, 200, 100);
        assert_eq!(tiny.subset(10).len(), 2);
    }

    #[test]
    fn from_steps_sorts_and_dedups() {
        let l = FreqLadder::from_steps(vec![FreqMhz(500), FreqMhz(100), FreqMhz(500)]);
        assert_eq!(l.steps(), &[FreqMhz(100), FreqMhz(500)]);
    }

    #[test]
    #[should_panic]
    fn empty_ladder_panics() {
        FreqLadder::from_steps(vec![]);
    }
}
