//! The streaming-multiprocessor engine: turning a frequency trajectory into
//! per-iteration timestamp records.
//!
//! The microbenchmark kernel of Sec. V runs "the same arithmetic instruction
//! repeated multiple times in each performed iteration", with timestamp reads
//! as the first and last instruction of every iteration. An SM therefore
//! produces, per iteration, a `(start, end)` pair on the device timer whose
//! spacing is `work_cycles / f(t)` plus noise — plus the ~1 µs globaltimer
//! quantisation. That record stream is the *only* thing the methodology sees.

use latest_sim_clock::{ClockView, SimDuration, SimTime};
use rand::Rng;

use crate::noise::Normal;
use crate::trajectory::FreqTrajectory;

/// One iteration's timestamps as read from the device timer (already
/// quantised to the timer resolution).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IterRecord {
    /// Device-timer value at the first instruction of the iteration.
    pub start: SimTime,
    /// Device-timer value at the last instruction of the iteration.
    pub end: SimTime,
}

impl IterRecord {
    /// Measured iteration execution time.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// Parameters of the microbenchmark workload executed by each SM.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadParams {
    /// Arithmetic cycles per iteration (sets the measurement granularity:
    /// iteration wall time ≈ `work_cycles / f`).
    pub work_cycles: f64,
    /// Fixed per-iteration overhead outside the timestamped region
    /// (loop bookkeeping between the end read and the next start read), ns.
    pub inter_iter_overhead_ns: u64,
    /// Relative standard deviation of the per-iteration work (instruction
    /// replay, minor contention); typically < 2 %.
    pub noise_rel_sigma: f64,
    /// Probability that an iteration is hit by a device-side disturbance
    /// (ECC scrub, context timeslice) and runs long.
    pub spike_prob: f64,
    /// Work multiplier applied on a spike.
    pub spike_scale: f64,
}

impl WorkloadParams {
    /// A well-behaved default: ~100 µs iterations at 1 GHz, 1 % noise.
    pub fn default_micro() -> Self {
        WorkloadParams {
            work_cycles: 100_000.0,
            inter_iter_overhead_ns: 200,
            noise_rel_sigma: 0.01,
            spike_prob: 0.0005,
            spike_scale: 3.0,
        }
    }

    /// A memory-bound variant: shorter timestamped arithmetic block plus a
    /// large fixed (clock-insensitive) DRAM stall between iterations —
    /// frequency still shows in the measured iteration duration, but the
    /// kernel spends most of its wall time off the core clock.
    pub fn memory_bound() -> Self {
        WorkloadParams {
            work_cycles: 55_000.0,
            inter_iter_overhead_ns: 45_000,
            noise_rel_sigma: 0.015,
            spike_prob: 0.001,
            spike_scale: 3.0,
        }
    }

    /// A bursty variant: noisier iterations with frequent long disturbance
    /// spikes (ECC scrubs, co-tenant timeslices) — stress input for the
    /// detection walk-back and the DBSCAN outlier filter.
    pub fn bursty() -> Self {
        WorkloadParams {
            work_cycles: 100_000.0,
            inter_iter_overhead_ns: 200,
            noise_rel_sigma: 0.015,
            spike_prob: 0.008,
            spike_scale: 5.0,
        }
    }

    /// Expected iteration duration at a given frequency (noise-free), ns.
    pub fn expected_iter_ns(&self, freq_mhz: f64) -> f64 {
        self.work_cycles / (freq_mhz * 1e-3)
    }
}

/// One named workload preset in a [`WorkloadRegistry`].
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadEntry {
    name: String,
    description: String,
    params: WorkloadParams,
}

impl WorkloadEntry {
    /// Registry key (the scenario/CLI workload name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Human description for `list-workloads` output.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The preset parameters.
    pub fn params(&self) -> WorkloadParams {
        self.params
    }
}

/// Named lookup over microbenchmark workload presets, mirroring
/// [`crate::devices::DeviceRegistry`]: scenario files and the CLI select
/// workloads by name, error messages enumerate the vocabulary, and callers
/// can register their own presets.
#[derive(Clone, Debug)]
pub struct WorkloadRegistry {
    entries: Vec<WorkloadEntry>,
}

impl WorkloadRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        WorkloadRegistry {
            entries: Vec::new(),
        }
    }

    /// The built-in presets: `paper-default`, `memory-bound`, `bursty`.
    pub fn builtin() -> Self {
        let mut reg = WorkloadRegistry::empty();
        reg.register(
            "paper-default",
            "the paper's arithmetic microbenchmark (~100 us iterations at 1 GHz, 1 % noise)",
            WorkloadParams::default_micro(),
        );
        reg.register(
            "memory-bound",
            "short arithmetic block + fixed 45 us DRAM stall per iteration",
            WorkloadParams::memory_bound(),
        );
        reg.register(
            "bursty",
            "noisy iterations with frequent 5x disturbance spikes",
            WorkloadParams::bursty(),
        );
        reg
    }

    /// Add (or replace, by name) a preset.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        description: impl Into<String>,
        params: WorkloadParams,
    ) {
        let entry = WorkloadEntry {
            name: name.into(),
            description: description.into(),
            params,
        };
        if let Some(existing) = self
            .entries
            .iter_mut()
            .find(|e| e.name.eq_ignore_ascii_case(&entry.name))
        {
            *existing = entry;
        } else {
            self.entries.push(entry);
        }
    }

    /// All entries, in registration order.
    pub fn entries(&self) -> &[WorkloadEntry] {
        &self.entries
    }

    /// Preset names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.entries.iter().map(|e| e.name.clone()).collect()
    }

    /// Look up a preset by name (case-insensitive).
    pub fn get(&self, name: &str) -> Option<WorkloadParams> {
        self.entries
            .iter()
            .find(|e| e.name.eq_ignore_ascii_case(name))
            .map(|e| e.params)
    }
}

impl Default for WorkloadRegistry {
    fn default() -> Self {
        WorkloadRegistry::builtin()
    }
}

/// Execute `n_iters` iterations on one SM over `traj`, starting at global
/// time `start`. Returns the device-timer records and the global end time.
///
/// `timer` is the device clock view used to stamp records (projection +
/// quantisation); the returned end time stays on the global timeline for the
/// device's internal bookkeeping.
pub fn run_sm<R: Rng + ?Sized>(
    traj: &FreqTrajectory,
    start: SimTime,
    n_iters: u32,
    params: &WorkloadParams,
    timer: &ClockView,
    rng: &mut R,
) -> (Vec<IterRecord>, SimTime) {
    let noise = Normal::new(1.0, params.noise_rel_sigma);
    let mut cursor = traj.cursor(start);
    let mut records = Vec::with_capacity(n_iters as usize);
    for _ in 0..n_iters {
        let t0 = cursor.time();
        let mut work = params.work_cycles * noise.sample_clamped(rng, 4.0).max(0.01);
        if params.spike_prob > 0.0 && rng.gen::<f64>() < params.spike_prob {
            work *= params.spike_scale;
        }
        let t1 = cursor.advance_cycles(work);
        records.push(IterRecord {
            start: timer.project(t0),
            end: timer.project(t1),
        });
        if params.inter_iter_overhead_ns > 0 {
            cursor.skip(SimDuration::from_nanos(params.inter_iter_overhead_ns));
        }
    }
    (records, cursor.time())
}

/// Noise-free end-time estimate for `n_iters` iterations starting at `start`
/// — used by the device to bound a kernel's busy window before simulating
/// every SM.
pub fn estimate_end(
    traj: &FreqTrajectory,
    start: SimTime,
    n_iters: u32,
    params: &WorkloadParams,
) -> SimTime {
    let mut cursor = traj.cursor(start);
    for _ in 0..n_iters {
        cursor.advance_cycles(params.work_cycles);
        if params.inter_iter_overhead_ns > 0 {
            cursor.skip(SimDuration::from_nanos(params.inter_iter_overhead_ns));
        }
    }
    cursor.time()
}

#[cfg(test)]
mod tests {
    use super::*;
    use latest_sim_clock::SharedClock;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn timer_1us() -> ClockView {
        ClockView::skewed(SharedClock::new(), 0, 0.0, SimDuration::from_micros(1))
    }

    fn timer_exact() -> ClockView {
        ClockView::identity(SharedClock::new())
    }

    fn quiet_params() -> WorkloadParams {
        WorkloadParams {
            work_cycles: 100_000.0,
            inter_iter_overhead_ns: 0,
            noise_rel_sigma: 0.0,
            spike_prob: 0.0,
            spike_scale: 1.0,
        }
    }

    #[test]
    fn iteration_duration_tracks_frequency_exactly() {
        let traj = FreqTrajectory::flat(1000.0); // 1 cycle/ns
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let (recs, end) = run_sm(
            &traj,
            SimTime::EPOCH,
            10,
            &quiet_params(),
            &timer_exact(),
            &mut rng,
        );
        assert_eq!(recs.len(), 10);
        for r in &recs {
            assert_eq!(r.duration().as_nanos(), 100_000);
        }
        assert_eq!(end.as_nanos(), 1_000_000);
    }

    #[test]
    fn slower_clock_means_longer_iterations() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let slow = FreqTrajectory::flat(500.0);
        let (recs, _) = run_sm(
            &slow,
            SimTime::EPOCH,
            5,
            &quiet_params(),
            &timer_exact(),
            &mut rng,
        );
        for r in &recs {
            assert_eq!(r.duration().as_nanos(), 200_000);
        }
    }

    #[test]
    fn transition_stretches_exactly_one_iteration() {
        // 1000 MHz until 250 us, then 500 MHz: the iteration spanning the
        // breakpoint is stretched, later ones settle at 200 us.
        let mut traj = FreqTrajectory::flat(1000.0);
        traj.push(SimTime::from_micros(250), 500.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let (recs, _) = run_sm(
            &traj,
            SimTime::EPOCH,
            6,
            &quiet_params(),
            &timer_exact(),
            &mut rng,
        );
        let durs: Vec<u64> = recs.iter().map(|r| r.duration().as_nanos()).collect();
        assert_eq!(durs[0], 100_000);
        assert_eq!(durs[1], 100_000);
        // Third iteration starts at 200 us, crosses the 250 us breakpoint:
        // 50 us at 1 c/ns = 50k cycles, remaining 50k at 0.5 c/ns = 100 us.
        assert_eq!(durs[2], 150_000);
        assert_eq!(durs[3], 200_000);
        assert_eq!(durs[4], 200_000);
    }

    #[test]
    fn quantisation_buckets_timestamps() {
        let traj = FreqTrajectory::flat(1000.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut p = quiet_params();
        p.work_cycles = 12_345.0; // 12.345 us per iteration
        let (recs, _) = run_sm(&traj, SimTime::EPOCH, 50, &p, &timer_1us(), &mut rng);
        for r in &recs {
            assert_eq!(r.start.as_nanos() % 1_000, 0);
            assert_eq!(r.end.as_nanos() % 1_000, 0);
        }
        // Quantised duration can only be a whole number of microseconds and
        // within 1 us of the true 12.345 us.
        for r in &recs {
            let d = r.duration().as_nanos();
            assert!(d == 12_000 || d == 13_000, "duration {d}");
        }
    }

    #[test]
    fn noise_spreads_durations_but_preserves_mean() {
        let traj = FreqTrajectory::flat(1000.0);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut p = quiet_params();
        p.noise_rel_sigma = 0.01;
        let (recs, _) = run_sm(&traj, SimTime::EPOCH, 4000, &p, &timer_exact(), &mut rng);
        let durs: Vec<f64> = recs
            .iter()
            .map(|r| r.duration().as_nanos() as f64)
            .collect();
        let mean = durs.iter().sum::<f64>() / durs.len() as f64;
        assert!((mean - 100_000.0).abs() < 200.0, "mean = {mean}");
        let var = durs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / durs.len() as f64;
        let rel = var.sqrt() / mean;
        assert!((rel - 0.01).abs() < 0.002, "rel sigma = {rel}");
    }

    #[test]
    fn spikes_produce_long_iterations() {
        let traj = FreqTrajectory::flat(1000.0);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut p = quiet_params();
        p.spike_prob = 0.02;
        p.spike_scale = 5.0;
        let (recs, _) = run_sm(&traj, SimTime::EPOCH, 5000, &p, &timer_exact(), &mut rng);
        let long = recs
            .iter()
            .filter(|r| r.duration().as_nanos() > 400_000)
            .count();
        let frac = long as f64 / recs.len() as f64;
        assert!((frac - 0.02).abs() < 0.01, "spike frac = {frac}");
    }

    #[test]
    fn overhead_gaps_between_iterations() {
        let traj = FreqTrajectory::flat(1000.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut p = quiet_params();
        p.inter_iter_overhead_ns = 500;
        let (recs, _) = run_sm(&traj, SimTime::EPOCH, 3, &p, &timer_exact(), &mut rng);
        assert_eq!(recs[1].start.as_nanos() - recs[0].end.as_nanos(), 500);
        // Duration itself excludes the overhead.
        assert_eq!(recs[0].duration().as_nanos(), 100_000);
    }

    #[test]
    fn workload_registry_serves_presets() {
        let reg = WorkloadRegistry::builtin();
        assert_eq!(reg.names(), vec!["paper-default", "memory-bound", "bursty"]);
        assert_eq!(
            reg.get("paper-default").unwrap(),
            WorkloadParams::default_micro()
        );
        assert_eq!(
            reg.get("Memory-Bound").unwrap(),
            WorkloadParams::memory_bound()
        );
        assert_eq!(reg.get("bursty").unwrap(), WorkloadParams::bursty());
        assert!(reg.get("compute-heavy").is_none());

        let mut reg = reg;
        let custom = WorkloadParams {
            work_cycles: 5_000.0,
            ..WorkloadParams::default_micro()
        };
        reg.register("bursty", "override", custom);
        assert_eq!(reg.entries().len(), 3);
        assert_eq!(reg.get("bursty").unwrap(), custom);
    }

    #[test]
    fn presets_remain_frequency_sensitive() {
        // Phase 1 relies on iteration durations separating frequencies;
        // every preset must keep the timestamped block on the core clock.
        for params in [
            WorkloadParams::default_micro(),
            WorkloadParams::memory_bound(),
            WorkloadParams::bursty(),
        ] {
            let slow = params.expected_iter_ns(705.0);
            let fast = params.expected_iter_ns(1410.0);
            assert!(slow > 1.9 * fast, "iteration time must track 1/f");
        }
    }

    #[test]
    fn estimate_matches_noise_free_run() {
        let mut traj = FreqTrajectory::flat(1410.0);
        traj.push(SimTime::from_micros(700), 705.0);
        let p = quiet_params();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let (_, end) = run_sm(&traj, SimTime::EPOCH, 42, &p, &timer_exact(), &mut rng);
        let est = estimate_end(&traj, SimTime::EPOCH, 42, &p);
        assert_eq!(end, est);
    }
}
