//! The streaming-multiprocessor engine: turning a frequency trajectory into
//! per-iteration timestamp records.
//!
//! The microbenchmark kernel of Sec. V runs "the same arithmetic instruction
//! repeated multiple times in each performed iteration", with timestamp reads
//! as the first and last instruction of every iteration. An SM therefore
//! produces, per iteration, a `(start, end)` pair on the device timer whose
//! spacing is `work_cycles / f(t)` plus noise — plus the ~1 µs globaltimer
//! quantisation. That record stream is the *only* thing the methodology sees.

use latest_sim_clock::{ClockView, SimDuration, SimTime};
use rand::Rng;

use crate::noise::Normal;
use crate::trajectory::FreqTrajectory;

/// One iteration's timestamps as read from the device timer (already
/// quantised to the timer resolution).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IterRecord {
    /// Device-timer value at the first instruction of the iteration.
    pub start: SimTime,
    /// Device-timer value at the last instruction of the iteration.
    pub end: SimTime,
}

impl IterRecord {
    /// Measured iteration execution time.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// Parameters of the microbenchmark workload executed by each SM.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadParams {
    /// Arithmetic cycles per iteration (sets the measurement granularity:
    /// iteration wall time ≈ `work_cycles / f`).
    pub work_cycles: f64,
    /// Fixed per-iteration overhead outside the timestamped region
    /// (loop bookkeeping between the end read and the next start read), ns.
    pub inter_iter_overhead_ns: u64,
    /// Relative standard deviation of the per-iteration work (instruction
    /// replay, minor contention); typically < 2 %.
    pub noise_rel_sigma: f64,
    /// Probability that an iteration is hit by a device-side disturbance
    /// (ECC scrub, context timeslice) and runs long.
    pub spike_prob: f64,
    /// Work multiplier applied on a spike.
    pub spike_scale: f64,
    /// DRAM stall time inside the timestamped region, expressed in ns *at
    /// the device's reference memory clock* (0 = pure-arithmetic kernel).
    /// The stall is a fixed number of memory cycles, so it stretches when
    /// the memory clock drops — this is what makes a workload memory-bound
    /// in a way the methodology can observe.
    pub mem_stall_ns: f64,
}

/// The memory-clock context of a kernel: the DRAM frequency trajectory plus
/// the reference clock `mem_stall_ns` is calibrated against. `None` in
/// [`run_sm`] means "no memory domain" (stalls are skipped entirely).
#[derive(Clone, Copy, Debug)]
pub struct MemView<'a> {
    /// The effective memory-clock trajectory over the kernel's window.
    pub traj: &'a FreqTrajectory,
    /// The memory clock (MHz) at which `mem_stall_ns` takes its face value.
    pub reference_mhz: f64,
}

impl WorkloadParams {
    /// A well-behaved default: ~100 µs iterations at 1 GHz, 1 % noise.
    pub fn default_micro() -> Self {
        WorkloadParams {
            work_cycles: 100_000.0,
            inter_iter_overhead_ns: 200,
            noise_rel_sigma: 0.01,
            spike_prob: 0.0005,
            spike_scale: 3.0,
            mem_stall_ns: 0.0,
        }
    }

    /// A memory-bound variant: a short arithmetic block plus a large DRAM
    /// stall *inside* the timestamped region. The stall is a fixed number of
    /// memory cycles (45 µs at the reference memory clock), so the measured
    /// iteration duration stretches when the DRAM clock drops — the kernel
    /// time is dominated by the memory domain, not the core clock.
    pub fn memory_bound() -> Self {
        WorkloadParams {
            work_cycles: 55_000.0,
            inter_iter_overhead_ns: 200,
            noise_rel_sigma: 0.015,
            spike_prob: 0.001,
            spike_scale: 3.0,
            mem_stall_ns: 45_000.0,
        }
    }

    /// A bursty variant: noisier iterations with frequent long disturbance
    /// spikes (ECC scrubs, co-tenant timeslices) — stress input for the
    /// detection walk-back and the DBSCAN outlier filter.
    pub fn bursty() -> Self {
        WorkloadParams {
            work_cycles: 100_000.0,
            inter_iter_overhead_ns: 200,
            noise_rel_sigma: 0.015,
            spike_prob: 0.008,
            spike_scale: 5.0,
            mem_stall_ns: 0.0,
        }
    }

    /// Expected iteration duration at a given core frequency (noise-free,
    /// memory at its reference clock), ns.
    pub fn expected_iter_ns(&self, freq_mhz: f64) -> f64 {
        self.work_cycles / (freq_mhz * 1e-3) + self.mem_stall_ns
    }

    /// Expected iteration duration with the memory domain off its reference
    /// clock: the arithmetic block scales with the core clock, the stall
    /// scales with `reference_mhz / mem_mhz` (fixed memory cycles), ns.
    pub fn expected_iter_ns_mem(&self, freq_mhz: f64, mem_mhz: f64, reference_mhz: f64) -> f64 {
        self.work_cycles / (freq_mhz * 1e-3) + self.mem_stall_ns * (reference_mhz / mem_mhz)
    }
}

/// One named workload preset in a [`WorkloadRegistry`].
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadEntry {
    name: String,
    description: String,
    params: WorkloadParams,
}

impl WorkloadEntry {
    /// Registry key (the scenario/CLI workload name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Human description for `list-workloads` output.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The preset parameters.
    pub fn params(&self) -> WorkloadParams {
        self.params
    }
}

/// Named lookup over microbenchmark workload presets, mirroring
/// [`crate::devices::DeviceRegistry`]: scenario files and the CLI select
/// workloads by name, error messages enumerate the vocabulary, and callers
/// can register their own presets.
#[derive(Clone, Debug)]
pub struct WorkloadRegistry {
    entries: Vec<WorkloadEntry>,
}

impl WorkloadRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        WorkloadRegistry {
            entries: Vec::new(),
        }
    }

    /// The built-in presets: `paper-default`, `memory-bound`, `bursty`.
    pub fn builtin() -> Self {
        let mut reg = WorkloadRegistry::empty();
        reg.register(
            "paper-default",
            "the paper's arithmetic microbenchmark (~100 us iterations at 1 GHz, 1 % noise)",
            WorkloadParams::default_micro(),
        );
        reg.register(
            "memory-bound",
            "short arithmetic block + 45 us DRAM stall (in memory cycles) per iteration",
            WorkloadParams::memory_bound(),
        );
        reg.register(
            "bursty",
            "noisy iterations with frequent 5x disturbance spikes",
            WorkloadParams::bursty(),
        );
        reg
    }

    /// Add (or replace, by name) a preset.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        description: impl Into<String>,
        params: WorkloadParams,
    ) {
        let entry = WorkloadEntry {
            name: name.into(),
            description: description.into(),
            params,
        };
        if let Some(existing) = self
            .entries
            .iter_mut()
            .find(|e| e.name.eq_ignore_ascii_case(&entry.name))
        {
            *existing = entry;
        } else {
            self.entries.push(entry);
        }
    }

    /// All entries, in registration order.
    pub fn entries(&self) -> &[WorkloadEntry] {
        &self.entries
    }

    /// Preset names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.entries.iter().map(|e| e.name.clone()).collect()
    }

    /// Look up a preset by name (case-insensitive).
    pub fn get(&self, name: &str) -> Option<WorkloadParams> {
        self.entries
            .iter()
            .find(|e| e.name.eq_ignore_ascii_case(name))
            .map(|e| e.params)
    }
}

impl Default for WorkloadRegistry {
    fn default() -> Self {
        WorkloadRegistry::builtin()
    }
}

/// Execute `n_iters` iterations on one SM over `traj`, starting at global
/// time `start`. Returns the device-timer records and the global end time.
///
/// `timer` is the device clock view used to stamp records (projection +
/// quantisation); the returned end time stays on the global timeline for the
/// device's internal bookkeeping. `mem` supplies the memory-clock trajectory
/// for workloads with a DRAM stall; `None` (or `mem_stall_ns == 0`) runs the
/// historical pure-arithmetic path bit-for-bit.
pub fn run_sm<R: Rng + ?Sized>(
    traj: &FreqTrajectory,
    start: SimTime,
    n_iters: u32,
    params: &WorkloadParams,
    timer: &ClockView,
    rng: &mut R,
    mem: Option<MemView<'_>>,
) -> (Vec<IterRecord>, SimTime) {
    let noise = Normal::new(1.0, params.noise_rel_sigma);
    let mut cursor = traj.cursor(start);
    let mut records = Vec::with_capacity(n_iters as usize);
    for _ in 0..n_iters {
        let t0 = cursor.time();
        let factor = noise.sample_clamped(rng, 4.0).max(0.01);
        let mut work = params.work_cycles * factor;
        let mut stall_factor = factor;
        if params.spike_prob > 0.0 && rng.gen::<f64>() < params.spike_prob {
            work *= params.spike_scale;
            stall_factor *= params.spike_scale;
        }
        let mut t1 = cursor.advance_cycles(work);
        if params.mem_stall_ns > 0.0 {
            if let Some(m) = mem {
                // The stall is a fixed cycle count on the *memory* clock; it
                // shares the iteration's noise/spike factor (one draw per
                // iteration keeps the RNG stream identical to the
                // single-domain engine).
                let mem_cycles = params.mem_stall_ns * m.reference_mhz * 1e-3 * stall_factor;
                let stall_end = m.traj.advance_cycles(t1, mem_cycles);
                cursor.skip(stall_end.saturating_since(t1));
                t1 = cursor.time();
            }
        }
        records.push(IterRecord {
            start: timer.project(t0),
            end: timer.project(t1),
        });
        if params.inter_iter_overhead_ns > 0 {
            cursor.skip(SimDuration::from_nanos(params.inter_iter_overhead_ns));
        }
    }
    (records, cursor.time())
}

/// Noise-free end-time estimate for `n_iters` iterations starting at `start`
/// — used by the device to bound a kernel's busy window before simulating
/// every SM.
pub fn estimate_end(
    traj: &FreqTrajectory,
    start: SimTime,
    n_iters: u32,
    params: &WorkloadParams,
    mem: Option<MemView<'_>>,
) -> SimTime {
    let mut cursor = traj.cursor(start);
    for _ in 0..n_iters {
        let t1 = cursor.advance_cycles(params.work_cycles);
        if params.mem_stall_ns > 0.0 {
            if let Some(m) = mem {
                let mem_cycles = params.mem_stall_ns * m.reference_mhz * 1e-3;
                let stall_end = m.traj.advance_cycles(t1, mem_cycles);
                cursor.skip(stall_end.saturating_since(t1));
            }
        }
        if params.inter_iter_overhead_ns > 0 {
            cursor.skip(SimDuration::from_nanos(params.inter_iter_overhead_ns));
        }
    }
    cursor.time()
}

#[cfg(test)]
mod tests {
    use super::*;
    use latest_sim_clock::SharedClock;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn timer_1us() -> ClockView {
        ClockView::skewed(SharedClock::new(), 0, 0.0, SimDuration::from_micros(1))
    }

    fn timer_exact() -> ClockView {
        ClockView::identity(SharedClock::new())
    }

    fn quiet_params() -> WorkloadParams {
        WorkloadParams {
            work_cycles: 100_000.0,
            inter_iter_overhead_ns: 0,
            noise_rel_sigma: 0.0,
            spike_prob: 0.0,
            spike_scale: 1.0,
            mem_stall_ns: 0.0,
        }
    }

    #[test]
    fn iteration_duration_tracks_frequency_exactly() {
        let traj = FreqTrajectory::flat(1000.0); // 1 cycle/ns
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let (recs, end) = run_sm(
            &traj,
            SimTime::EPOCH,
            10,
            &quiet_params(),
            &timer_exact(),
            &mut rng,
            None,
        );
        assert_eq!(recs.len(), 10);
        for r in &recs {
            assert_eq!(r.duration().as_nanos(), 100_000);
        }
        assert_eq!(end.as_nanos(), 1_000_000);
    }

    #[test]
    fn slower_clock_means_longer_iterations() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let slow = FreqTrajectory::flat(500.0);
        let (recs, _) = run_sm(
            &slow,
            SimTime::EPOCH,
            5,
            &quiet_params(),
            &timer_exact(),
            &mut rng,
            None,
        );
        for r in &recs {
            assert_eq!(r.duration().as_nanos(), 200_000);
        }
    }

    #[test]
    fn transition_stretches_exactly_one_iteration() {
        // 1000 MHz until 250 us, then 500 MHz: the iteration spanning the
        // breakpoint is stretched, later ones settle at 200 us.
        let mut traj = FreqTrajectory::flat(1000.0);
        traj.push(SimTime::from_micros(250), 500.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let (recs, _) = run_sm(
            &traj,
            SimTime::EPOCH,
            6,
            &quiet_params(),
            &timer_exact(),
            &mut rng,
            None,
        );
        let durs: Vec<u64> = recs.iter().map(|r| r.duration().as_nanos()).collect();
        assert_eq!(durs[0], 100_000);
        assert_eq!(durs[1], 100_000);
        // Third iteration starts at 200 us, crosses the 250 us breakpoint:
        // 50 us at 1 c/ns = 50k cycles, remaining 50k at 0.5 c/ns = 100 us.
        assert_eq!(durs[2], 150_000);
        assert_eq!(durs[3], 200_000);
        assert_eq!(durs[4], 200_000);
    }

    #[test]
    fn quantisation_buckets_timestamps() {
        let traj = FreqTrajectory::flat(1000.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut p = quiet_params();
        p.work_cycles = 12_345.0; // 12.345 us per iteration
        let (recs, _) = run_sm(&traj, SimTime::EPOCH, 50, &p, &timer_1us(), &mut rng, None);
        for r in &recs {
            assert_eq!(r.start.as_nanos() % 1_000, 0);
            assert_eq!(r.end.as_nanos() % 1_000, 0);
        }
        // Quantised duration can only be a whole number of microseconds and
        // within 1 us of the true 12.345 us.
        for r in &recs {
            let d = r.duration().as_nanos();
            assert!(d == 12_000 || d == 13_000, "duration {d}");
        }
    }

    #[test]
    fn noise_spreads_durations_but_preserves_mean() {
        let traj = FreqTrajectory::flat(1000.0);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut p = quiet_params();
        p.noise_rel_sigma = 0.01;
        let (recs, _) = run_sm(
            &traj,
            SimTime::EPOCH,
            4000,
            &p,
            &timer_exact(),
            &mut rng,
            None,
        );
        let durs: Vec<f64> = recs
            .iter()
            .map(|r| r.duration().as_nanos() as f64)
            .collect();
        let mean = durs.iter().sum::<f64>() / durs.len() as f64;
        assert!((mean - 100_000.0).abs() < 200.0, "mean = {mean}");
        let var = durs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / durs.len() as f64;
        let rel = var.sqrt() / mean;
        assert!((rel - 0.01).abs() < 0.002, "rel sigma = {rel}");
    }

    #[test]
    fn spikes_produce_long_iterations() {
        let traj = FreqTrajectory::flat(1000.0);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut p = quiet_params();
        p.spike_prob = 0.02;
        p.spike_scale = 5.0;
        let (recs, _) = run_sm(
            &traj,
            SimTime::EPOCH,
            5000,
            &p,
            &timer_exact(),
            &mut rng,
            None,
        );
        let long = recs
            .iter()
            .filter(|r| r.duration().as_nanos() > 400_000)
            .count();
        let frac = long as f64 / recs.len() as f64;
        assert!((frac - 0.02).abs() < 0.01, "spike frac = {frac}");
    }

    #[test]
    fn overhead_gaps_between_iterations() {
        let traj = FreqTrajectory::flat(1000.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut p = quiet_params();
        p.inter_iter_overhead_ns = 500;
        let (recs, _) = run_sm(&traj, SimTime::EPOCH, 3, &p, &timer_exact(), &mut rng, None);
        assert_eq!(recs[1].start.as_nanos() - recs[0].end.as_nanos(), 500);
        // Duration itself excludes the overhead.
        assert_eq!(recs[0].duration().as_nanos(), 100_000);
    }

    #[test]
    fn workload_registry_serves_presets() {
        let reg = WorkloadRegistry::builtin();
        assert_eq!(reg.names(), vec!["paper-default", "memory-bound", "bursty"]);
        assert_eq!(
            reg.get("paper-default").unwrap(),
            WorkloadParams::default_micro()
        );
        assert_eq!(
            reg.get("Memory-Bound").unwrap(),
            WorkloadParams::memory_bound()
        );
        assert_eq!(reg.get("bursty").unwrap(), WorkloadParams::bursty());
        assert!(reg.get("compute-heavy").is_none());

        let mut reg = reg;
        let custom = WorkloadParams {
            work_cycles: 5_000.0,
            ..WorkloadParams::default_micro()
        };
        reg.register("bursty", "override", custom);
        assert_eq!(reg.entries().len(), 3);
        assert_eq!(reg.get("bursty").unwrap(), custom);
    }

    #[test]
    fn presets_remain_frequency_sensitive() {
        // Phase 1 relies on iteration durations separating frequencies;
        // every preset must keep the timestamped block on the core clock.
        // Pure-arithmetic presets track 1/f exactly; the memory-bound preset
        // keeps a weaker (but still detectable) core sensitivity because
        // most of its iteration is DRAM stall.
        for params in [WorkloadParams::default_micro(), WorkloadParams::bursty()] {
            let slow = params.expected_iter_ns(705.0);
            let fast = params.expected_iter_ns(1410.0);
            assert!(slow > 1.9 * fast, "iteration time must track 1/f");
        }
        let mb = WorkloadParams::memory_bound();
        let slow = mb.expected_iter_ns(705.0);
        let fast = mb.expected_iter_ns(1410.0);
        assert!(
            slow > 1.3 * fast,
            "memory-bound core sensitivity too weak: {slow} vs {fast}"
        );
    }

    #[test]
    fn memory_bound_tracks_memory_clock_paper_default_does_not() {
        // The satellite contract: halving the DRAM clock stretches the
        // memory-bound iteration substantially (the 45 µs stall is a fixed
        // count of memory cycles) while paper-default is bit-for-bit
        // insensitive to the memory domain.
        let core = FreqTrajectory::flat(1410.0);
        let run_at = |params: &WorkloadParams, mem_mhz: f64| -> f64 {
            let mem_traj = FreqTrajectory::flat(mem_mhz);
            let mem = MemView {
                traj: &mem_traj,
                reference_mhz: 1215.0,
            };
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            let (recs, _) = run_sm(
                &core,
                SimTime::EPOCH,
                200,
                params,
                &timer_exact(),
                &mut rng,
                Some(mem),
            );
            recs.iter()
                .map(|r| r.duration().as_nanos() as f64)
                .sum::<f64>()
                / recs.len() as f64
        };

        let mb = WorkloadParams::memory_bound();
        let full = run_at(&mb, 1215.0);
        let half = run_at(&mb, 607.5);
        assert!(
            half > 1.4 * full,
            "memory-bound must slow down at half DRAM clock: {half} vs {full}"
        );
        // Analytic expectation agrees with the engine.
        let exp_ratio = mb.expected_iter_ns_mem(1410.0, 607.5, 1215.0)
            / mb.expected_iter_ns_mem(1410.0, 1215.0, 1215.0);
        assert!((half / full - exp_ratio).abs() < 0.05 * exp_ratio);

        let pd = WorkloadParams::default_micro();
        let full = run_at(&pd, 1215.0);
        let half = run_at(&pd, 607.5);
        assert_eq!(full, half, "paper-default must ignore the memory clock");
    }

    #[test]
    fn estimate_matches_noise_free_run() {
        let mut traj = FreqTrajectory::flat(1410.0);
        traj.push(SimTime::from_micros(700), 705.0);
        let p = quiet_params();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let (_, end) = run_sm(
            &traj,
            SimTime::EPOCH,
            42,
            &p,
            &timer_exact(),
            &mut rng,
            None,
        );
        let est = estimate_end(&traj, SimTime::EPOCH, 42, &p, None);
        assert_eq!(end, est);
    }
}
