//! Thermal and power models driving throttle behaviour.
//!
//! LATEST must coexist with the GPU's self-protection: Sec. VI discards the
//! newest five measurements and backs off for ten seconds on thermal
//! throttling, and skips the frequency pair entirely on power throttling
//! (the requested frequency cannot be held long enough to measure). To
//! exercise those paths the simulator needs believable physics:
//!
//! * a quadratic-in-voltage dynamic power model `P = P_idle + c·V(f)²·f`,
//! * a first-order RC thermal model with closed-form exponential evolution,
//!   so crossings are solved analytically rather than by time-stepping.

use latest_sim_clock::{SimDuration, SimTime};

use crate::freq::{FreqLadder, FreqMhz};

/// Dynamic power model of one device.
#[derive(Clone, Copy, Debug)]
pub struct PowerModel {
    /// Power drawn when idle (W).
    pub idle_w: f64,
    /// Coefficient of the dynamic term (W per GHz at V = 1).
    pub dynamic_coeff: f64,
    /// Core voltage at the bottom of the frequency ladder (V).
    pub v_min: f64,
    /// Core voltage at the top of the frequency ladder (V).
    pub v_max: f64,
    /// Frequency where `v_min` applies (MHz).
    pub f_min_mhz: f64,
    /// Frequency where `v_max` applies (MHz).
    pub f_max_mhz: f64,
}

impl PowerModel {
    /// Interpolated core voltage at frequency `f_mhz` (clamped to the ladder
    /// range; DVFS curves are monotone in this regime).
    pub fn voltage(&self, f_mhz: f64) -> f64 {
        if self.f_max_mhz <= self.f_min_mhz {
            return self.v_max;
        }
        let a = ((f_mhz - self.f_min_mhz) / (self.f_max_mhz - self.f_min_mhz)).clamp(0.0, 1.0);
        self.v_min + a * (self.v_max - self.v_min)
    }

    /// Board power at frequency `f_mhz` under full SM load (W).
    pub fn busy_power(&self, f_mhz: f64) -> f64 {
        let v = self.voltage(f_mhz);
        self.idle_w + self.dynamic_coeff * v * v * (f_mhz / 1000.0)
    }

    /// Board power when idle.
    pub fn idle_power(&self) -> f64 {
        self.idle_w
    }

    /// The highest ladder frequency whose busy power stays within `tdp_w`,
    /// or `None` if even the bottom step exceeds it.
    pub fn power_cap(&self, ladder: &FreqLadder, tdp_w: f64) -> Option<FreqMhz> {
        ladder
            .steps()
            .iter()
            .rev()
            .copied()
            .find(|f| self.busy_power(f.as_f64()) <= tdp_w)
    }
}

/// RC thermal parameters of one device.
#[derive(Clone, Copy, Debug)]
pub struct ThermalParams {
    /// Ambient / coolant temperature (°C).
    pub ambient_c: f64,
    /// Thermal resistance junction-to-ambient (°C per W).
    pub r_th: f64,
    /// RC time constant (seconds).
    pub tau_s: f64,
    /// Junction temperature that triggers HW thermal throttling (°C).
    pub throttle_temp_c: f64,
    /// Temperature below which throttling releases (°C, hysteresis).
    pub release_temp_c: f64,
    /// The clamped SM frequency while thermally throttled (MHz).
    pub throttle_cap_mhz: f64,
    /// Board power limit (W); requests whose busy power exceeds it are
    /// power-capped.
    pub tdp_w: f64,
}

impl ThermalParams {
    /// Steady-state junction temperature at constant power draw.
    pub fn steady_state_c(&self, power_w: f64) -> f64 {
        self.ambient_c + self.r_th * power_w
    }
}

/// Junction temperature state, advanced analytically.
#[derive(Clone, Copy, Debug)]
pub struct ThermalState {
    /// Junction temperature (°C).
    pub temp_c: f64,
    /// Timestamp of the last update.
    pub at: SimTime,
}

impl ThermalState {
    /// Start at thermal equilibrium with the environment.
    pub fn equilibrium(params: &ThermalParams, at: SimTime) -> Self {
        ThermalState {
            temp_c: params.ambient_c,
            at,
        }
    }

    /// Advance to `to` under constant power `power_w`; exact first-order
    /// exponential: `T(t) = T_ss + (T0 − T_ss)·exp(−Δt/τ)`.
    pub fn advance(&mut self, params: &ThermalParams, to: SimTime, power_w: f64) {
        debug_assert!(to >= self.at, "thermal state cannot move backwards");
        let dt_s = to.saturating_since(self.at).as_secs_f64();
        let t_ss = params.steady_state_c(power_w);
        self.temp_c = t_ss + (self.temp_c - t_ss) * (-dt_s / params.tau_s).exp();
        self.at = to;
    }

    /// Time until the junction reaches `target_c` under constant power, or
    /// `None` if it never will (steady state below target, or already past
    /// it in the converging direction).
    pub fn time_to_reach(
        &self,
        params: &ThermalParams,
        target_c: f64,
        power_w: f64,
    ) -> Option<SimDuration> {
        let t_ss = params.steady_state_c(power_w);
        let t0 = self.temp_c;
        // Reaching requires the target to lie strictly between T0 and T_ss.
        if (t_ss - target_c).abs() < 1e-12 {
            return None;
        }
        let ratio = (t_ss - target_c) / (t_ss - t0);
        if ratio <= 0.0 || ratio >= 1.0 {
            // Already at/past the target (ratio >= 1) or diverging (<= 0).
            if (t0 < target_c) == (t_ss > target_c) && ratio > 0.0 {
                // covered by the ln branch below
            } else {
                return None;
            }
        }
        let dt_s = -params.tau_s * ratio.ln();
        if dt_s <= 0.0 || !dt_s.is_finite() {
            None
        } else {
            Some(SimDuration::from_secs_f64(dt_s))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ThermalParams {
        ThermalParams {
            ambient_c: 30.0,
            r_th: 0.15,
            tau_s: 8.0,
            throttle_temp_c: 90.0,
            release_temp_c: 80.0,
            throttle_cap_mhz: 900.0,
            tdp_w: 400.0,
        }
    }

    fn power() -> PowerModel {
        PowerModel {
            idle_w: 55.0,
            dynamic_coeff: 180.0,
            v_min: 0.70,
            v_max: 1.05,
            f_min_mhz: 210.0,
            f_max_mhz: 1410.0,
        }
    }

    #[test]
    fn voltage_interpolates_and_clamps() {
        let p = power();
        assert!((p.voltage(210.0) - 0.70).abs() < 1e-12);
        assert!((p.voltage(1410.0) - 1.05).abs() < 1e-12);
        assert!((p.voltage(810.0) - 0.875).abs() < 1e-12);
        assert_eq!(p.voltage(100.0), 0.70);
        assert_eq!(p.voltage(5000.0), 1.05);
    }

    #[test]
    fn busy_power_is_monotone_in_frequency() {
        let p = power();
        let mut last = 0.0;
        for f in (210..=1410).step_by(100) {
            let w = p.busy_power(f as f64);
            assert!(w > last, "power not monotone at {f} MHz");
            last = w;
        }
        assert!(p.busy_power(210.0) > p.idle_power());
    }

    #[test]
    fn power_cap_picks_highest_admissible_step() {
        let p = power();
        let ladder = crate::freq::FreqLadder::arithmetic(210, 1410, 15);
        // Generous TDP: cap is the top of the ladder.
        assert_eq!(p.power_cap(&ladder, 1000.0), Some(FreqMhz(1410)));
        // Tight TDP: cap must be strictly below the top but above the bottom.
        let cap = p.power_cap(&ladder, 200.0).unwrap();
        assert!(cap < FreqMhz(1410) && cap >= FreqMhz(210), "cap = {cap:?}");
        assert!(p.busy_power(cap.as_f64()) <= 200.0);
        // Impossible TDP.
        assert_eq!(p.power_cap(&ladder, 10.0), None);
    }

    #[test]
    fn thermal_advance_approaches_steady_state() {
        let pr = params();
        let mut s = ThermalState::equilibrium(&pr, SimTime::EPOCH);
        // 300 W -> T_ss = 30 + 45 = 75 C.
        s.advance(&pr, SimTime::from_nanos(8_000_000_000), 300.0); // one tau
        let expect = 75.0 + (30.0 - 75.0) * (-1.0f64).exp();
        assert!((s.temp_c - expect).abs() < 1e-9);
        // Far future: converged.
        s.advance(&pr, SimTime::from_nanos(200_000_000_000), 300.0);
        assert!((s.temp_c - 75.0).abs() < 1e-3);
    }

    #[test]
    fn thermal_cools_when_idle() {
        let pr = params();
        let mut s = ThermalState {
            temp_c: 85.0,
            at: SimTime::EPOCH,
        };
        s.advance(&pr, SimTime::from_nanos(100_000_000_000), 0.0);
        assert!(s.temp_c < 40.0, "temp = {}", s.temp_c);
        assert!(s.temp_c >= pr.ambient_c);
    }

    #[test]
    fn time_to_reach_roundtrips_with_advance() {
        let pr = params();
        let s = ThermalState {
            temp_c: 40.0,
            at: SimTime::EPOCH,
        };
        // 500 W -> T_ss = 105 C > 90 C: will throttle.
        let dt = s.time_to_reach(&pr, 90.0, 500.0).expect("must reach");
        let mut s2 = s;
        s2.advance(&pr, SimTime::EPOCH + dt, 500.0);
        assert!((s2.temp_c - 90.0).abs() < 1e-6, "temp = {}", s2.temp_c);
    }

    #[test]
    fn time_to_reach_none_when_steady_state_below_target() {
        let pr = params();
        let s = ThermalState {
            temp_c: 40.0,
            at: SimTime::EPOCH,
        };
        // 100 W -> T_ss = 45 C, never reaches 90 C.
        assert!(s.time_to_reach(&pr, 90.0, 100.0).is_none());
        // Cooling away from target.
        let hot = ThermalState {
            temp_c: 95.0,
            at: SimTime::EPOCH,
        };
        assert!(hot.time_to_reach(&pr, 96.0, 0.0).is_none());
    }

    #[test]
    fn time_to_reach_cooling_crossing() {
        let pr = params();
        // Hot device cooling toward ambient must cross the release threshold.
        let s = ThermalState {
            temp_c: 95.0,
            at: SimTime::EPOCH,
        };
        let dt = s
            .time_to_reach(&pr, pr.release_temp_c, 0.0)
            .expect("cools past release");
        let mut s2 = s;
        s2.advance(&pr, SimTime::EPOCH + dt, 0.0);
        assert!((s2.temp_c - pr.release_temp_c).abs() < 1e-6);
    }
}
