//! Seeded samplers for the simulator's stochastic components.
//!
//! Implemented from scratch on top of `rand`'s uniform source (the offline
//! crate set does not include `rand_distr`): Box–Muller normal, log-normal,
//! truncated normal, and weighted mixtures. All samplers are deterministic
//! functions of the RNG stream, which is what makes whole campaigns
//! reproducible from a single seed.

use rand::Rng;

/// Normal distribution sampler (Box–Muller, one variate per call).
#[derive(Clone, Copy, Debug)]
pub struct Normal {
    /// Mean.
    pub mu: f64,
    /// Standard deviation (>= 0).
    pub sigma: f64,
}

impl Normal {
    /// Construct; panics on negative or non-finite sigma.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            sigma >= 0.0 && sigma.is_finite(),
            "sigma must be >= 0, got {sigma}"
        );
        Normal { mu, sigma }
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.sigma == 0.0 {
            return self.mu;
        }
        // Box–Muller; guard against log(0).
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mu + self.sigma * z
    }

    /// Draw one sample clamped to `mu ± k·sigma` (rejects pathological tails
    /// without rejection-sampling loops; adequate for workload noise).
    pub fn sample_clamped<R: Rng + ?Sized>(&self, rng: &mut R, k: f64) -> f64 {
        let x = self.sample(rng);
        x.clamp(self.mu - k * self.sigma, self.mu + k * self.sigma)
    }
}

/// Log-normal sampler parameterised by the *underlying* normal's mu/sigma.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    /// Mean of ln(X).
    pub mu: f64,
    /// Stdev of ln(X).
    pub sigma: f64,
}

impl LogNormal {
    /// Construct a log-normal whose *median* is `median` and whose
    /// multiplicative spread is `sigma_ln` (stdev in log-space). The median
    /// parameterisation is far more intuitive for latency modelling.
    pub fn from_median(median: f64, sigma_ln: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        assert!(sigma_ln >= 0.0, "sigma_ln must be >= 0");
        LogNormal {
            mu: median.ln(),
            sigma: sigma_ln,
        }
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        Normal {
            mu: self.mu,
            sigma: self.sigma,
        }
        .sample(rng)
        .exp()
    }
}

/// One component of a latency mixture: a log-normal mode with a weight.
#[derive(Clone, Copy, Debug)]
pub struct MixtureComponent {
    /// Relative (unnormalised) weight.
    pub weight: f64,
    /// Median of this mode, in milliseconds (domain-specific but keeps the
    /// device descriptors readable).
    pub median_ms: f64,
    /// Log-space spread of this mode.
    pub sigma_ln: f64,
}

/// A weighted mixture of log-normal modes — the shape switching-latency
/// distributions take on real hardware (Sec. VII-B: "switching latencies for
/// some frequency pairs formed multiple distinct clusters").
#[derive(Clone, Debug)]
pub struct LatencyMixture {
    components: Vec<MixtureComponent>,
    total_weight: f64,
}

impl LatencyMixture {
    /// Build from components; panics if empty or all weights are zero.
    pub fn new(components: Vec<MixtureComponent>) -> Self {
        assert!(
            !components.is_empty(),
            "mixture needs at least one component"
        );
        let total_weight: f64 = components.iter().map(|c| c.weight).sum();
        assert!(total_weight > 0.0, "mixture weights must sum to > 0");
        LatencyMixture {
            components,
            total_weight,
        }
    }

    /// A single-mode mixture.
    pub fn single(median_ms: f64, sigma_ln: f64) -> Self {
        Self::new(vec![MixtureComponent {
            weight: 1.0,
            median_ms,
            sigma_ln,
        }])
    }

    /// Draw a latency in milliseconds.
    pub fn sample_ms<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let idx = self.pick_component(rng);
        self.sample_component_ms(idx, rng)
    }

    /// Pick a component index by weight. Exposed separately so callers can
    /// fix the *mode* with one RNG stream (e.g. a per-frequency-pair
    /// deterministic stream) while sampling *within* the mode from another —
    /// that is how per-pair/per-target heatmap structure stays stable across
    /// hundreds of repeated measurements.
    pub fn pick_component<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let mut pick = rng.gen::<f64>() * self.total_weight;
        for (i, c) in self.components.iter().enumerate() {
            if pick < c.weight {
                return i;
            }
            pick -= c.weight;
        }
        self.components.len() - 1
    }

    /// Sample from a specific component.
    pub fn sample_component_ms<R: Rng + ?Sized>(&self, idx: usize, rng: &mut R) -> f64 {
        let c = &self.components[idx];
        LogNormal::from_median(c.median_ms, c.sigma_ln).sample(rng)
    }

    /// The components (read-only view).
    pub fn components(&self) -> &[MixtureComponent] {
        &self.components
    }

    /// Scale every mode's median by `k` (per-unit manufacturing variation).
    pub fn scaled(&self, k: f64) -> Self {
        assert!(k > 0.0);
        LatencyMixture {
            components: self
                .components
                .iter()
                .map(|c| MixtureComponent {
                    median_ms: c.median_ms * k,
                    ..*c
                })
                .collect(),
            total_weight: self.total_weight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng(1);
        let d = Normal::new(10.0, 2.0);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 10.0).abs() < 0.06, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.15, "var = {var}");
    }

    #[test]
    fn normal_zero_sigma_is_constant() {
        let mut r = rng(2);
        let d = Normal::new(5.0, 0.0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), 5.0);
        }
    }

    #[test]
    fn normal_clamped_respects_bounds() {
        let mut r = rng(3);
        let d = Normal::new(0.0, 1.0);
        for _ in 0..10_000 {
            let x = d.sample_clamped(&mut r, 2.0);
            assert!((-2.0..=2.0).contains(&x));
        }
    }

    #[test]
    fn lognormal_median() {
        let mut r = rng(4);
        let d = LogNormal::from_median(15.0, 0.5);
        let n = 20_000;
        let mut xs: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        assert!((median - 15.0).abs() < 0.5, "median = {median}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn mixture_respects_weights() {
        let mut r = rng(5);
        // 80 % fast mode at ~5 ms, 20 % slow mode at ~250 ms.
        let m = LatencyMixture::new(vec![
            MixtureComponent {
                weight: 0.8,
                median_ms: 5.0,
                sigma_ln: 0.05,
            },
            MixtureComponent {
                weight: 0.2,
                median_ms: 250.0,
                sigma_ln: 0.05,
            },
        ]);
        let n = 10_000;
        let slow = (0..n).filter(|_| m.sample_ms(&mut r) > 100.0).count();
        let frac = slow as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.02, "slow fraction = {frac}");
    }

    #[test]
    fn mixture_scaling_scales_medians() {
        let m = LatencyMixture::single(10.0, 0.1).scaled(1.5);
        assert!((m.components()[0].median_ms - 15.0).abs() < 1e-12);
    }

    #[test]
    fn determinism_same_seed_same_stream() {
        let d = LogNormal::from_median(7.0, 0.3);
        let a: Vec<f64> = {
            let mut r = rng(9);
            (0..50).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng(9);
            (0..50).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn mixture_rejects_empty() {
        LatencyMixture::new(vec![]);
    }
}
