//! Piecewise-constant frequency-vs-time curves with exact cycle integration.
//!
//! The microbenchmark iteration is a fixed budget of arithmetic *cycles*; its
//! wall-clock duration is whatever the instantaneous SM clock makes of it:
//! `∫ f(t) dt = work_cycles`. A transition mid-iteration stretches exactly
//! that iteration — which is precisely the signal the LATEST methodology
//! detects. This module stores the curve and solves that integral both ways.

use latest_sim_clock::{SimDuration, SimTime};

/// One breakpoint: from `start` onward the clock runs at `freq_mhz` (until
/// the next breakpoint).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// When this frequency takes effect.
    pub start: SimTime,
    /// Frequency in MHz (f64: ramps may pass through non-ladder values).
    pub freq_mhz: f64,
}

/// A piecewise-constant frequency trajectory, breakpoints sorted by time.
///
/// The curve extends to +inf at the last breakpoint's frequency, and is
/// undefined before the first breakpoint (construction always seeds one at
/// the epoch).
#[derive(Clone, Debug)]
pub struct FreqTrajectory {
    segments: Vec<Segment>,
}

impl FreqTrajectory {
    /// A flat trajectory at `freq_mhz` from the epoch.
    pub fn flat(freq_mhz: f64) -> Self {
        assert!(freq_mhz > 0.0, "frequency must be positive");
        FreqTrajectory {
            segments: vec![Segment {
                start: SimTime::EPOCH,
                freq_mhz,
            }],
        }
    }

    /// Append a breakpoint: the clock becomes `freq_mhz` at `start`.
    ///
    /// Breakpoints may be appended at or after the last breakpoint only
    /// (time moves forward). An equal-time append replaces the previous
    /// breakpoint — the newest request wins, which models a second locked-
    /// clocks call overriding an unfinished one.
    pub fn push(&mut self, start: SimTime, freq_mhz: f64) {
        assert!(freq_mhz > 0.0, "frequency must be positive");
        let last = self.segments.last().expect("trajectory never empty");
        assert!(
            start >= last.start,
            "breakpoints must be appended in time order ({start:?} < {:?})",
            last.start
        );
        if start == last.start {
            self.segments.last_mut().unwrap().freq_mhz = freq_mhz;
        } else if (freq_mhz - last.freq_mhz).abs() > f64::EPSILON {
            self.segments.push(Segment { start, freq_mhz });
        }
    }

    /// Drop all breakpoints strictly after `t` (a new request overrides the
    /// planned remainder of an in-flight transition, the paper's "actual CPU
    /// core frequency is undefined" situation resolved deterministically in
    /// favour of the newest request).
    pub fn truncate_after(&mut self, t: SimTime) {
        let keep = self.segments.partition_point(|s| s.start <= t);
        self.segments.truncate(keep.max(1));
    }

    /// Frequency at time `t` (the segment active at `t`).
    pub fn freq_at(&self, t: SimTime) -> f64 {
        let idx = self.segments.partition_point(|s| s.start <= t);
        self.segments[idx.saturating_sub(1)].freq_mhz
    }

    /// The breakpoints (read-only).
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Cycles elapsed between `t0` and `t1` (exact piecewise integral).
    pub fn cycles_between(&self, t0: SimTime, t1: SimTime) -> f64 {
        assert!(t1 >= t0, "t1 must not precede t0");
        let mut cycles = 0.0;
        let mut cur = t0;
        let mut idx = self
            .segments
            .partition_point(|s| s.start <= t0)
            .saturating_sub(1);
        while cur < t1 {
            let seg_end = self
                .segments
                .get(idx + 1)
                .map(|s| s.start)
                .unwrap_or(t1)
                .min(t1);
            let dt_ns = seg_end.saturating_since(cur).as_nanos() as f64;
            cycles += dt_ns * self.segments[idx].freq_mhz * 1e-3;
            cur = seg_end;
            idx += 1;
            if idx >= self.segments.len() {
                // Last segment extends to +inf.
                let dt_ns = t1.saturating_since(cur).as_nanos() as f64;
                cycles += dt_ns * self.segments[self.segments.len() - 1].freq_mhz * 1e-3;
                break;
            }
        }
        cycles
    }

    /// The time at which `cycles` of work starting at `t0` complete:
    /// the unique `t1` with `cycles_between(t0, t1) = cycles`.
    pub fn advance_cycles(&self, t0: SimTime, cycles: f64) -> SimTime {
        assert!(cycles >= 0.0, "cycles must be non-negative");
        let mut remaining = cycles;
        let mut cur = t0;
        let mut idx = self
            .segments
            .partition_point(|s| s.start <= t0)
            .saturating_sub(1);
        loop {
            let freq = self.segments[idx].freq_mhz;
            let rate = freq * 1e-3; // cycles per ns
            let seg_end = self.segments.get(idx + 1).map(|s| s.start);
            match seg_end {
                Some(end) if end > cur => {
                    let span_ns = (end - cur).as_nanos() as f64;
                    let span_cycles = span_ns * rate;
                    if span_cycles >= remaining {
                        let dt = remaining / rate;
                        return cur + SimDuration::from_nanos(dt.round() as u64);
                    }
                    remaining -= span_cycles;
                    cur = end;
                    idx += 1;
                }
                Some(_) => {
                    idx += 1;
                }
                None => {
                    let dt = remaining / rate;
                    return cur + SimDuration::from_nanos(dt.round() as u64);
                }
            }
        }
    }

    /// A stateful forward-walking cursor for integrating many consecutive
    /// iterations in O(1) amortised per call instead of O(log n).
    pub fn cursor(&self, t0: SimTime) -> TrajectoryCursor<'_> {
        let idx = self
            .segments
            .partition_point(|s| s.start <= t0)
            .saturating_sub(1);
        TrajectoryCursor {
            traj: self,
            time: t0,
            idx,
        }
    }
}

/// Forward-only cursor over a [`FreqTrajectory`]; see
/// [`FreqTrajectory::cursor`].
#[derive(Clone, Debug)]
pub struct TrajectoryCursor<'a> {
    traj: &'a FreqTrajectory,
    time: SimTime,
    idx: usize,
}

impl<'a> TrajectoryCursor<'a> {
    /// Current position in time.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// Consume `cycles` of work from the current position; returns the
    /// completion time and advances the cursor to it.
    pub fn advance_cycles(&mut self, cycles: f64) -> SimTime {
        debug_assert!(cycles >= 0.0);
        let segments = &self.traj.segments;
        let mut remaining = cycles;
        loop {
            let freq = segments[self.idx].freq_mhz;
            let rate = freq * 1e-3;
            match segments.get(self.idx + 1) {
                Some(next) if next.start > self.time => {
                    let span_ns = (next.start - self.time).as_nanos() as f64;
                    let span_cycles = span_ns * rate;
                    if span_cycles >= remaining {
                        let dt = remaining / rate;
                        self.time += SimDuration::from_nanos(dt.round() as u64);
                        return self.time;
                    }
                    remaining -= span_cycles;
                    self.time = next.start;
                    self.idx += 1;
                }
                Some(_) => self.idx += 1,
                None => {
                    let dt = remaining / rate;
                    self.time += SimDuration::from_nanos(dt.round() as u64);
                    return self.time;
                }
            }
        }
    }

    /// Skip forward without consuming work (e.g. fixed iteration overhead).
    pub fn skip(&mut self, d: SimDuration) -> SimTime {
        self.time += d;
        let segments = &self.traj.segments;
        while self
            .segments_next_start()
            .map(|s| s <= self.time)
            .unwrap_or(false)
        {
            self.idx += 1;
        }
        debug_assert!(self.idx < segments.len());
        self.time
    }

    fn segments_next_start(&self) -> Option<SimTime> {
        self.traj.segments.get(self.idx + 1).map(|s| s.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn flat_trajectory_integration() {
        let traj = FreqTrajectory::flat(1000.0); // 1000 MHz = 1 cycle/ns
        assert_eq!(traj.cycles_between(t(0), t(500)), 500.0);
        assert_eq!(traj.advance_cycles(t(100), 250.0), t(350));
        assert_eq!(traj.freq_at(t(12345)), 1000.0);
    }

    #[test]
    fn two_segment_integration() {
        // 1000 MHz until 1000 ns, then 500 MHz.
        let mut traj = FreqTrajectory::flat(1000.0);
        traj.push(t(1000), 500.0);
        // 800 cycles from t=600: 400 ns at 1 c/ns -> 400 cycles, then
        // 400 cycles at 0.5 c/ns -> 800 ns. End = 600+400+800 = 1800.
        assert_eq!(traj.advance_cycles(t(600), 800.0), t(1800));
        // And the inverse:
        assert!((traj.cycles_between(t(600), t(1800)) - 800.0).abs() < 1e-9);
    }

    #[test]
    fn advance_and_cycles_are_inverse() {
        let mut traj = FreqTrajectory::flat(1410.0);
        traj.push(t(5_000), 900.0);
        traj.push(t(9_000), 1200.0);
        traj.push(t(20_000), 210.0);
        for &start_ns in &[0u64, 4_000, 5_000, 7_500, 19_999, 50_000] {
            for &cycles in &[1.0, 100.0, 5_000.0, 100_000.0] {
                let t0 = t(start_ns);
                let t1 = traj.advance_cycles(t0, cycles);
                let back = traj.cycles_between(t0, t1);
                // Rounding to whole ns loses < 1.5 cycles at <= 1.5 GHz.
                assert!(
                    (back - cycles).abs() < 2.0,
                    "start={start_ns} cycles={cycles} got {back}"
                );
            }
        }
    }

    #[test]
    fn freq_at_segment_boundaries() {
        let mut traj = FreqTrajectory::flat(100.0);
        traj.push(t(10), 200.0);
        assert_eq!(traj.freq_at(t(9)), 100.0);
        assert_eq!(traj.freq_at(t(10)), 200.0);
        assert_eq!(traj.freq_at(t(11)), 200.0);
    }

    #[test]
    fn equal_time_push_replaces() {
        let mut traj = FreqTrajectory::flat(100.0);
        traj.push(t(10), 200.0);
        traj.push(t(10), 300.0);
        assert_eq!(traj.segments().len(), 2);
        assert_eq!(traj.freq_at(t(10)), 300.0);
    }

    #[test]
    fn redundant_push_is_coalesced() {
        let mut traj = FreqTrajectory::flat(100.0);
        traj.push(t(10), 100.0);
        assert_eq!(traj.segments().len(), 1);
    }

    #[test]
    fn truncate_after_drops_future_plan() {
        let mut traj = FreqTrajectory::flat(100.0);
        traj.push(t(10), 200.0);
        traj.push(t(20), 300.0);
        traj.push(t(30), 400.0);
        traj.truncate_after(t(20));
        assert_eq!(traj.segments().len(), 3);
        assert_eq!(traj.freq_at(t(1_000)), 300.0);
        // Truncating before the first breakpoint keeps the seed segment.
        let mut traj2 = FreqTrajectory::flat(100.0);
        traj2.truncate_after(SimTime::EPOCH);
        assert_eq!(traj2.segments().len(), 1);
    }

    #[test]
    fn cursor_matches_free_function() {
        let mut traj = FreqTrajectory::flat(1410.0);
        traj.push(t(5_000), 900.0);
        traj.push(t(9_000), 1200.0);
        let mut cursor = traj.cursor(t(0));
        let mut free_t = t(0);
        for i in 0..100 {
            let w = 500.0 + (i % 7) as f64 * 37.0;
            let via_cursor = cursor.advance_cycles(w);
            let via_free = traj.advance_cycles(free_t, w);
            assert_eq!(via_cursor, via_free, "iter {i}");
            free_t = via_free;
        }
    }

    #[test]
    fn cursor_skip_crosses_segments() {
        let mut traj = FreqTrajectory::flat(1000.0);
        traj.push(t(100), 500.0);
        let mut cursor = traj.cursor(t(0));
        cursor.skip(SimDuration::from_nanos(150));
        // After the skip we are in the 500 MHz segment: 50 cycles take 100 ns.
        let end = cursor.advance_cycles(50.0);
        assert_eq!(end, t(250));
    }

    #[test]
    fn slow_clock_long_iteration() {
        // 210 MHz: 0.21 cycles/ns; 1e6 cycles should take ~4.7619 ms.
        let traj = FreqTrajectory::flat(210.0);
        let end = traj.advance_cycles(t(0), 1e6);
        let expect_ns = 1e6 / 0.21;
        assert!((end.as_nanos() as f64 - expect_ns).abs() < 2.0);
    }

    #[test]
    #[should_panic]
    fn push_out_of_order_panics() {
        let mut traj = FreqTrajectory::flat(100.0);
        traj.push(t(10), 200.0);
        traj.push(t(5), 300.0);
    }
}
