//! Property-based tests for the GPU simulator: trajectory integration
//! (work conservation, monotonicity), frequency ladders, the thermal RC
//! model and the workload noise machinery.

use latest_gpu_sim::freq::{FreqLadder, FreqMhz};
use latest_gpu_sim::noise::{LatencyMixture, LogNormal, Normal};
use latest_gpu_sim::sm::WorkloadParams;
use latest_gpu_sim::thermal::{ThermalParams, ThermalState};
use latest_gpu_sim::trajectory::FreqTrajectory;
use latest_sim_clock::{SimDuration, SimTime};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A random piecewise trajectory: ordered switch times with frequencies.
fn trajectory() -> impl Strategy<Value = FreqTrajectory> {
    (
        200.0..2000.0f64,
        prop::collection::vec((1u64..5_000_000, 200.0..2000.0f64), 0..8),
    )
        .prop_map(|(f0, switches)| {
            let mut traj = FreqTrajectory::flat(f0);
            let mut t = 0u64;
            for (dt, f) in switches {
                t += dt;
                traj.push(SimTime::from_nanos(t), f);
            }
            traj
        })
}

proptest! {
    // --- trajectory integration ------------------------------------------------

    #[test]
    fn work_is_conserved_through_advance_cycles(traj in trajectory(), t0 in 0u64..1_000_000, cycles in 1.0..1.0e7f64) {
        // advance_cycles must land exactly where cycles_between says the
        // requested work is complete.
        let start = SimTime::from_nanos(t0);
        let end = traj.advance_cycles(start, cycles);
        let integrated = traj.cycles_between(start, end);
        // One cycle of slack per segment boundary crossed (rounding to ns).
        let slack = 2.0 * traj.segments().len() as f64 + cycles * 1e-9;
        prop_assert!(
            (integrated - cycles).abs() <= slack + 2.0,
            "asked {cycles}, integrated {integrated}"
        );
    }

    #[test]
    fn advance_cycles_is_monotone_in_work(traj in trajectory(), t0 in 0u64..1_000_000, c in 1.0..1.0e6f64) {
        let start = SimTime::from_nanos(t0);
        let small = traj.advance_cycles(start, c);
        let large = traj.advance_cycles(start, c * 2.0);
        prop_assert!(large >= small);
        prop_assert!(small > start);
    }

    #[test]
    fn cycles_between_is_additive(traj in trajectory(), t0 in 0u64..1_000_000, d1 in 1u64..1_000_000, d2 in 1u64..1_000_000) {
        let a = SimTime::from_nanos(t0);
        let b = SimTime::from_nanos(t0 + d1);
        let c = SimTime::from_nanos(t0 + d1 + d2);
        let whole = traj.cycles_between(a, c);
        let parts = traj.cycles_between(a, b) + traj.cycles_between(b, c);
        prop_assert!((whole - parts).abs() <= 1e-6 * (1.0 + whole));
    }

    #[test]
    fn freq_at_is_piecewise_from_segments(traj in trajectory(), t in 0u64..10_000_000) {
        let time = SimTime::from_nanos(t);
        let f = traj.freq_at(time);
        // The reported frequency must be one of the segment frequencies.
        prop_assert!(traj.segments().iter().any(|s| s.freq_mhz == f));
        prop_assert!(f > 0.0);
    }

    #[test]
    fn cursor_agrees_with_advance_cycles(traj in trajectory(), t0 in 0u64..1_000_000, cycles in 1.0..1.0e6f64) {
        let start = SimTime::from_nanos(t0);
        let direct = traj.advance_cycles(start, cycles);
        let mut cursor = traj.cursor(start);
        let via_cursor = cursor.advance_cycles(cycles);
        prop_assert_eq!(direct, via_cursor);
    }

    #[test]
    fn cursor_chunked_advance_matches_one_shot(
        traj in trajectory(),
        t0 in 0u64..1_000_000,
        chunks in prop::collection::vec(1.0..1.0e5f64, 1..10),
    ) {
        let start = SimTime::from_nanos(t0);
        let total: f64 = chunks.iter().sum();
        let one_shot = traj.advance_cycles(start, total);
        let mut cursor = traj.cursor(start);
        let mut last = start;
        for c in chunks {
            last = cursor.advance_cycles(c);
        }
        // Chunked integration accumulates at most 1 ns rounding per chunk.
        prop_assert!(one_shot.signed_delta_ns(last).unsigned_abs() <= 12);
    }

    // --- frequency ladder --------------------------------------------------------

    #[test]
    fn snap_returns_a_ladder_value_at_minimal_distance(
        min in 100u32..500,
        steps in 1u32..120,
        step in 5u32..50,
        want in 0u32..4000,
    ) {
        let ladder = FreqLadder::arithmetic(min, min + steps * step, step);
        let snapped = ladder.snap(FreqMhz(want));
        prop_assert!(ladder.contains(snapped));
        for &f in ladder.steps() {
            prop_assert!(
                snapped.0.abs_diff(want) <= f.0.abs_diff(want),
                "snap {snapped:?} not nearest to {want} (found {f:?})"
            );
        }
    }

    #[test]
    fn subset_is_sorted_spans_and_deduplicated(n in 2usize..30) {
        let ladder = FreqLadder::arithmetic(210, 1410, 15);
        let subset = ladder.subset(n);
        prop_assert!(subset.len() <= n);
        prop_assert_eq!(subset.first().copied(), Some(ladder.min()));
        prop_assert_eq!(subset.last().copied(), Some(ladder.max()));
        for w in subset.windows(2) {
            prop_assert!(w[0] < w[1]);
            prop_assert!(ladder.contains(w[0]) && ladder.contains(w[1]));
        }
    }

    #[test]
    fn between_is_exclusive_ordered_path(a in 0usize..80, b in 0usize..80) {
        let ladder = FreqLadder::arithmetic(210, 1410, 15);
        let from = ladder.steps()[a.min(ladder.len() - 1)];
        let to = ladder.steps()[b.min(ladder.len() - 1)];
        let path = ladder.between(from, to);
        // Exclusive of both endpoints, strictly between them, monotone in
        // the traversal direction, all on the ladder.
        let (lo, hi) = (from.min(to), from.max(to));
        let expected = ((hi.0 - lo.0) as usize / 15).saturating_sub(1);
        prop_assert_eq!(path.len(), expected);
        for w in path.windows(2) {
            if from <= to {
                prop_assert!(w[0] < w[1]);
            } else {
                prop_assert!(w[0] > w[1]);
            }
        }
        for f in &path {
            prop_assert!(*f > lo && *f < hi);
            prop_assert!(ladder.contains(*f));
        }
    }

    // --- thermal model --------------------------------------------------------------

    #[test]
    fn temperature_approaches_steady_state_monotonically(
        power in 50.0..500.0f64,
        dts in prop::collection::vec(1u64..10_000_000_000, 1..20),
    ) {
        let params = ThermalParams {
            ambient_c: 30.0,
            r_th: 0.12,
            tau_s: 20.0,
            throttle_temp_c: 90.0,
            release_temp_c: 85.0,
            throttle_cap_mhz: 900.0,
            tdp_w: 400.0,
        };
        let t_ss = params.steady_state_c(power);
        let mut state = ThermalState::equilibrium(&params, SimTime::EPOCH);
        let mut now = SimTime::EPOCH;
        let mut last = state.temp_c;
        for dt in dts {
            now += SimDuration::from_nanos(dt);
            state.advance(&params, now, power);
            // Heating from ambient: monotone rise, never overshooting.
            prop_assert!(state.temp_c >= last - 1e-9);
            prop_assert!(state.temp_c <= t_ss + 1e-9);
            last = state.temp_c;
        }
    }

    #[test]
    fn time_to_reach_is_consistent_with_advance(power in 100.0..500.0f64, frac in 0.1..0.9f64) {
        let params = ThermalParams {
            ambient_c: 30.0,
            r_th: 0.12,
            tau_s: 10.0,
            throttle_temp_c: 90.0,
            release_temp_c: 85.0,
            throttle_cap_mhz: 900.0,
            tdp_w: 400.0,
        };
        let t_ss = params.steady_state_c(power);
        let target = 30.0 + frac * (t_ss - 30.0);
        let state = ThermalState::equilibrium(&params, SimTime::EPOCH);
        if let Some(eta) = state.time_to_reach(&params, target, power) {
            let mut check = state;
            check.advance(&params, SimTime::EPOCH + eta, power);
            prop_assert!((check.temp_c - target).abs() < 0.05, "reached {} vs {target}", check.temp_c);
        } else {
            // Only legitimate when the target is unreachable.
            prop_assert!(target > t_ss || target <= state.temp_c);
        }
    }

    // --- workload & noise ---------------------------------------------------------------

    #[test]
    fn expected_iteration_time_scales_inversely_with_frequency(cycles in 1.0e3..1.0e6f64, f in 200.0..2000.0f64) {
        let w = WorkloadParams { work_cycles: cycles, ..WorkloadParams::default_micro() };
        let at_f = w.expected_iter_ns(f);
        let at_2f = w.expected_iter_ns(2.0 * f);
        prop_assert!((at_f / at_2f - 2.0).abs() < 1e-9);
    }

    #[test]
    fn clamped_normal_stays_in_band(mu in -100.0..100.0f64, sigma in 0.01..50.0f64, k in 0.5..4.0f64, seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = Normal::new(mu, sigma);
        for _ in 0..64 {
            let x = n.sample_clamped(&mut rng, k);
            prop_assert!(x >= mu - k * sigma - 1e-9 && x <= mu + k * sigma + 1e-9);
        }
    }

    #[test]
    fn log_normal_is_positive_with_requested_median(median in 0.1..1000.0f64, sigma in 0.01..1.0f64, seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let ln = LogNormal::from_median(median, sigma);
        let mut below = 0usize;
        const N: usize = 400;
        for _ in 0..N {
            let x = ln.sample(&mut rng);
            prop_assert!(x > 0.0);
            if x < median {
                below += 1;
            }
        }
        // The sample median must straddle the configured median.
        prop_assert!((N / 5..4 * N / 5).contains(&below), "below-median count {below}");
    }

    #[test]
    fn mixture_samples_only_from_components(seed in 0u64..500) {
        let mix = LatencyMixture::single(15.0, 0.05);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..32 {
            let ms = mix.sample_ms(&mut rng);
            // Single lognormal component around 15 ms with 5 % sigma: all
            // samples live within a generous factor-2 band.
            prop_assert!((7.5..30.0).contains(&ms), "sample {ms}");
        }
    }

    #[test]
    fn mixture_scaling_scales_samples(seed in 0u64..200, k in 0.1..10.0f64) {
        let base = LatencyMixture::single(20.0, 0.1);
        let scaled = base.scaled(k);
        let mut r1 = ChaCha8Rng::seed_from_u64(seed);
        let mut r2 = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..16 {
            let a = base.sample_ms(&mut r1);
            let b = scaled.sample_ms(&mut r2);
            prop_assert!((b / a - k).abs() < 1e-9 * (1.0 + k));
        }
    }
}
