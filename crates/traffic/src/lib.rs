//! Deterministic open-loop traffic generators — the synthetic load a
//! governor daemon is scored against.
//!
//! The paper's closing argument is that switching latency matters to a
//! *runtime system*; to score one closed-loop we need load over time. This
//! crate produces it: seedable request streams (arrival time, work amount,
//! optional deadline) generated open-loop — arrivals do not react to the
//! server, so two policies see the *same* offered load and their scorecards
//! are comparable.
//!
//! * [`spec`] — [`TrafficSpec`]: the JSON scenario format (a name, a
//!   [`TrafficShape`], duration, seed, per-request work and optional
//!   deadline slack) with exhaustive validation, mirroring the campaign
//!   spec machinery in `latest-core`.
//! * [`stream`] — [`Request`] / [`TrafficTrace`]: the generated stream and
//!   the seeded generators behind [`TrafficSpec::generate`].
//! * [`registry`] — [`TrafficRegistry`]: the built-in scenario family
//!   (*steady*, *bursty*, *diurnal*, *gaming*, *deadline*) addressable by
//!   name from the `latest govern` CLI.
//!
//! Generation is bitwise deterministic: the same spec (same seed included)
//! always yields the same trace, on any host.

pub mod registry;
pub mod spec;
pub mod stream;

pub use registry::TrafficRegistry;
pub use spec::{TrafficError, TrafficErrors, TrafficShape, TrafficSpec};
pub use stream::{Request, TrafficTrace};
