//! Generated request streams and the seeded generators behind them.
//!
//! Generation is *open-loop*: arrival times are drawn once, up front, from
//! the spec's arrival process — they do not react to how fast the server
//! drains the queue. That is what makes policy scorecards comparable: two
//! governors are offered bit-identical load.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::spec::{TrafficErrors, TrafficShape, TrafficSpec};

/// One request offered to the device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Request {
    /// Arrival instant (ms from scenario start).
    pub arrival_ms: f64,
    /// Work amount, expressed as service time at the device's reference
    /// (maximum) frequency (ms). Lower clocks stretch it proportionally.
    pub work_ms: f64,
    /// Absolute completion deadline (ms from scenario start), if any.
    pub deadline_ms: Option<f64>,
}

impl Request {
    /// Whether a completion at `t_ms` misses this request's deadline.
    pub fn missed_at(&self, t_ms: f64) -> bool {
        self.deadline_ms.is_some_and(|d| t_ms > d)
    }
}

/// A fully generated scenario: the spec's name plus its request stream,
/// sorted by arrival time.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficTrace {
    /// Scenario name (from the spec).
    pub name: String,
    /// Shape tag (from the spec).
    pub shape: String,
    /// Generator seed the stream was drawn under.
    pub seed: u64,
    /// The offered requests, ascending by `arrival_ms`.
    pub requests: Vec<Request>,
}

impl TrafficTrace {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Last arrival instant (ms), 0 for an empty trace.
    pub fn last_arrival_ms(&self) -> f64 {
        self.requests.last().map_or(0.0, |r| r.arrival_ms)
    }

    /// Total offered work (ms at the reference frequency).
    pub fn offered_work_ms(&self) -> f64 {
        self.requests.iter().map(|r| r.work_ms).sum()
    }

    /// How many requests carry a deadline.
    pub fn with_deadline(&self) -> usize {
        self.requests
            .iter()
            .filter(|r| r.deadline_ms.is_some())
            .count()
    }
}

/// Exponential inter-arrival sample for `rate_hz` (ms). `f64::INFINITY`
/// when the rate is zero (no arrivals in this regime).
fn exp_interarrival_ms(rng: &mut ChaCha8Rng, rate_hz: f64) -> f64 {
    if rate_hz <= 0.0 {
        return f64::INFINITY;
    }
    // Inverse-CDF sampling; 1-u keeps the argument in (0, 1].
    let u: f64 = rng.gen();
    -(1.0 - u).ln() * 1_000.0 / rate_hz
}

/// Per-request work sample: uniform jitter of relative half-width
/// `jitter` around `mean_ms`, floored away from zero.
fn sample_work_ms(rng: &mut ChaCha8Rng, mean_ms: f64, jitter: f64) -> f64 {
    if jitter <= 0.0 {
        return mean_ms;
    }
    let u: f64 = rng.gen_range(-1.0..1.0);
    (mean_ms * (1.0 + jitter * u)).max(0.05)
}

impl TrafficSpec {
    /// Generate the request stream this spec describes. Validates first;
    /// the stream is a pure function of the spec (seed included).
    pub fn generate(&self) -> Result<TrafficTrace, TrafficErrors> {
        self.validate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut requests = match &self.shape {
            TrafficShape::Steady { rate_hz } => self.poisson_arrivals(&mut rng, *rate_hz),
            TrafficShape::Bursty {
                burst_rate_hz,
                gap_rate_hz,
                burst_ms,
                gap_ms,
            } => self.bursty_arrivals(&mut rng, *burst_rate_hz, *gap_rate_hz, *burst_ms, *gap_ms),
            TrafficShape::Diurnal {
                peak_rate_hz,
                trough_rate_hz,
                period_ms,
            } => self.diurnal_arrivals(&mut rng, *peak_rate_hz, *trough_rate_hz, *period_ms),
            TrafficShape::Gaming {
                frame_rate_hz,
                heavy_every,
                heavy_factor,
            } => self.gaming_arrivals(&mut rng, *frame_rate_hz, *heavy_every, *heavy_factor),
            TrafficShape::Deadline {
                rate_hz,
                deadline_ms,
            } => {
                let mut reqs = self.poisson_arrivals(&mut rng, *rate_hz);
                for r in &mut reqs {
                    r.deadline_ms = Some(r.arrival_ms + deadline_ms);
                }
                reqs
            }
        };
        // Generic slack-based deadlines for shapes without an intrinsic
        // deadline rule.
        if let Some(slack) = self.deadline_slack {
            if !matches!(
                self.shape,
                TrafficShape::Gaming { .. } | TrafficShape::Deadline { .. }
            ) {
                for r in &mut requests {
                    r.deadline_ms = Some(r.arrival_ms + slack * r.work_ms);
                }
            }
        }
        Ok(TrafficTrace {
            name: self.name.clone(),
            shape: self.shape.kind().to_string(),
            seed: self.seed,
            requests,
        })
    }

    fn poisson_arrivals(&self, rng: &mut ChaCha8Rng, rate_hz: f64) -> Vec<Request> {
        let mut requests = Vec::new();
        let mut t = 0.0;
        loop {
            t += exp_interarrival_ms(rng, rate_hz);
            if t >= self.duration_ms {
                break;
            }
            requests.push(Request {
                arrival_ms: t,
                work_ms: sample_work_ms(rng, self.work_ms, self.work_jitter),
                deadline_ms: None,
            });
        }
        requests
    }

    fn bursty_arrivals(
        &self,
        rng: &mut ChaCha8Rng,
        burst_rate_hz: f64,
        gap_rate_hz: f64,
        burst_ms: f64,
        gap_ms: f64,
    ) -> Vec<Request> {
        let cycle_ms = burst_ms + gap_ms;
        let mut requests = Vec::new();
        let mut t: f64 = 0.0;
        while t < self.duration_ms {
            // The cycle starts with a burst; the gap follows.
            let phase = t.rem_euclid(cycle_ms);
            let (rate, window_end) = if phase < burst_ms {
                (burst_rate_hz, t - phase + burst_ms)
            } else {
                (gap_rate_hz, t - phase + cycle_ms)
            };
            let dt = exp_interarrival_ms(rng, rate);
            if t + dt >= window_end {
                // Crossed into the next window: the exponential is
                // memoryless, so resampling at the new rate is exact.
                t = window_end;
                continue;
            }
            t += dt;
            if t >= self.duration_ms {
                break;
            }
            requests.push(Request {
                arrival_ms: t,
                work_ms: sample_work_ms(rng, self.work_ms, self.work_jitter),
                deadline_ms: None,
            });
        }
        requests
    }

    fn diurnal_arrivals(
        &self,
        rng: &mut ChaCha8Rng,
        peak_rate_hz: f64,
        trough_rate_hz: f64,
        period_ms: f64,
    ) -> Vec<Request> {
        // Non-homogeneous Poisson by thinning against the peak rate. The
        // cycle starts at the trough (night) and peaks half a period in.
        let rate_at = |t_ms: f64| {
            let phase = (t_ms / period_ms) * std::f64::consts::TAU;
            trough_rate_hz + (peak_rate_hz - trough_rate_hz) * 0.5 * (1.0 - phase.cos())
        };
        let mut requests = Vec::new();
        let mut t = 0.0;
        loop {
            t += exp_interarrival_ms(rng, peak_rate_hz);
            if t >= self.duration_ms {
                break;
            }
            let keep: f64 = rng.gen();
            if keep * peak_rate_hz >= rate_at(t) {
                continue;
            }
            requests.push(Request {
                arrival_ms: t,
                work_ms: sample_work_ms(rng, self.work_ms, self.work_jitter),
                deadline_ms: None,
            });
        }
        requests
    }

    fn gaming_arrivals(
        &self,
        rng: &mut ChaCha8Rng,
        frame_rate_hz: f64,
        heavy_every: u64,
        heavy_factor: f64,
    ) -> Vec<Request> {
        let frame_ms = 1_000.0 / frame_rate_hz;
        let budget = self.deadline_slack.map_or(frame_ms, |s| s * self.work_ms);
        let mut requests = Vec::new();
        let mut frame: u64 = 0;
        loop {
            let nominal = frame as f64 * frame_ms;
            if nominal >= self.duration_ms {
                break;
            }
            // Frame-paced with a small (±10 % of the interval) jitter;
            // arrivals never precede the scenario start.
            let jitter: f64 = rng.gen_range(-0.1..0.1) * frame_ms;
            let arrival = (nominal + jitter).max(0.0);
            let heavy = heavy_every > 0 && frame % heavy_every == heavy_every - 1;
            let mut work = sample_work_ms(rng, self.work_ms, self.work_jitter);
            if heavy {
                work *= heavy_factor;
            }
            requests.push(Request {
                arrival_ms: arrival,
                work_ms: work,
                // The frame budget is the deadline: a late frame is a
                // dropped frame.
                deadline_ms: Some(arrival + budget),
            });
            frame += 1;
        }
        requests.sort_by(|a, b| a.arrival_ms.partial_cmp(&b.arrival_ms).unwrap());
        requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TrafficShape;

    fn spec(shape: TrafficShape) -> TrafficSpec {
        TrafficSpec {
            name: shape.kind().to_string(),
            shape,
            duration_ms: 5_000.0,
            seed: 42,
            ..TrafficSpec::default()
        }
    }

    fn all_shapes() -> Vec<TrafficSpec> {
        vec![
            spec(TrafficShape::Steady { rate_hz: 80.0 }),
            spec(TrafficShape::Bursty {
                burst_rate_hz: 150.0,
                gap_rate_hz: 4.0,
                burst_ms: 260.0,
                gap_ms: 420.0,
            }),
            spec(TrafficShape::Diurnal {
                peak_rate_hz: 120.0,
                trough_rate_hz: 5.0,
                period_ms: 2_000.0,
            }),
            spec(TrafficShape::Gaming {
                frame_rate_hz: 60.0,
                heavy_every: 48,
                heavy_factor: 3.0,
            }),
            spec(TrafficShape::Deadline {
                rate_hz: 40.0,
                deadline_ms: 25.0,
            }),
        ]
    }

    #[test]
    fn every_shape_generates_a_sorted_bounded_stream() {
        for s in all_shapes() {
            let trace = s.generate().unwrap();
            assert!(!trace.is_empty(), "{} generated nothing", s.name);
            let mut last = 0.0;
            for r in &trace.requests {
                assert!(r.arrival_ms >= last, "{}: unsorted arrivals", s.name);
                assert!(r.arrival_ms < s.duration_ms, "{}: arrival past end", s.name);
                assert!(r.work_ms > 0.0);
                last = r.arrival_ms;
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for s in all_shapes() {
            let a = s.generate().unwrap();
            let b = s.generate().unwrap();
            assert_eq!(a, b, "{}: same seed must reproduce", s.name);
            let reseeded = TrafficSpec {
                seed: 43,
                ..s.clone()
            }
            .generate()
            .unwrap();
            assert_ne!(
                a.requests, reseeded.requests,
                "{}: different seed must differ",
                s.name
            );
        }
    }

    #[test]
    fn steady_rate_is_approximately_honoured() {
        let s = spec(TrafficShape::Steady { rate_hz: 100.0 });
        let trace = s.generate().unwrap();
        // 100 Hz over 5 s ⇒ ~500 arrivals; Poisson 5σ ≈ 112.
        assert!(
            (trace.len() as f64 - 500.0).abs() < 120.0,
            "got {} arrivals",
            trace.len()
        );
    }

    #[test]
    fn bursty_concentrates_arrivals_in_bursts() {
        let s = spec(TrafficShape::Bursty {
            burst_rate_hz: 150.0,
            gap_rate_hz: 4.0,
            burst_ms: 260.0,
            gap_ms: 420.0,
        });
        let trace = s.generate().unwrap();
        let cycle = 680.0;
        let in_burst = trace
            .requests
            .iter()
            .filter(|r| r.arrival_ms.rem_euclid(cycle) < 260.0)
            .count();
        assert!(
            in_burst as f64 > 0.85 * trace.len() as f64,
            "{in_burst} of {} in bursts",
            trace.len()
        );
    }

    #[test]
    fn diurnal_peak_outweighs_trough() {
        let s = spec(TrafficShape::Diurnal {
            peak_rate_hz: 120.0,
            trough_rate_hz: 5.0,
            period_ms: 2_000.0,
        });
        let trace = s.generate().unwrap();
        // Peak half of each cycle is [500, 1500) of the 2 s period.
        let peak_half = trace
            .requests
            .iter()
            .filter(|r| {
                let phase = r.arrival_ms.rem_euclid(2_000.0);
                (500.0..1_500.0).contains(&phase)
            })
            .count();
        assert!(
            peak_half as f64 > 0.7 * trace.len() as f64,
            "{peak_half} of {}",
            trace.len()
        );
    }

    #[test]
    fn gaming_paces_frames_and_marks_heavy_ones() {
        let s = spec(TrafficShape::Gaming {
            frame_rate_hz: 60.0,
            heavy_every: 10,
            heavy_factor: 3.0,
        });
        let trace = s.generate().unwrap();
        // 60 fps over 5 s ⇒ 300 frames exactly (frame pacing, not Poisson).
        assert_eq!(trace.len(), 300);
        assert_eq!(trace.with_deadline(), trace.len());
        let heavy = trace
            .requests
            .iter()
            .filter(|r| r.work_ms > 2.0 * s.work_ms)
            .count();
        assert_eq!(heavy, 30, "every 10th frame is heavy");
    }

    #[test]
    fn deadline_shape_stamps_absolute_offsets() {
        let s = spec(TrafficShape::Deadline {
            rate_hz: 40.0,
            deadline_ms: 25.0,
        });
        let trace = s.generate().unwrap();
        assert_eq!(trace.with_deadline(), trace.len());
        for r in &trace.requests {
            assert!((r.deadline_ms.unwrap() - r.arrival_ms - 25.0).abs() < 1e-9);
        }
    }

    #[test]
    fn slack_deadlines_scale_with_sampled_work() {
        let s = TrafficSpec {
            deadline_slack: Some(6.0),
            ..spec(TrafficShape::Steady { rate_hz: 50.0 })
        };
        let trace = s.generate().unwrap();
        for r in &trace.requests {
            let d = r.deadline_ms.expect("slack stamps deadlines");
            assert!((d - r.arrival_ms - 6.0 * r.work_ms).abs() < 1e-9);
        }
    }

    #[test]
    fn missed_at_respects_the_deadline() {
        let r = Request {
            arrival_ms: 10.0,
            work_ms: 5.0,
            deadline_ms: Some(40.0),
        };
        assert!(!r.missed_at(39.9));
        assert!(r.missed_at(40.1));
        let no_deadline = Request {
            deadline_ms: None,
            ..r
        };
        assert!(!no_deadline.missed_at(1e9));
    }

    #[test]
    fn invalid_spec_refuses_to_generate() {
        let s = TrafficSpec {
            duration_ms: 0.0,
            ..spec(TrafficShape::Steady { rate_hz: 10.0 })
        };
        assert!(s.generate().is_err());
    }
}
