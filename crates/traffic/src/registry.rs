//! The built-in traffic scenario family.
//!
//! `latest govern` accepts either a scenario file or one of these names;
//! the files under `scenarios/traffic/` are the same specs serialised, and
//! a test pins that equivalence so the two entry points cannot drift.

use crate::spec::{TrafficShape, TrafficSpec};

/// Named collection of ready-to-run traffic scenarios.
#[derive(Clone, Debug)]
pub struct TrafficRegistry {
    specs: Vec<TrafficSpec>,
}

impl TrafficRegistry {
    /// The built-in family: one scenario per [`TrafficShape`], tuned so the
    /// policy comparison on a real latency table is informative (bursty and
    /// deadline shapes produce deadline pressure; diurnal and gaming stress
    /// hysteresis and pacing).
    pub fn builtin() -> Self {
        TrafficRegistry {
            specs: vec![
                TrafficSpec {
                    name: "steady".to_string(),
                    description: "Constant 60 Hz Poisson service load".to_string(),
                    shape: TrafficShape::Steady { rate_hz: 60.0 },
                    duration_ms: 10_000.0,
                    seed: 1,
                    work_ms: 5.0,
                    work_jitter: 0.2,
                    deadline_slack: None,
                },
                TrafficSpec {
                    name: "bursty".to_string(),
                    description: "Inference bursts with sparse gaps; tight slack deadlines"
                        .to_string(),
                    shape: TrafficShape::Bursty {
                        burst_rate_hz: 150.0,
                        gap_rate_hz: 4.0,
                        burst_ms: 260.0,
                        gap_ms: 420.0,
                    },
                    duration_ms: 12_000.0,
                    seed: 7,
                    work_ms: 5.0,
                    work_jitter: 0.25,
                    deadline_slack: Some(6.0),
                },
                TrafficSpec {
                    name: "diurnal".to_string(),
                    description: "Day/night cycle between 5 Hz and 120 Hz".to_string(),
                    shape: TrafficShape::Diurnal {
                        peak_rate_hz: 120.0,
                        trough_rate_hz: 5.0,
                        period_ms: 4_000.0,
                    },
                    duration_ms: 16_000.0,
                    seed: 11,
                    work_ms: 5.0,
                    work_jitter: 0.2,
                    deadline_slack: None,
                },
                TrafficSpec {
                    name: "gaming".to_string(),
                    description: "60 fps frame-paced load with periodic heavy frames".to_string(),
                    shape: TrafficShape::Gaming {
                        frame_rate_hz: 60.0,
                        heavy_every: 48,
                        heavy_factor: 3.0,
                    },
                    duration_ms: 10_000.0,
                    seed: 13,
                    work_ms: 6.0,
                    work_jitter: 0.2,
                    deadline_slack: None,
                },
                TrafficSpec {
                    name: "deadline".to_string(),
                    description: "Poisson jobs with a hard 25 ms completion deadline".to_string(),
                    shape: TrafficShape::Deadline {
                        rate_hz: 40.0,
                        deadline_ms: 25.0,
                    },
                    duration_ms: 12_000.0,
                    seed: 17,
                    work_ms: 5.0,
                    work_jitter: 0.2,
                    deadline_slack: None,
                },
            ],
        }
    }

    /// Look a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&TrafficSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// All scenario names, in registry order.
    pub fn names(&self) -> Vec<&str> {
        self.specs.iter().map(|s| s.name.as_str()).collect()
    }

    /// All scenarios, in registry order.
    pub fn specs(&self) -> &[TrafficSpec] {
        &self.specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_covers_every_shape_exactly_once() {
        let reg = TrafficRegistry::builtin();
        let kinds: Vec<&str> = reg.specs().iter().map(|s| s.shape.kind()).collect();
        assert_eq!(kinds, TrafficShape::KINDS);
    }

    #[test]
    fn builtin_specs_validate_and_generate() {
        for spec in TrafficRegistry::builtin().specs() {
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            let trace = spec.generate().unwrap();
            assert!(
                trace.len() > 50,
                "{}: only {} requests",
                spec.name,
                trace.len()
            );
        }
    }

    #[test]
    fn names_are_addressable() {
        let reg = TrafficRegistry::builtin();
        for name in reg.names() {
            assert_eq!(reg.get(name).unwrap().name, name);
        }
        assert!(reg.get("sawtooth").is_none());
    }

    #[test]
    fn deadline_pressure_scenarios_carry_deadlines() {
        let reg = TrafficRegistry::builtin();
        for name in ["bursty", "gaming", "deadline"] {
            let trace = reg.get(name).unwrap().generate().unwrap();
            assert_eq!(trace.with_deadline(), trace.len(), "{name}");
        }
        for name in ["steady", "diurnal"] {
            let trace = reg.get(name).unwrap().generate().unwrap();
            assert_eq!(trace.with_deadline(), 0, "{name}");
        }
    }
}
