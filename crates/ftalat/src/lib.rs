//! FTaLaT — the CPU frequency-transition-latency baseline (Sec. IV).
//!
//! The paper derives its accelerator methodology from the FTaLaT benchmark
//! (Mazouz et al., "Evaluation of CPU frequency transition latency"), and
//! its headline comparison (Sec. VII) is that *CPUs complete frequency
//! transitions in microseconds to units of milliseconds, while GPUs need
//! tens to hundreds of milliseconds*. Regenerating that comparison requires
//! a CPU substrate and the original two-phase methodology:
//!
//! * [`cpu`] — a simulated DVFS CPU core. Unlike the GPU, the workload runs
//!   *on* the measuring device: iterations advance the host clock directly,
//!   timestamps are cycle-accurate (no 1 µs device-timer quantisation), and
//!   the frequency-change request is a cheap register/sysfs write with
//!   microsecond-scale transition latency.
//! * [`methodology`] — FTaLaT's two phases: per-frequency characterisation,
//!   then transition measurement using the **confidence-interval detection
//!   band** (`mean ± 2·stderr`) plus a 100-iteration confirmation window.
//!   The band choice is kept faithful — including its tendency to reject
//!   honest iterations when the sample count grows, which is exactly the
//!   scaling flaw Sec. V-A fixes for accelerators with the 2-standard-
//!   deviation band.
//! * [`trace`] — frequency-vs-time traces of a single transition
//!   (regenerates the Fig. 1 timeline).

pub mod cpu;
pub mod methodology;
pub mod trace;

pub use cpu::{intel_skylake_sp, slow_governor_cpu, CpuSpec, SimCpuCore};
pub use methodology::{ftalat_phase1, measure_transition, CpuFreqStats, TransitionMeasurement};
pub use trace::{transition_trace, TraceEvent, TransitionTrace};
