//! Frequency-vs-time traces of a single transition — the data behind the
//! paper's Fig. 1 (CPU request → transition timeline).

use latest_gpu_sim::freq::FreqMhz;
use latest_sim_clock::{SimDuration, SimTime};

use crate::cpu::SimCpuCore;

/// One point of a transition timeline.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Time relative to the change request (ns; negative = before).
    pub t_rel_ns: i64,
    /// Core frequency from this instant on (MHz).
    pub freq_mhz: f64,
}

/// A rendered transition timeline.
#[derive(Clone, Debug)]
pub struct TransitionTrace {
    /// The initial frequency.
    pub init: FreqMhz,
    /// The target frequency.
    pub target: FreqMhz,
    /// When the request was issued (absolute).
    pub request: SimTime,
    /// Frequency breakpoints relative to the request.
    pub events: Vec<TraceEvent>,
    /// Ground-truth transition latency (ns).
    pub latency_ns: u64,
}

/// Drive one transition on `core` and capture its timeline: settle at
/// `init`, request `target`, keep the core busy until well past the settle
/// point, then extract the trajectory breakpoints around the request.
pub fn transition_trace(
    core: &mut SimCpuCore,
    init: FreqMhz,
    target: FreqMhz,
    work_cycles: f64,
) -> TransitionTrace {
    core.set_frequency(init);
    core.run_iterations(64, work_cycles);
    core.set_frequency(target);
    let (request, settle) = core.last_transition().expect("transition recorded");
    // Keep running so the trace extends beyond the settle point.
    core.run_iterations(64, work_cycles);

    let window_start = request - SimDuration::from_micros(50).min(request - SimTime::EPOCH);
    let events: Vec<TraceEvent> = core
        .trajectory()
        .segments()
        .iter()
        .filter(|s| s.start >= window_start)
        .map(|s| TraceEvent {
            t_rel_ns: s.start.signed_delta_ns(request),
            freq_mhz: s.freq_mhz,
        })
        .collect();

    TransitionTrace {
        init,
        target,
        request,
        events,
        latency_ns: settle.saturating_since(request).as_nanos(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::intel_skylake_sp;
    use latest_sim_clock::SharedClock;

    #[test]
    fn trace_shows_request_then_settle() {
        let mut core = SimCpuCore::new(intel_skylake_sp(), 9, SharedClock::new());
        let tr = transition_trace(&mut core, FreqMhz(3000), FreqMhz(1200), 60_000.0);
        assert_eq!(tr.init, FreqMhz(3000));
        assert_eq!(tr.target, FreqMhz(1200));
        // The settle event must appear after the request, at the ground
        // truth latency, with the target frequency.
        let settle_event = tr
            .events
            .iter()
            .find(|e| e.t_rel_ns > 0 && (e.freq_mhz - 1200.0).abs() < 1e-9)
            .expect("settle event present");
        assert_eq!(settle_event.t_rel_ns as u64, tr.latency_ns);
        // Skylake-like scale.
        assert!(tr.latency_ns < 60_000, "latency {} ns", tr.latency_ns);
    }

    #[test]
    fn trace_is_flat_before_request() {
        let mut core = SimCpuCore::new(intel_skylake_sp(), 10, SharedClock::new());
        let tr = transition_trace(&mut core, FreqMhz(2000), FreqMhz(2800), 60_000.0);
        // No breakpoint strictly between -50 us and the request (the core
        // was settled at init).
        assert!(!tr.events.iter().any(|e| e.t_rel_ns < 0));
    }
}
