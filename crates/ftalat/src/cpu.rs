//! A simulated DVFS CPU core.
//!
//! Contrast with the GPU device in `latest-gpu-sim`, mirroring the paper's
//! Fig. 1 vs Fig. 2 distinction:
//!
//! * the frequency-change request is issued *on* the same device that runs
//!   the workload — a register write costing microseconds, with no bus hop;
//! * the transition itself completes in tens of microseconds (Skylake-SP)
//!   to a few hundred microseconds (slower governors);
//! * the workload executes synchronously: each iteration advances the
//!   shared clock, and its duration follows the core's instantaneous
//!   frequency trajectory exactly like the GPU's SM engine.

use latest_gpu_sim::freq::{FreqLadder, FreqMhz};
use latest_gpu_sim::noise::Normal;
use latest_gpu_sim::trajectory::FreqTrajectory;
use latest_sim_clock::{SharedClock, SimDuration, SimTime};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Description of one simulated CPU core.
#[derive(Clone, Debug)]
pub struct CpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Selectable core frequencies.
    pub ladder: FreqLadder,
    /// Mean transition latency (µs).
    pub transition_us: f64,
    /// Standard deviation of the transition latency (µs).
    pub transition_jitter_us: f64,
    /// Cost of the frequency-change request itself (sysfs/MSR write, µs).
    pub request_cost_us: f64,
    /// Relative noise of workload iterations.
    pub noise_rel_sigma: f64,
}

/// Intel Skylake-SP-like core: 1.2–3.0 GHz, ~25 µs transitions (Fig. 1 and
/// ref. \[6\] of the paper).
pub fn intel_skylake_sp() -> CpuSpec {
    CpuSpec {
        name: "Intel Skylake-SP (simulated)",
        ladder: FreqLadder::arithmetic(1200, 3000, 100),
        transition_us: 25.0,
        transition_jitter_us: 6.0,
        request_cost_us: 3.0,
        noise_rel_sigma: 0.012,
    }
}

/// A slower-governor core (firmware-mediated DVFS): ~1.2 ms transitions —
/// the "units of milliseconds at most" end of the paper's CPU range.
pub fn slow_governor_cpu() -> CpuSpec {
    CpuSpec {
        name: "firmware-DVFS CPU (simulated)",
        ladder: FreqLadder::arithmetic(1000, 2600, 200),
        transition_us: 1200.0,
        transition_jitter_us: 250.0,
        request_cost_us: 8.0,
        noise_rel_sigma: 0.015,
    }
}

/// One iteration's timestamps (host clock, exact).
#[derive(Clone, Copy, Debug)]
pub struct CpuIterRecord {
    /// Start timestamp.
    pub start: SimTime,
    /// End timestamp.
    pub end: SimTime,
}

impl CpuIterRecord {
    /// Iteration execution time.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// The simulated core.
pub struct SimCpuCore {
    spec: CpuSpec,
    clock: SharedClock,
    traj: FreqTrajectory,
    rng: ChaCha8Rng,
    /// Ground truth of the last transition: (request time, settle time).
    last_transition: Option<(SimTime, SimTime)>,
}

impl SimCpuCore {
    /// Create a core at the ladder's top frequency.
    pub fn new(spec: CpuSpec, seed: u64, clock: SharedClock) -> Self {
        let traj = FreqTrajectory::flat(spec.ladder.max().as_f64());
        SimCpuCore {
            spec,
            clock,
            traj,
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xC9_0C0DE),
            last_transition: None,
        }
    }

    /// The core's spec.
    pub fn spec(&self) -> &CpuSpec {
        &self.spec
    }

    /// The shared clock.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Request a frequency change (the sysfs write). Returns the snapped
    /// target. The transition completes `transition_us ± jitter` later;
    /// a request during an unfinished transition overrides it ("the actual
    /// CPU core frequency is undefined" — resolved in favour of the newest
    /// request, as on the paper's Haswell example).
    pub fn set_frequency(&mut self, target: FreqMhz) -> FreqMhz {
        let target = self.spec.ladder.snap(target);
        let request = self.clock.advance(SimDuration::from_nanos(
            (self.spec.request_cost_us * 1e3) as u64,
        ));
        let latency_us = Normal::new(self.spec.transition_us, self.spec.transition_jitter_us)
            .sample_clamped(&mut self.rng, 3.0)
            .max(1.0);
        let settle = request + SimDuration::from_nanos((latency_us * 1e3) as u64);
        self.traj.truncate_after(request);
        self.traj.push(settle, target.as_f64());
        self.last_transition = Some((request, settle));
        target
    }

    /// Run `n` workload iterations of `work_cycles` each, synchronously.
    /// The clock advances to the end of the last iteration.
    pub fn run_iterations(&mut self, n: u32, work_cycles: f64) -> Vec<CpuIterRecord> {
        let noise = Normal::new(1.0, self.spec.noise_rel_sigma);
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let start = self.clock.now();
            let w = work_cycles * noise.sample_clamped(&mut self.rng, 4.0).max(0.01);
            let end_t = self.traj.advance_cycles(start, w);
            self.clock.advance_to(end_t);
            // Timestamp read costs a few ns on CPU.
            let ts_cost: u64 = self.rng.gen_range(15..40);
            self.clock.advance(SimDuration::from_nanos(ts_cost));
            out.push(CpuIterRecord { start, end: end_t });
        }
        out
    }

    /// Ground truth of the last transition (request, settle).
    pub fn last_transition(&self) -> Option<(SimTime, SimTime)> {
        self.last_transition
    }

    /// The frequency trajectory (for trace rendering).
    pub fn trajectory(&self) -> &FreqTrajectory {
        &self.traj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(seed: u64) -> SimCpuCore {
        SimCpuCore::new(intel_skylake_sp(), seed, SharedClock::new())
    }

    #[test]
    fn iterations_track_frequency() {
        let mut c = core(1);
        c.set_frequency(FreqMhz(3000));
        // settle the transition
        c.run_iterations(10, 1_000_000.0);
        let recs = c.run_iterations(100, 1_000_000.0);
        // 1e6 cycles at 3 GHz = ~333 us.
        let mean: f64 = recs
            .iter()
            .map(|r| r.duration().as_nanos() as f64)
            .sum::<f64>()
            / 100.0;
        assert!((mean - 333_333.0).abs() < 6_000.0, "mean {mean}");
    }

    #[test]
    fn transition_is_microsecond_scale() {
        let mut c = core(2);
        c.set_frequency(FreqMhz(1200));
        c.run_iterations(50, 100_000.0);
        c.set_frequency(FreqMhz(3000));
        let (req, settle) = c.last_transition().unwrap();
        let lat = settle.saturating_since(req);
        assert!(
            lat >= SimDuration::from_micros(5) && lat <= SimDuration::from_micros(60),
            "latency {lat}"
        );
    }

    #[test]
    fn workload_advances_shared_clock() {
        let mut c = core(3);
        let t0 = c.clock().now();
        c.run_iterations(10, 500_000.0);
        assert!(c.clock().now() > t0);
    }

    #[test]
    fn override_during_transition() {
        let mut c = core(4);
        c.set_frequency(FreqMhz(1200));
        // Immediately override: final plan must be 2400, not 1200.
        c.set_frequency(FreqMhz(2400));
        let (_, settle) = c.last_transition().unwrap();
        assert_eq!(
            c.trajectory().freq_at(settle + SimDuration::from_micros(1)),
            2400.0
        );
    }

    #[test]
    fn snapping_to_cpu_ladder() {
        let mut c = core(5);
        assert_eq!(c.set_frequency(FreqMhz(1234)), FreqMhz(1200));
        assert_eq!(c.set_frequency(FreqMhz(9999)), FreqMhz(3000));
    }
}
