//! The FTaLaT two-phase methodology (Sec. IV of the paper).
//!
//! Phase one measures the mean iteration time per frequency. Phase two runs
//! the workload at the initial frequency, issues the change, and scans for
//! the first iteration whose execution time falls inside the target
//! frequency's **confidence interval** (`mean ± 2·stderr` — the original
//! FTaLaT band). A hundred extra iterations are then collected; if their
//! mean is statistically indistinguishable from the target mean, the
//! transition latency is the span from the change request to the detected
//! iteration. Otherwise the core was still adapting and the measurement is
//! discarded and repeated.

use latest_gpu_sim::freq::FreqMhz;
use latest_sim_clock::SimTime;
use latest_stats::{diff_confidence_interval, RunningStats, SigmaBand, Summary};

use crate::cpu::SimCpuCore;

/// Phase-one characterisation of one CPU frequency.
#[derive(Clone, Copy, Debug)]
pub struct CpuFreqStats {
    /// The frequency.
    pub freq: FreqMhz,
    /// Iteration-duration summary (ns).
    pub iter_ns: Summary,
}

/// Phase one: characterise each frequency with `iters` iterations of
/// `work_cycles` (after a settling run).
pub fn ftalat_phase1(
    core: &mut SimCpuCore,
    freqs: &[FreqMhz],
    iters: u32,
    work_cycles: f64,
) -> Vec<CpuFreqStats> {
    freqs
        .iter()
        .map(|&f| {
            core.set_frequency(f);
            // Settle by *time*, not iteration count: CPU transitions span
            // microseconds (Skylake) to milliseconds (firmware governors),
            // and characterising before the transition lands would measure
            // the previous frequency.
            let t0 = core.clock().now();
            while core.clock().now().saturating_since(t0)
                < latest_sim_clock::SimDuration::from_millis(10)
            {
                core.run_iterations(64, work_cycles);
            }
            let recs = core.run_iterations(iters, work_cycles);
            let mut s = RunningStats::new();
            for r in &recs {
                s.push(r.duration().as_nanos() as f64);
            }
            CpuFreqStats {
                freq: f,
                iter_ns: s.summary(),
            }
        })
        .collect()
}

/// One measured CPU transition.
#[derive(Clone, Copy, Debug)]
pub struct TransitionMeasurement {
    /// Initial frequency.
    pub init: FreqMhz,
    /// Target frequency.
    pub target: FreqMhz,
    /// Measured transition latency (ns).
    pub latency_ns: u64,
    /// Ground-truth latency from the simulator (ns).
    pub ground_truth_ns: u64,
    /// Measurement attempts used (discard-and-retry loop).
    pub attempts: usize,
}

/// Phase two: measure one `init → target` transition. Returns `None` when
/// every attempt was discarded (adaptation never confirmed).
pub fn measure_transition(
    core: &mut SimCpuCore,
    init: FreqMhz,
    target: FreqMhz,
    stats: &[CpuFreqStats],
    work_cycles: f64,
    max_attempts: usize,
) -> Option<TransitionMeasurement> {
    let target_stats = stats.iter().find(|s| s.freq == target)?.iter_ns;
    let init_stats = stats.iter().find(|s| s.freq == init)?.iter_ns;
    // The original FTaLaT band: two standard *errors* around the mean.
    let band = SigmaBand {
        mean: target_stats.mean,
        stdev: target_stats.stderr,
        k: 2.0,
    };

    for attempt in 1..=max_attempts {
        // Run at the initial frequency until the core demonstrably executes
        // at it (a slow previous transition may still be in flight; starting
        // the measurement early would corrupt the latency origin).
        core.set_frequency(init);
        let init_tol = (3.0 * init_stats.stdev).max(0.01 * init_stats.mean);
        let mut consecutive = 0u32;
        for _ in 0..16_384u32 {
            let rec = &core.run_iterations(1, work_cycles)[0];
            if ((rec.duration().as_nanos() as f64) - init_stats.mean).abs() <= init_tol {
                consecutive += 1;
                if consecutive >= 32 {
                    break;
                }
            } else {
                consecutive = 0;
            }
        }

        // Issue the change; the request timestamp is the latency origin.
        core.set_frequency(target);
        let (request, settle_truth) = core.last_transition().expect("transition recorded");

        // Scan iterations for the first in-band execution time.
        let mut te: Option<SimTime> = None;
        for _ in 0..4_096u32 {
            let rec = &core.run_iterations(1, work_cycles)[0];
            if band.contains(rec.duration().as_nanos() as f64) {
                te = Some(rec.end);
                break;
            }
        }
        let Some(te) = te else { continue };

        // Confirmation: one hundred extra iterations.
        let confirm = core.run_iterations(100, work_cycles);
        let mut s = RunningStats::new();
        for r in &confirm {
            s.push(r.duration().as_nanos() as f64);
        }
        let ok = diff_confidence_interval(&s.summary(), &target_stats, 0.95)
            .map(|ci| ci.contains_zero())
            .unwrap_or(false);
        if !ok {
            continue; // still adapting — discard (Sec. IV, last paragraph)
        }
        return Some(TransitionMeasurement {
            init,
            target,
            latency_ns: te.saturating_since(request).as_nanos(),
            ground_truth_ns: settle_truth.saturating_since(request).as_nanos(),
            attempts: attempt,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{intel_skylake_sp, slow_governor_cpu};
    use latest_sim_clock::SharedClock;

    // FTaLaT-style tiny iterations (~1-2.5 us): the detection granularity is
    // ~a dozen iterations (the stderr band admits only ~8 % of honest
    // samples), so small iterations keep the measured latency honest.
    const WORK: f64 = 3_000.0;

    #[test]
    fn phase1_distinguishes_cpu_frequencies() {
        let mut core = SimCpuCore::new(intel_skylake_sp(), 1, SharedClock::new());
        let stats = ftalat_phase1(&mut core, &[FreqMhz(1200), FreqMhz(3000)], 400, WORK);
        let slow = stats[0].iter_ns.mean;
        let fast = stats[1].iter_ns.mean;
        assert!((slow / fast - 2.5).abs() < 0.1, "ratio {}", slow / fast);
    }

    #[test]
    fn measures_microsecond_scale_latency() {
        let mut core = SimCpuCore::new(intel_skylake_sp(), 2, SharedClock::new());
        let freqs = [FreqMhz(1200), FreqMhz(3000)];
        let stats = ftalat_phase1(&mut core, &freqs, 400, WORK);
        let m = measure_transition(&mut core, FreqMhz(3000), FreqMhz(1200), &stats, WORK, 20)
            .expect("measurable");
        let us = m.latency_ns as f64 / 1e3;
        // Ground truth is ~25 us. The stderr detection band admits only
        // ~8 % of honest iterations, so the scan adds a geometric number of
        // ~2.5 us iterations; the measurement stays 2-3 orders of magnitude
        // below GPU scale, which is the paper's comparison point.
        assert!(us < 500.0, "measured {us} us");
        assert!(m.latency_ns >= m.ground_truth_ns / 4, "implausibly small");
    }

    #[test]
    fn cpu_vs_gpu_scale_gap() {
        // The Sec. VII comparison in miniature: even the slow-governor CPU
        // completes transitions below ~2 ms, 10-100x faster than the GPU
        // models' tens-to-hundreds of ms.
        let mut core = SimCpuCore::new(slow_governor_cpu(), 3, SharedClock::new());
        let freqs = [FreqMhz(1000), FreqMhz(2600)];
        let stats = ftalat_phase1(&mut core, &freqs, 400, WORK);
        let m = measure_transition(&mut core, FreqMhz(2600), FreqMhz(1000), &stats, WORK, 20)
            .expect("measurable");
        let ms = m.latency_ns as f64 / 1e6;
        assert!(ms < 3.0, "slow-governor CPU latency {ms} ms");
        assert!(ms > 0.5, "latency {ms} ms suspiciously fast");
    }

    #[test]
    fn unknown_target_returns_none() {
        let mut core = SimCpuCore::new(intel_skylake_sp(), 4, SharedClock::new());
        let stats = ftalat_phase1(&mut core, &[FreqMhz(1200)], 100, WORK);
        assert!(
            measure_transition(&mut core, FreqMhz(1200), FreqMhz(2000), &stats, WORK, 5).is_none()
        );
    }
}
