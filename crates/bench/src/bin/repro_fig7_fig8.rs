//! Regenerates **Fig. 7 and Fig. 8** — manufacturing variability across
//! four A100-SXM4 units (the Karolina front-row GPUs):
//!
//! * Fig. 7: per-pair range (max − min across units) of the **best-case**
//!   (minimum) switching latencies — paper shows mostly < 0.5 ms,
//! * Fig. 8: per-pair range of the **worst-case** (maximum) latencies —
//!   paper shows up to ~12 ms on isolated pairs.

use bench_support::{campaign_heatmap, freqs_mhz, repro_config, CellStat};
use latest_core::Latest;
use latest_gpu_sim::devices;
use latest_report::Heatmap;

fn main() {
    let color = std::env::var("NO_COLOR").is_err();
    let n_freqs = 12usize;

    // Sweep each unit (all units share the same ladder, hence one freq list).
    let freqs = freqs_mhz(&repro_config(devices::a100_sxm4_unit(0), n_freqs, 0));
    let mut mins: Vec<Heatmap> = Vec::new();
    let mut maxs: Vec<Heatmap> = Vec::new();
    for unit in 0..4 {
        let config = repro_config(
            devices::a100_sxm4_unit(unit),
            n_freqs,
            0xF1678 + unit as u64,
        );
        let result = Latest::new(config).run().expect("unit sweep");
        mins.push(campaign_heatmap(&result, &freqs, CellStat::Min));
        maxs.push(campaign_heatmap(&result, &freqs, CellStat::Max));
    }

    // Range across units, cell-wise.
    let range_of = |maps: &[Heatmap]| -> Heatmap {
        let mut lo = maps[0].clone();
        let mut hi = maps[0].clone();
        for m in &maps[1..] {
            lo = lo.combine(m, f64::min);
            hi = hi.combine(m, f64::max);
        }
        hi.combine(&lo, |a, b| a - b)
    };
    let fig7 = range_of(&mins);
    let fig8 = range_of(&maxs);

    println!(
        "{}",
        fig7.render(
            "FIG. 7: ranges of minimum switching latencies across four A100 units [ms]",
            color
        )
    );
    println!(
        "{}",
        fig8.render(
            "FIG. 8: ranges of maximum switching latencies across four A100 units [ms]",
            color
        )
    );

    let f7_mean = fig7.mean().unwrap();
    let f8_mean = fig8.mean().unwrap();
    let (_, _, f7_max) = fig7.max_cell().unwrap();
    let (_, _, f8_max) = fig8.max_cell().unwrap();
    println!("Shape checks vs the paper:");
    println!(
        "  best-case ranges  (Fig. 7): mean {f7_mean:.2} ms, max {f7_max:.2} ms (paper: mostly < 0.5 ms)"
    );
    println!(
        "  worst-case ranges (Fig. 8): mean {f8_mean:.2} ms, max {f8_max:.2} ms (paper: up to ~12.7 ms)"
    );
    println!(
        "  worst-case spread exceeds best-case spread: {}",
        if f8_mean > f7_mean {
            "yes (matches paper)"
        } else {
            "NO"
        }
    );
}
