//! Regenerates **Fig. 1** — the CPU (Intel Skylake-SP-like) behaviour when
//! processing a frequency-change request: request issued, short transition
//! latency, clock settles at the target. Rendered as a frequency-vs-time
//! timeline around the request.

use latest_ftalat::cpu::{intel_skylake_sp, SimCpuCore};
use latest_ftalat::transition_trace;
use latest_gpu_sim::freq::FreqMhz;
use latest_sim_clock::SharedClock;

fn main() {
    let mut core = SimCpuCore::new(intel_skylake_sp(), 42, SharedClock::new());
    let trace = transition_trace(&mut core, FreqMhz(3000), FreqMhz(1200), 3_000.0);

    println!("FIG. 1: CPU frequency-change request timeline (Skylake-SP-like, simulated)\n");
    println!(
        "transition {} -> {} MHz; measured-from-request latency: {:.1} us\n",
        trace.init,
        trace.target,
        trace.latency_ns as f64 / 1e3
    );
    println!("{:>12}  {:>10}   event", "t-rel [us]", "freq [MHz]");
    println!("{}", "-".repeat(48));
    println!(
        "{:>12.1}  {:>10}   running at initial frequency",
        -20.0, trace.init
    );
    println!(
        "{:>12.1}  {:>10}   frequency change REQUEST issued",
        0.0, trace.init
    );
    for e in &trace.events {
        if e.t_rel_ns >= 0 {
            let label = if (e.freq_mhz - trace.target.as_f64()).abs() < 1e-9 {
                "clock settled at TARGET"
            } else {
                "intermediate step"
            };
            println!(
                "{:>12.1}  {:>10.0}   {label}",
                e.t_rel_ns as f64 / 1e3,
                e.freq_mhz
            );
        }
    }
    println!(
        "\nShape check: the whole transition completes in tens of microseconds —\n\
         the CPU scale the paper contrasts against GPU tens-to-hundreds of ms."
    );
}
