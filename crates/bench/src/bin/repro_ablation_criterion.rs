//! **Ablation 1 (Sec. V-A)** — the paper's central measurement-theoretic
//! choice: detect the end of a transition with a band of two standard
//! **deviations** around the target mean, not the FTaLaT-style two standard
//! **errors** (confidence interval of the mean).
//!
//! With millions of pooled iterations the standard error collapses below
//! the device timer resolution, so the CI band rejects nearly every honest
//! iteration; the methodology would grind through endless retries. This
//! binary measures both variants' per-pass success rates and accuracy
//! against the simulator's ground truth.

use latest_core::phase1::run_phase1;
use latest_core::phase2::run_phase2;
use latest_core::phase3::evaluate_pass;
use latest_core::{CampaignConfig, SimPlatform};
use latest_gpu_sim::devices;
use latest_gpu_sim::freq::FreqMhz;
use latest_report::TextTable;
use latest_stats::Summary;

fn main() {
    let config = CampaignConfig::builder(devices::a100_sxm4())
        .frequencies_mhz(&[705, 1410])
        .simulated_sms(Some(4))
        .seed(0xAB1)
        .build();
    let mut platform = SimPlatform::new(config.spec.clone(), config.seed).unwrap();
    let p1 = run_phase1(&mut platform, &config).unwrap();
    let init = FreqMhz(1410);
    let target = FreqMhz(705);
    let init_stats = p1.of(init).unwrap().iter_ns;
    let target_stats = p1.of(target).unwrap().iter_ns;

    // The stderr variant: a Summary whose "stdev" is the standard error, so
    // the same 2k-band machinery produces the FTaLaT CI band.
    let stderr_variant = Summary {
        stdev: target_stats.stderr,
        ..target_stats
    };

    const PASSES: usize = 40;
    let mut results: Vec<(&str, usize, f64, f64)> = Vec::new(); // name, ok, mean |err|, mean rel err
    for (name, stats) in [
        ("2-standard-deviation band (paper)", target_stats),
        ("2-standard-error band (FTaLaT CI)", stderr_variant),
    ] {
        let mut ok = 0usize;
        let mut abs_err = 0.0f64;
        let mut rel_err = 0.0f64;
        for _ in 0..PASSES {
            let cap = run_phase2(&mut platform, &config, init, target, &init_stats, 25.0)
                .expect("phase 2");
            let truth = platform
                .last_ground_truth()
                .unwrap()
                .switching_latency()
                .as_millis_f64();
            let eval = evaluate_pass(&cap, &stats, &config);
            if let Some(ns) = eval.latency_ns {
                ok += 1;
                let m = ns as f64 / 1e6;
                abs_err += (m - truth).abs();
                rel_err += (m - truth).abs() / truth;
            }
        }
        let n = ok.max(1) as f64;
        results.push((name, ok, abs_err / n, rel_err / n));
    }

    println!("ABLATION: transition-detection band (Sec. V-A)\n");
    println!(
        "target characterisation: mean {:.1} us, stdev {:.2} us, stderr {:.4} us (n = {})",
        target_stats.mean / 1e3,
        target_stats.stdev / 1e3,
        target_stats.stderr / 1e3,
        target_stats.n
    );
    println!(
        "band widths: 2-stdev = +/-{:.2} us, 2-stderr = +/-{:.4} us (timer resolution: 1 us)\n",
        2.0 * target_stats.stdev / 1e3,
        2.0 * target_stats.stderr / 1e3
    );
    let mut t = TextTable::with_header(&[
        "Detection band",
        "passes OK",
        "mean |err| [ms]",
        "mean rel err",
    ]);
    for (name, ok, abs, rel) in &results {
        t.row(&[
            name.to_string(),
            format!("{ok}/{PASSES}"),
            format!("{abs:.3}"),
            format!("{rel:.1}%", rel = rel * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Shape check: the stderr band (narrower than the 1 us timer tick) must\n\
         succeed rarely or never, while the 2-sigma band succeeds on (nearly)\n\
         every pass — the paper's justification for departing from FTaLaT."
    );
}
