//! Regenerates the **Sec. VII CPU-vs-GPU comparison**: "several studies
//! presenting the transition latency of modern Intel and AMD CPUs show that
//! CPUs complete the frequency transitions in microseconds, or units of
//! milliseconds at most, while GPUs require significantly more time,
//! ranging from tens to hundreds of milliseconds."

use latest_core::{CampaignConfig, Latest};
use latest_ftalat::cpu::{intel_skylake_sp, slow_governor_cpu, SimCpuCore};
use latest_ftalat::{ftalat_phase1, measure_transition};
use latest_gpu_sim::devices;
use latest_gpu_sim::freq::FreqMhz;
use latest_report::TextTable;
use latest_sim_clock::SharedClock;

const CPU_WORK: f64 = 3_000.0;

fn cpu_latency_ms(spec: latest_ftalat::CpuSpec, seed: u64) -> (String, f64) {
    let name = spec.name.to_string();
    let ladder_lo = spec.ladder.min();
    let ladder_hi = spec.ladder.max();
    let mut core = SimCpuCore::new(spec, seed, SharedClock::new());
    let stats = ftalat_phase1(&mut core, &[ladder_lo, ladder_hi], 400, CPU_WORK);
    let mut worst: f64 = 0.0;
    for (a, b) in [(ladder_hi, ladder_lo), (ladder_lo, ladder_hi)] {
        if let Some(m) = measure_transition(&mut core, a, b, &stats, CPU_WORK, 20) {
            worst = worst.max(m.latency_ns as f64 / 1e6);
        }
    }
    (name, worst)
}

fn gpu_latency_ms(spec: latest_gpu_sim::devices::DeviceSpec, seed: u64) -> (String, f64, f64) {
    let name = spec.name.clone();
    let lo = spec.ladder.min().0;
    let hi = spec.ladder.max().0;
    let mid = spec.ladder.snap(FreqMhz((lo + hi) / 2)).0;
    let config = CampaignConfig::builder(spec)
        .frequencies_mhz(&[lo, mid, hi])
        .measurements(15, 30)
        .simulated_sms(Some(4))
        .seed(seed)
        .build();
    let result = Latest::new(config).run().expect("gpu campaign");
    let mut best = f64::INFINITY;
    let mut worst: f64 = 0.0;
    for p in result.completed() {
        if let Some(a) = &p.analysis {
            best = best.min(a.filtered.min);
            worst = worst.max(a.filtered.max);
        }
    }
    (name, best, worst)
}

fn main() {
    println!("Sec. VII: CPU transition latency vs GPU switching latency\n");

    let cpus = [
        cpu_latency_ms(intel_skylake_sp(), 0xC91),
        cpu_latency_ms(slow_governor_cpu(), 0xC92),
    ];
    let gpus = [
        gpu_latency_ms(devices::rtx_quadro_6000(), 0x691),
        gpu_latency_ms(devices::a100_sxm4(), 0x692),
        gpu_latency_ms(devices::gh200(), 0x693),
    ];

    let mut t = TextTable::with_header(&["Device", "Class", "Latency range [ms]"]);
    for (name, worst) in &cpus {
        t.row(&[name.clone(), "CPU".to_string(), format!("<= {worst:.3}")]);
    }
    for (name, best, worst) in &gpus {
        t.row(&[
            name.clone(),
            "GPU".to_string(),
            format!("{best:.1} - {worst:.1}"),
        ]);
    }
    println!("{}", t.render());

    let cpu_worst = cpus.iter().map(|c| c.1).fold(0.0f64, f64::max);
    let gpu_best = gpus.iter().map(|g| g.1).fold(f64::INFINITY, f64::min);
    println!(
        "slowest CPU transition: {cpu_worst:.3} ms; fastest GPU switching: {gpu_best:.1} ms \
         -> gap {:.0}x",
        gpu_best / cpu_worst.max(1e-9)
    );
    println!(
        "shape check: CPUs in microseconds-to-milliseconds, GPUs in tens-to-hundreds \
         of milliseconds: {}",
        if cpu_worst < 3.0 && gpu_best > 3.0 {
            "holds"
        } else {
            "DOES NOT HOLD"
        }
    );
}
