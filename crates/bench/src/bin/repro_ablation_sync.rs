//! **Ablation 4 (phase 2)** — IEEE 1588 synchronisation quality versus the
//! number of exchange rounds. The switching-latency origin `t_s` is a host
//! timestamp mapped onto the device timeline; its error adds directly to
//! every measured latency, so the sync budget matters.

use latest_clock_sync::SyncConfig;
use latest_core::{Platform, SimPlatform};
use latest_gpu_sim::devices;
use latest_report::TextTable;

fn main() {
    println!("ABLATION: PTP sync error vs number of exchange rounds\n");
    let mut t = TextTable::with_header(&[
        "rounds",
        "mean |err| [us]",
        "max |err| [us]",
        "mean bound [us]",
        "bound held",
    ]);

    for &rounds in &[1usize, 4, 16, 64, 256] {
        let mut errs = Vec::new();
        let mut bounds = Vec::new();
        let mut held = 0usize;
        const REPS: usize = 25;
        for rep in 0..REPS {
            let spec = devices::a100_sxm4();
            let truth = spec.timer_offset_ns;
            let mut platform = SimPlatform::new(spec, 1000 + rep as u64).unwrap();
            let cfg = SyncConfig {
                rounds,
                keep_best: 4.min(rounds),
                ..Default::default()
            };
            let r = platform.synchronize_timers(&cfg);
            let err = (r.offset_ns - truth).unsigned_abs();
            errs.push(err as f64 / 1e3);
            bounds.push(r.uncertainty_ns as f64 / 1e3);
            if err <= r.uncertainty_ns + 1_000 {
                held += 1;
            }
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        let max = errs.iter().cloned().fold(f64::MIN, f64::max);
        let mean_bound = bounds.iter().sum::<f64>() / bounds.len() as f64;
        t.row(&[
            rounds.to_string(),
            format!("{mean:.2}"),
            format!("{max:.2}"),
            format!("{mean_bound:.2}"),
            format!("{held}/{REPS}"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Shape check: error and bound shrink with rounds (min-filtering) and\n\
         flatten near the device-timer quantisation (1 us) — more rounds past\n\
         ~64 buy little, which is why the tool syncs once per measurement pass."
    );
}
