//! Regenerates **Table II** — summary of switching latencies across GPUs:
//! min/mean/max of the worst-case (per-pair maximum) and best-case
//! (per-pair minimum) latencies, with the frequency pairs achieving the
//! extremes, after outlier removal.

use bench_support::{repro_spec, table2_row, CellStat, Table2Row};
use latest_report::{ExperimentRecord, TextTable};

fn fmt_pair(v: (f64, u32, u32)) -> String {
    format!("{:.3} ({}->{})", v.0, v.1, v.2)
}

fn main() {
    // The paper's three-device sweep, declaratively: device registry names
    // instead of hand-built configs (scenarios/table2.json is the
    // single-device scenario-file counterpart).
    let sweeps = [
        ("quadro", 14usize, 0x7AB2Au64),
        ("a100", 18, 0x7AB2B),
        ("gh200", 18, 0x7AB2C),
    ];

    let mut worst: Vec<Table2Row> = Vec::new();
    let mut best: Vec<Table2Row> = Vec::new();
    for (device, n, seed) in sweeps {
        let result = repro_spec(device, n, seed)
            .into_session()
            .expect("repro spec resolves")
            .run()
            .expect("sweep");
        worst.push(table2_row(&result, CellStat::Max).expect("worst row"));
        best.push(table2_row(&result, CellStat::Min).expect("best row"));
    }

    println!("TABLE II: Summary of switching latencies across GPUs [ms]\n");
    for (title, rows) in [
        ("The worst-case latencies", &worst),
        ("The best-case latencies", &best),
    ] {
        println!("{title}:");
        let mut t = TextTable::with_header(&["Metric", "RTX Quadro 6000", "A100 SXM-4", "GH200"]);
        t.row(&[
            "Min [ms] (pair)".to_string(),
            fmt_pair(rows[0].min),
            fmt_pair(rows[1].min),
            fmt_pair(rows[2].min),
        ]);
        t.row(&[
            "Mean [ms]".to_string(),
            format!("{:.3}", rows[0].mean),
            format!("{:.3}", rows[1].mean),
            format!("{:.3}", rows[2].mean),
        ]);
        t.row(&[
            "Max [ms] (pair)".to_string(),
            fmt_pair(rows[0].max),
            fmt_pair(rows[1].max),
            fmt_pair(rows[2].max),
        ]);
        println!("{}", t.render());
    }

    // Machine-readable paper-vs-measured record.
    let mut rec = ExperimentRecord::new(
        "table2",
        "Summary of switching latencies across GPUs",
        "worst = per-pair max, best = per-pair min, outliers removed (Alg. 3); \
         14/18/18-frequency subsets, RSE 5 %, 25-60 measurements per pair",
    );
    rec.compare(
        "A100 worst-case max [ms]",
        "22.716",
        format!("{:.1}", worst[1].max.0),
        worst[1].max.0 < 40.0,
        "paper: every A100 worst case < 25 ms",
    );
    rec.compare(
        "A100 best-case mean [ms]",
        "5.007",
        format!("{:.2}", best[1].mean),
        (3.0..9.0).contains(&best[1].mean),
        "~5 ms fast path",
    );
    rec.compare(
        "GH200 worst-case max [ms]",
        "477.318",
        format!("{:.0}", worst[2].max.0),
        worst[2].max.0 > 150.0,
        "rare extreme events on slow target columns",
    );
    rec.compare(
        "GH200 best-case min [ms]",
        "4.914",
        format!("{:.2}", best[2].min.0),
        (3.0..8.0).contains(&best[2].min.0),
        "~5-6 ms baseline",
    );
    rec.compare(
        "Quadro worst-case max [ms]",
        "350.436",
        format!("{:.0}", worst[0].max.0),
        worst[0].max.0 > 150.0,
        "slow 930/990 MHz target columns",
    );
    rec.compare(
        "Quadro vs A100 worst mean ratio",
        format!("{:.1}", 81.891 / 15.637),
        format!("{:.1}", worst[0].mean / worst[1].mean),
        worst[0].mean > 2.0 * worst[1].mean,
        "Quadro an order of magnitude slower on average",
    );
    println!("{}", rec.render_markdown());
    if !rec.all_shapes_hold() {
        eprintln!("WARNING: some qualitative shapes did NOT hold — inspect above");
        std::process::exit(1);
    }
}
