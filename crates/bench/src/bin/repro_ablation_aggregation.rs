//! **Ablation 2 (phase 3)** — aggregate the per-core latencies with
//! `max` (the paper: "the switching latency ... is then evaluated as the
//! maximum of the t_e − t_s values obtained from all ACC cores") versus
//! `mean`/`min`. The max is the only aggregate that upper-bounds the
//! device-wide settling time, which is what a DVFS runtime must budget for.

use latest_core::phase1::run_phase1;
use latest_core::phase2::run_phase2;
use latest_core::phase3::evaluate_pass;
use latest_core::{CampaignConfig, SimPlatform};
use latest_gpu_sim::devices;
use latest_gpu_sim::freq::FreqMhz;
use latest_report::TextTable;

fn main() {
    let config = CampaignConfig::builder(devices::gh200())
        .frequencies_mhz(&[705, 1500])
        .simulated_sms(Some(8))
        .seed(0xAB2)
        .build();
    let mut platform = SimPlatform::new(config.spec.clone(), config.seed).unwrap();
    let p1 = run_phase1(&mut platform, &config).unwrap();
    let init = FreqMhz(705);
    let target = FreqMhz(1500);
    let init_stats = p1.of(init).unwrap().iter_ns;
    let target_stats = p1.of(target).unwrap().iter_ns;

    const PASSES: usize = 30;
    let mut under_max = 0usize; // passes where aggregate < ground truth
    let mut under_mean = 0usize;
    let mut under_min = 0usize;
    let mut rows: Vec<[f64; 4]> = Vec::new();
    for _ in 0..PASSES {
        let cap =
            run_phase2(&mut platform, &config, init, target, &init_stats, 25.0).expect("phase 2");
        let truth = platform
            .last_ground_truth()
            .unwrap()
            .switching_latency()
            .as_millis_f64();
        let eval = evaluate_pass(&cap, &target_stats, &config);
        let per_core: Vec<f64> = eval
            .cores
            .iter()
            .filter_map(|c| c.outcome.ok())
            .map(|ns| ns as f64 / 1e6)
            .collect();
        if per_core.is_empty() {
            continue;
        }
        let max = per_core.iter().cloned().fold(f64::MIN, f64::max);
        let min = per_core.iter().cloned().fold(f64::MAX, f64::min);
        let mean = per_core.iter().sum::<f64>() / per_core.len() as f64;
        if max < truth {
            under_max += 1;
        }
        if mean < truth {
            under_mean += 1;
        }
        if min < truth {
            under_min += 1;
        }
        rows.push([truth, max, mean, min]);
    }

    println!("ABLATION: per-core aggregation (max vs mean vs min over cores)\n");
    let mut t =
        TextTable::with_header(&["pass", "truth [ms]", "max [ms]", "mean [ms]", "min [ms]"]);
    for (i, r) in rows.iter().take(8).enumerate() {
        t.row(&[
            i.to_string(),
            format!("{:.3}", r[0]),
            format!("{:.3}", r[1]),
            format!("{:.3}", r[2]),
            format!("{:.3}", r[3]),
        ]);
    }
    println!("{}", t.render());
    let n = rows.len();
    println!("passes where the aggregate UNDER-estimates the ground truth (of {n}):");
    println!("  max  over cores: {under_max}");
    println!("  mean over cores: {under_mean}");
    println!("  min  over cores: {under_min}");
    println!(
        "\nShape check: max-over-cores under-estimates least (it waits for the\n\
         whole device) — the conservative choice the paper makes."
    );
}
