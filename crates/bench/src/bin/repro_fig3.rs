//! Regenerates **Fig. 3** — heatmaps of minimum/maximum switching latencies:
//!
//! * 3a: GH200 minimum latencies (18×18 subset),
//! * 3b: GH200 maximum latencies,
//! * 3c: A100 maximum latencies (18×18),
//! * 3d: RTX Quadro 6000 maximum latencies (14×14),
//!
//! plus the paper's structural observation that *the target frequency has a
//! much higher impact than the initial frequency* (row/column pattern).

use bench_support::{campaign_heatmap, direction_split, freqs_mhz, repro_config, CellStat};
use latest_core::Latest;
use latest_gpu_sim::devices;

fn column_dominance(hm: &latest_report::Heatmap) -> (f64, f64) {
    let spread = |means: Vec<Option<f64>>| {
        let vals: Vec<f64> = means.into_iter().flatten().collect();
        if vals.is_empty() {
            return 0.0;
        }
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        max - min
    };
    (spread(hm.col_means()), spread(hm.row_means()))
}

fn main() {
    let color = std::env::var("NO_COLOR").is_err();

    // --- GH200: min and max (Fig. 3a, 3b) ---
    let config = repro_config(devices::gh200(), 18, 0xF163A);
    let freqs = freqs_mhz(&config);
    let gh = Latest::new(config).run().expect("GH200 sweep");
    let gh_min = campaign_heatmap(&gh, &freqs, CellStat::Min);
    let gh_max = campaign_heatmap(&gh, &freqs, CellStat::Max);
    println!(
        "{}",
        gh_min.render("FIG. 3a: GH200 minimum switching latencies [ms]", color)
    );
    println!(
        "{}",
        gh_max.render("FIG. 3b: GH200 maximum switching latencies [ms]", color)
    );

    // --- A100 max (Fig. 3c) ---
    let config = repro_config(devices::a100_sxm4(), 18, 0xF163C);
    let freqs = freqs_mhz(&config);
    let a100 = Latest::new(config).run().expect("A100 sweep");
    let a100_max = campaign_heatmap(&a100, &freqs, CellStat::Max);
    println!(
        "{}",
        a100_max.render("FIG. 3c: A100 maximum switching latencies [ms]", color)
    );

    // --- RTX Quadro 6000 max (Fig. 3d) ---
    let config = repro_config(devices::rtx_quadro_6000(), 14, 0xF163D);
    let freqs = freqs_mhz(&config);
    let quadro = Latest::new(config).run().expect("Quadro sweep");
    let quadro_max = campaign_heatmap(&quadro, &freqs, CellStat::Max);
    println!(
        "{}",
        quadro_max.render(
            "FIG. 3d: RTX Quadro 6000 maximum switching latencies [ms]",
            color
        )
    );

    // --- Shape checks ---
    println!("Shape checks vs the paper:");
    let (gmin, _, vmin) = gh_min.min_cell().unwrap();
    let _ = gmin;
    println!("  GH200 minimum-heatmap floor: {vmin:.2} ms (paper: ~5.2-6.7 ms baseline)");
    let (_, _, vmax) = gh_max.max_cell().unwrap();
    println!("  GH200 maximum-heatmap peak:  {vmax:.1} ms (paper: 477.3 ms)");
    let (_, _, amax) = a100_max.max_cell().unwrap();
    println!("  A100 maximum-heatmap peak:   {amax:.1} ms (paper: 22.7 ms, all < 25 ms)");
    let (_, _, qmax) = quadro_max.max_cell().unwrap();
    println!("  Quadro maximum-heatmap peak: {qmax:.1} ms (paper: 350.4 ms)");

    for (name, hm) in [
        ("GH200 (max)", &gh_max),
        ("A100 (max)", &a100_max),
        ("Quadro (max)", &quadro_max),
    ] {
        let (col, row) = column_dominance(hm);
        println!(
            "  {name}: target-frequency (column) spread {col:.1} ms vs initial (row) spread {row:.1} ms{}",
            if col > row { "  -> target dominates (matches paper)" } else { "" }
        );
    }

    let split = direction_split(&a100);
    let inc: f64 = split.increasing.iter().sum::<f64>() / split.increasing.len().max(1) as f64;
    let dec: f64 = split.decreasing.iter().sum::<f64>() / split.decreasing.len().max(1) as f64;
    println!(
        "  A100 directional asymmetry: increasing mean {inc:.1} ms vs decreasing mean {dec:.1} ms\
         \n    (paper: decreasing substantially lower)"
    );
}
