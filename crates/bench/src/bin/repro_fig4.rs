//! Regenerates **Fig. 4** — switching-latency distributions per GPU, split
//! by direction: frequency increasing (left violin) vs decreasing (right
//! violin). Reproduced as KDE summaries with mode counts.
//!
//! Paper shape targets: RTX Quadro 6000 shows the highest variability with
//! multiple density regions; A100 is tightly clumped with a clear
//! increase/decrease asymmetry; GH200 records the highest extremes but most
//! mass below 100 ms.

use bench_support::{direction_split, repro_config};
use latest_core::Latest;
use latest_gpu_sim::devices;
use latest_report::ViolinSummary;

fn main() {
    let sweeps = [
        (devices::rtx_quadro_6000(), 14usize, 0xF164Au64),
        (devices::a100_sxm4(), 18, 0xF164B),
        (devices::gh200(), 18, 0xF164C),
    ];

    println!("FIG. 4: switching-latency distributions, increasing vs decreasing\n");
    for (spec, n, seed) in sweeps {
        let name = spec.name.clone();
        let result = Latest::new(repro_config(spec, n, seed))
            .run()
            .expect("sweep");
        let split = direction_split(&result);

        println!("=== {name} ===");
        for (dir, data) in [
            ("increasing", &split.increasing),
            ("decreasing", &split.decreasing),
        ] {
            match ViolinSummary::build(
                format!("{dir} (init<target: {})", dir == "increasing"),
                data,
                160,
            ) {
                Some(v) => {
                    println!(
                        "  {dir:<10}: n={:>5}  median={:>8.2} ms  IQR=[{:>7.2}, {:>7.2}]  \
                         p99={:>8.2}  max={:>8.2}  modes={}",
                        v.summary.n,
                        v.median,
                        v.q1,
                        v.q3,
                        latest_stats::quantile(data, 0.99),
                        v.summary.max,
                        v.mode_count(0.25),
                    );
                    println!("{}", v.render(60));
                }
                None => println!("  {dir:<10}: insufficient data"),
            }
        }

        // Per-device shape notes.
        let inc_med = latest_stats::median(&split.increasing);
        let dec_med = latest_stats::median(&split.decreasing);
        if name.contains("A100") {
            println!(
                "  shape: A100 decreasing median {dec_med:.1} ms vs increasing {inc_med:.1} ms \
                 (paper: decreasing substantially lower)\n"
            );
        } else if name.contains("GH200") {
            let below100 = split
                .increasing
                .iter()
                .chain(&split.decreasing)
                .filter(|&&x| x < 100.0)
                .count() as f64
                / (split.increasing.len() + split.decreasing.len()) as f64;
            println!(
                "  shape: GH200 fraction below 100 ms: {:.0} % (paper: most of the worst \
                 cases below 100 ms)\n",
                below100 * 100.0
            );
        } else {
            println!("  shape: Quadro distributions multi-modal in both directions\n");
        }
    }
}
