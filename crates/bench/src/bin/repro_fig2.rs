//! Regenerates **Fig. 2** — CPU-to-accelerator communication while issuing
//! a frequency-change request: the host-side call blocks and returns, the
//! request travels the bus, the device applies it asynchronously, and the
//! clock settles only after the transition latency. The gap between "call
//! returned" and "device settled" is exactly why switching latency must be
//! measured from device-side timestamps.

use latest_core::SimPlatform;
use latest_gpu_sim::devices;
use latest_gpu_sim::freq::FreqMhz;

fn main() {
    let mut platform = SimPlatform::new(devices::a100_sxm4(), 42).expect("platform");
    // Settle at an initial frequency first.
    platform.nvml.set_gpu_locked_clocks(FreqMhz(1095)).unwrap();
    platform
        .cuda
        .usleep(latest_sim_clock::SimDuration::from_millis(100));
    platform.nvml.take_trace();

    // The traced request.
    platform.nvml.set_gpu_locked_clocks(FreqMhz(705)).unwrap();
    let trace = platform.nvml.take_trace().pop().expect("traced call");
    let gt = platform.last_ground_truth().expect("ground truth");

    let t0 = trace.call;
    let rel_us = |t: latest_sim_clock::SimTime| t.signed_delta_ns(t0) as f64 / 1e3;

    println!("FIG. 2: CPU -> ACC frequency-change request path (A100 facade, simulated)\n");
    println!("transition {} -> {} MHz\n", gt.from, gt.to);
    println!("{:>12}   side     event", "t [us]");
    println!("{}", "-".repeat(64));
    println!(
        "{:>12.1}   CPU      nvmlDeviceSetGpuLockedClocks() entered",
        0.0
    );
    println!(
        "{:>12.1}   CPU      call returned (host unblocked)",
        rel_us(trace.ret)
    );
    println!(
        "{:>12.1}   bus      request arrived at the device",
        rel_us(trace.device_arrival.unwrap())
    );
    println!(
        "{:>12.1}   ACC      clock left the initial frequency",
        rel_us(gt.ramp_start)
    );
    println!(
        "{:>12.1}   ACC      clock settled at the target  <-- switching latency ends here",
        rel_us(gt.settled)
    );
    println!(
        "\nswitching latency (request -> settled): {:.3} ms",
        gt.switching_latency().as_millis_f64()
    );
    println!(
        "transition latency (device-internal):   {:.3} ms",
        gt.transition_latency().as_millis_f64()
    );
    println!(
        "\nShape check: the call returns in ~0.1 ms while the device settles only\n\
         milliseconds later — the asynchronous gap of Fig. 2 that distinguishes\n\
         switching latency from CPU-style transition latency."
    );
}
