//! Regenerates **Fig. 9** — boxplots of switching latencies on the four
//! A100 units for the three frequency pairs with the highest cross-unit
//! spread (paper: 1065→840, 1065→975, 1350→885 MHz), asking the paper's
//! question: *is any single unit consistently slower than the others?*
//! (Paper's answer: no.)

use latest_core::{CampaignConfig, Latest};
use latest_gpu_sim::devices;
use latest_report::BoxStats;

const PAIRS: [(u32, u32); 3] = [(1065, 840), (1065, 975), (1350, 885)];

fn main() {
    println!("FIG. 9: per-unit switching-latency boxplots, A100 x4 [ms]\n");

    // medians[pair][unit]
    let mut medians = vec![vec![0.0f64; 4]; PAIRS.len()];
    #[allow(clippy::needless_range_loop)]
    // `unit` is a device index, not just a position in `medians`
    for unit in 0..4usize {
        println!("--- device index {unit} ---");
        // One campaign covering all three pairs' frequencies.
        let freqs: Vec<u32> = {
            let mut f: Vec<u32> = PAIRS.iter().flat_map(|&(a, b)| [a, b]).collect();
            f.sort_unstable();
            f.dedup();
            f
        };
        let config = CampaignConfig::builder(devices::a100_sxm4_unit(unit))
            .frequencies_mhz(&freqs)
            .measurements(40, 60)
            .simulated_sms(Some(4))
            .device_index(unit)
            .seed(0xF169 + unit as u64)
            .build();
        let result = Latest::new(config).run().expect("unit campaign");
        for (pi, &(init, target)) in PAIRS.iter().enumerate() {
            let data = result
                .pairs()
                .iter()
                .find(|p| p.init_mhz() == init && p.target_mhz() == target)
                .and_then(|p| p.analysis.as_ref())
                .map(|a| a.inliers_ms.clone())
                .unwrap_or_default();
            if let Some(b) = BoxStats::of(&data) {
                medians[pi][unit] = b.median;
                println!("{}", b.render_line(&format!("{init}->{target} MHz")));
            }
        }
        println!();
    }

    // The paper's conclusion: no unit is consistently the slowest.
    println!("Shape check — per-pair slowest unit:");
    let mut slowest: Vec<usize> = Vec::new();
    for (pi, &(init, target)) in PAIRS.iter().enumerate() {
        let (u, m) = medians[pi]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        println!("  {init}->{target} MHz: unit {u} (median {m:.2} ms)");
        slowest.push(u);
    }
    let consistent = slowest.windows(2).all(|w| w[0] == w[1]);
    println!(
        "  single unit consistently worst: {} (paper: no single instance \
         consistently exhibits worse behaviour)",
        if consistent {
            "YES (differs from paper)"
        } else {
            "no (matches paper)"
        }
    );
}
